#!/usr/bin/env python
"""Internet-scale ROFL: policy-respecting joins, the isolation property,
inbound traffic engineering and stub failures (paper Sections 4-5, 6.3).

Run:  python examples/interdomain_policies.py
"""

from repro import quick_interdomain
from repro.idspace.crypto import KeyPair
from repro.services.traffic_eng import (MultihomedSuffixJoin,
                                        negotiate_path_set, send_negotiated)
from repro.topology.hosts import PlannedHost


def main() -> None:
    net = quick_interdomain(n_ases=80, n_hosts=300, seed=5)
    net.check_rings()
    print("Internet of {} ASes ({} tier-1s, {} stubs); {} IDs joined, "
          "0 ring inconsistencies, {} oracle mismatches".format(
              net.asg.n_ases, len(net.asg.tier1()), len(net.asg.stubs()),
              net.n_hosts, net.lookup_mismatches))

    # --- Policy-respecting routing + isolation ---------------------------
    print("\nRouting 100 packets across domains...")
    stretches, isolated = [], 0
    for _ in range(100):
        a, b = net.random_host_pair()
        result = net.send(a, b)
        assert result.delivered
        if result.optimal_hops > 0:
            stretches.append(result.stretch)
        if net.check_isolation(net.hosts[a].home_as, net.hosts[b].home_as,
                               result.path):
            isolated += 1
    print("  mean stretch vs the BGP path: {:.2f}".format(
        sum(stretches) / len(stretches)))
    print("  isolation property held on {}/100 paths".format(isolated))

    # --- Endpoint path negotiation: steady-state stretch 1 ---------------
    a, b = net.random_host_pair()
    negotiated = negotiate_path_set(net, net.hosts[a].home_as,
                                    net.hosts[b].home_as)
    result, within = send_negotiated(net, a, b, negotiated)
    print("\nAfter endpoint negotiation ({} ASes allowed): stretch {:.2f}, "
          "within negotiated set: {}".format(
              len(negotiated.allowed_ases), result.stretch, within))

    # --- Inbound TE with multihomed suffix joins --------------------------
    home = next(asn for asn in net.asg.ases()
                if len(net.asg.providers(asn)) >= 2 and net.asg.hosts(asn) > 0)
    te_host = PlannedHost(name="te-service", attach_at=home,
                          key_pair=KeyPair.generate(b"te", net.authority))
    te = MultihomedSuffixJoin(net, te_host, "te-service-ids")
    suffix_map = te.join_all()
    print("\nMultihomed AS {} joined one ID per provider:".format(home))
    src_as = net.hosts[a].home_as
    for suffix, (provider, _) in sorted(suffix_map.items()):
        result, engineered = te.send_via(src_as, suffix)
        print("  suffix {} → engineered entry via {:<6} "
              "(delivered over {} AS hops)".format(
                  suffix, str(provider), result.hops))

    # --- Stub failure containment ----------------------------------------
    stub = next(s for s in net.asg.stubs() if len(net.ases[s].hosted) > 0)
    ids = len(net.ases[stub].hosted)
    messages = net.fail_as(stub)
    net.check_rings()
    survivors_ok = all(net.send(*net.random_host_pair()).delivered
                       for _ in range(50))
    print("\nFailed stub {} ({} IDs): {} repair messages; all surviving "
          "pairs still reachable: {}".format(stub, ids, messages,
                                             survivors_ok))


if __name__ == "__main__":
    main()
