#!/usr/bin/env python
"""Mobility: the architectural motivation for routing on flat labels.

A host's identifier is the hash of its public key — it never changes when
the host moves.  This example moves a laptop across gateway routers (and
even briefly off the network) while a correspondent keeps sending to the
*same* flat label, with no resolution infrastructure anywhere.

Run:  python examples/mobile_host.py
"""

from repro import quick_intradomain
from repro.intra import ring


def main() -> None:
    net = quick_intradomain(n_routers=50, n_hosts=120, seed=3)
    laptop = net.next_planned_host()
    correspondent = sorted(net.hosts)[0]

    gateways = net.topology.edge_routers()[::7][:4]
    print("Laptop identity: {} (hash of its public key)".format(
        laptop.flat_id))
    print("It will visit gateways: {}\n".format(", ".join(gateways)))

    receipt = net.join_host(laptop, via_router=gateways[0])
    print("Attached at {} ({} join messages)".format(
        receipt.router, receipt.messages))

    for hop, gateway in enumerate(gateways[1:], start=1):
        # Move: detach (session timeout at the old gateway) and rejoin at
        # the new one with the *same* self-certifying identity.
        net.fail_host(laptop.name)
        receipt = net.join_host(laptop, via_router=gateway)
        net.check_ring()

        result = net.send(correspondent, laptop.name)
        print("Move {}: now at {:<5} rejoin={} msgs; packet to the same "
              "label delivered={} via {} hops".format(
                  hop, gateway, receipt.messages, result.delivered,
                  result.hops))
        assert result.delivered
        assert result.path[-1] == gateway

    # Ephemeral attachment: a short stop where the laptop doesn't take on
    # ring duties (cannot serve as successor/predecessor).
    net.fail_host(laptop.name)
    eph = ring.join_with_id(net, laptop.flat_id, gateways[0],
                            laptop.name, ephemeral=True)
    print("\nEphemeral stop at {}: {} msgs (vs ~{} for a stable join)"
          .format(gateways[0], eph.messages,
                  round(sum(net.stats.operation_costs('join')[:-1][-3:]) / 3)))
    result = net.send(correspondent, laptop.name)
    print("Still reachable at the same label: delivered={}".format(
        result.delivered))
    assert result.delivered


if __name__ == "__main__":
    main()
