#!/usr/bin/env python
"""Regenerate every figure of the paper's evaluation section in one run.

Prints the same rows/series the paper plots (with the paper's reported
trend quoted under each block).  Use ``--full`` for larger workloads
(several minutes); the default finishes in well under a minute.

Run:  python examples/reproduce_paper.py [--full]
"""

import argparse
import time

from repro.harness import experiments as E
from repro.harness import report as R
from repro.topology.isp import TCAM_ENTRIES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run at larger (slower) workload sizes")
    args = parser.parse_args()
    big = args.full
    k = 3 if big else 1

    plan = [
        (lambda: E.fig5a_intra_join_overhead(
            profiles=("AS1221", "AS1239", "AS3257", "AS3967"),
            host_counts=(10, 100, 1000 * k)), R.format_fig5a),
        (lambda: E.fig5b_join_overhead_cdf(
            profiles=("AS1221", "AS3967"), n_hosts=500 * k), R.format_fig5b),
        (lambda: E.fig5c_join_latency_cdf(
            profiles=("AS1221", "AS3967"), n_hosts=300 * k), R.format_fig5c),
        (lambda: E.fig6a_stretch_vs_cache(
            cache_sizes=(0, 64, 1024, 8192, TCAM_ENTRIES),
            n_hosts=800 * k, n_packets=400 * k), R.format_fig6a),
        (lambda: E.fig6b_load_balance(n_hosts=500 * k, n_packets=2000 * k),
         R.format_fig6b),
        (lambda: E.fig6c_memory(host_counts=(10, 100, 1000 * k)),
         R.format_fig6c),
        (lambda: E.fig7_partition_repair(ids_per_pop=(1, 4, 16, 64)),
         R.format_fig7),
        (lambda: E.fig7b_host_failure(n_hosts=500 * k, n_failures=150),
         R.format_fig7b),
        (lambda: E.fig7c_router_recovery(n_hosts=300 * k, n_failures=3 * k),
         R.format_fig7c),
        (lambda: E.fig8a_inter_join(n_ases=100, n_hosts=400 * k),
         R.format_fig8a),
        (lambda: E.fig8b_inter_stretch(n_ases=100, n_hosts=300 * k,
                                       finger_counts=(4, 16, 32),
                                       n_packets=300 * k), R.format_fig8b),
        (lambda: E.fig8c_inter_cache_stretch(n_ases=100, n_hosts=300 * k,
                                             n_packets=300 * k),
         R.format_fig8c),
        (lambda: E.fig8d_stub_failure(n_ases=100, n_hosts=400 * k),
         R.format_fig8d),
        (lambda: E.fig8e_bloom_peering(n_ases=100, n_hosts=300 * k,
                                       n_packets=300 * k), R.format_fig8e),
    ]

    start = time.time()
    for build, render in plan:
        step = time.time()
        print(render(build()))
        print("[{:.1f}s]".format(time.time() - step))
    print("\nAll figures regenerated in {:.1f}s.".format(time.time() - start))


if __name__ == "__main__":
    main()
