#!/usr/bin/env python
"""A replicated content service on ROFL: anycast front-ends, a multicast
feed, and default-off capability-gated access (paper Sections 5.2-5.3).

Run:  python examples/content_service.py
"""

from repro import quick_intradomain
from repro.idspace.crypto import KeyPair
from repro.services.anycast import AnycastGroup
from repro.services.multicast import MulticastGroup
from repro.services.security import AccessController, CapabilityAuthority


def main() -> None:
    net = quick_intradomain(n_routers=60, n_hosts=150, seed=7)
    edge = net.topology.edge_routers()

    # --- Anycast front-ends: clients hit the nearest replica -------------
    frontends = AnycastGroup(net, "cdn-frontend")
    replica_routers = edge[::9][:5]
    for router in replica_routers:
        frontends.add_server(router)
    net.check_ring()
    print("Anycast group 'cdn-frontend' with {} replicas".format(
        len(frontends.members)))
    for client in edge[3:30:6]:
        result = frontends.send(client)
        nearest = frontends.nearest_member_distance(client)
        print("  client@{:<5} reached a replica in {:>2} hops "
              "(nearest replica is {} hops away)".format(
                  client, result.hops, nearest))

    # --- Multicast feed: origin pushes to all replicas -------------------
    feed = MulticastGroup(net, "cdn-invalidation")
    for i, router in enumerate(replica_routers):
        feed.join("replica-{}".format(i), router)
    report = feed.multicast("replica-0")
    print("\nMulticast invalidation from replica-0: {} replicas reached "
          "with {} messages over a {}-edge tree".format(
              len(report.receivers), report.messages,
              feed.tree_edge_count()))
    assert report.receivers == {"replica-{}".format(i) for i in range(5)}

    # --- Default-off + capabilities for the origin server ----------------
    origin_key = KeyPair.generate(b"origin-server", net.authority)
    controller = AccessController()
    caps = CapabilityAuthority(origin_key)

    subscriber = KeyPair.generate(b"paying-subscriber", net.authority)
    stranger = KeyPair.generate(b"random-scanner", net.authority)

    controller.register(origin_key.flat_id,
                        allowed_sources={subscriber.flat_id})
    token = caps.grant(subscriber.flat_id, expires_at=3600.0)

    print("\nDefault-off origin:")
    for name, key in (("subscriber", subscriber), ("stranger", stranger)):
        admitted, reason = controller.admit(key.flat_id, origin_key.flat_id)
        print("  {:<10} network admission: {} ({})".format(
            name, "PASS" if admitted else "DROP", reason))
    print("  subscriber capability check: {}".format(
        caps.verify(token, now=100.0, claimed_src=subscriber.flat_id)))
    print("  stranger replaying the token: {}".format(
        caps.verify(token, now=100.0, claimed_src=stranger.flat_id)))


if __name__ == "__main__":
    main()
