#!/usr/bin/env python
"""Quickstart: bring up an ISP running ROFL and route on flat labels.

Builds a synthetic PoP-structured ISP, joins hosts whose identifiers are
hashes of their public keys (no location semantics whatsoever), routes
packets greedily on the identifier ring, and shows the effect of the
pointer cache.

Run:  python examples/quickstart.py
"""

from repro import quick_intradomain


def main() -> None:
    print("Building a 60-router ISP and joining 200 hosts...")
    net = quick_intradomain(n_routers=60, n_hosts=200, seed=1)
    net.check_ring()
    print("  ring consistent: {} identifiers ({} hosts + {} router IDs)"
          .format(len(net.vn_index), net.n_hosts, len(net.routers)))

    join_costs = net.stats.operation_costs("join")
    print("  avg join overhead: {:.1f} messages (network diameter {})"
          .format(sum(join_costs) / len(join_costs), net.topology.diameter()))

    print("\nRouting 200 random packets on flat labels...")
    delivered, stretches, cache_hits = 0, [], 0
    for _ in range(200):
        src, dst = net.random_host_pair()
        result = net.send(src, dst)
        delivered += result.delivered
        cache_hits += result.used_cache
        if result.delivered and result.optimal_hops > 0:
            stretches.append(result.stretch)
    print("  delivered: {}/200".format(delivered))
    print("  mean stretch vs shortest path: {:.2f}".format(
        sum(stretches) / len(stretches)))
    print("  packets that shortcut through a pointer cache: {}".format(
        cache_hits))

    print("\nFailing a host and verifying the ring heals...")
    victim = sorted(net.hosts)[0]
    messages = net.fail_host(victim)
    net.check_ring()
    print("  repaired with {} messages; ring still consistent".format(messages))

    print("\nDisconnecting and reconnecting a whole PoP...")
    report = net.partition_pop(0)
    print("  {} IDs were in the PoP; disconnect repair {} msgs, "
          "zero-ID merge {} msgs".format(report.ids_in_pop,
                                         report.disconnect_messages,
                                         report.reconnect_messages))
    print("  single consistent ring restored.")


if __name__ == "__main__":
    main()
