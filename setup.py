"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file lets
``pip install -e .`` fall back to the legacy setuptools editable path
when PEP 660 wheel building is unavailable (offline machines).
"""

from setuptools import setup

setup()
