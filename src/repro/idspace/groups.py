"""Group identifiers ``(G, x)`` (Section 5 of the paper).

Anycast, multicast and multihomed traffic engineering all use structured
suffixes: "Servers belonging to group G join with ID (G, x). A host may
then route to (G, y), where y is set arbitrarily. Intermediate routers
forward the packet towards G, treating all suffixes equally."

A group identifier splits the 128-bit namespace into a group prefix (the
hash of the group name, truncated) and a free suffix.  All members of a
group occupy one contiguous arc of the ring, so plain greedy routing
toward any ``(G, y)`` lands on *some* member — which is exactly the
anycast semantics the paper wants for free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.idspace.identifier import DEFAULT_BITS, FlatId

#: Number of leading bits that identify the group; the rest is the suffix.
DEFAULT_GROUP_BITS = 96


def group_prefix(group_name: str, bits: int = DEFAULT_BITS,
                 group_bits: int = DEFAULT_GROUP_BITS) -> int:
    """The integer prefix (top ``group_bits`` bits) for a named group."""
    if not 0 < group_bits < bits:
        raise ValueError("group_bits must leave room for a suffix")
    digest = hashlib.sha256(group_name.encode("utf-8")).digest()
    full = int.from_bytes(digest, "big") % (1 << bits)
    return full >> (bits - group_bits)


def make_member_id(group_name: str, suffix: int, bits: int = DEFAULT_BITS,
                   group_bits: int = DEFAULT_GROUP_BITS) -> FlatId:
    """Build the flat ID ``(G, x)`` for group ``G`` and suffix ``x``."""
    suffix_bits = bits - group_bits
    if not 0 <= suffix < (1 << suffix_bits):
        raise ValueError("suffix does not fit in {} bits".format(suffix_bits))
    prefix = group_prefix(group_name, bits=bits, group_bits=group_bits)
    return FlatId((prefix << suffix_bits) | suffix, bits=bits)


@dataclass(frozen=True)
class GroupId:
    """A parsed view of a ``(G, x)`` identifier."""

    name: str
    suffix: int
    bits: int = DEFAULT_BITS
    group_bits: int = DEFAULT_GROUP_BITS

    @property
    def flat_id(self) -> FlatId:
        return make_member_id(self.name, self.suffix, bits=self.bits,
                              group_bits=self.group_bits)

    @property
    def prefix(self) -> int:
        return group_prefix(self.name, bits=self.bits, group_bits=self.group_bits)

    def same_group(self, other_id: FlatId) -> bool:
        """Does ``other_id`` carry this group's prefix?"""
        return other_id.prefix_bits(self.group_bits) == self.prefix

    def arc_bounds(self) -> "tuple[FlatId, FlatId]":
        """The inclusive [low, high] arc of the ring this group occupies."""
        suffix_bits = self.bits - self.group_bits
        low = self.prefix << suffix_bits
        high = low | ((1 << suffix_bits) - 1)
        return FlatId(low, bits=self.bits), FlatId(high, bits=self.bits)
