"""The flat identifier namespace ROFL routes on.

ROFL identifiers are flat: they carry no location semantics, only
(optionally) cryptographic content.  This package provides:

* :class:`repro.idspace.identifier.FlatId` — an immutable 128-bit label.
* :class:`repro.idspace.identifier.RingSpace` — circular namespace math
  (clockwise distance, interval membership, greedy progress).
* :mod:`repro.idspace.crypto` — self-certifying identities: an ID is the
  hash of a public key, and joins must prove possession of the private key.
* :mod:`repro.idspace.groups` — ``(G, x)`` group identifiers used for
  anycast, multicast and traffic engineering (Section 5 of the paper).
"""

from repro.idspace.identifier import FlatId, RingSpace, DEFAULT_BITS
from repro.idspace.crypto import KeyPair, SignatureAuthority, SpoofedIdentityError
from repro.idspace.groups import GroupId, group_prefix, make_member_id

__all__ = [
    "FlatId",
    "RingSpace",
    "DEFAULT_BITS",
    "KeyPair",
    "SignatureAuthority",
    "SpoofedIdentityError",
    "GroupId",
    "group_prefix",
    "make_member_id",
]
