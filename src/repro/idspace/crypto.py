"""Self-certifying identities (Section 2.1 of the paper).

"We use self-certifying identifiers; that is, we assume a host's or
router's identity is tied to a public-private key pair, and its identifier
(ID) is a hash of its public key. … When a host is assigned to a hosting
router, before its ID can become resident, the host must prove to the
router cryptographically that it holds the appropriate private key."

Substitution (documented in DESIGN.md §3.4): the paper assumes a real
asymmetric signature scheme; an offline reproduction does not need RSA to
exercise the *protocol-visible* behaviour, only a scheme in which

1. the identifier is deterministically derived from the public key,
2. only the holder of the private key can produce a signature that
   verifies against that public key, and
3. anyone can verify without the private key.

We model the asymmetric "math" with a :class:`SignatureAuthority` oracle:
key generation registers the (public → private) binding inside the oracle,
and verification re-derives the expected MAC through the oracle.  Attacker
code in tests never touches the oracle's internals — it only holds public
keys — so forged joins fail exactly as they would under real signatures.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.idspace.identifier import DEFAULT_BITS, FlatId


class SpoofedIdentityError(Exception):
    """Raised when a join or control message fails identity verification."""


def _digest(*parts: bytes) -> bytes:
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return h.digest()


class SignatureAuthority:
    """Oracle standing in for asymmetric signature mathematics.

    One authority instance plays the role of "the algebra" for a whole
    simulation: it knows, for every generated key pair, which private key
    corresponds to a public key, and uses that to check signatures.  It is
    *not* a trusted third party in the simulated protocol — protocol code
    only ever exchanges public keys and signatures.
    """

    def __init__(self) -> None:
        self._private_for_public: Dict[bytes, bytes] = {}

    def register(self, public_key: bytes, private_key: bytes) -> None:
        existing = self._private_for_public.get(public_key)
        if existing is not None and existing != private_key:
            raise ValueError("public key collision with mismatched private key")
        self._private_for_public[public_key] = private_key

    @staticmethod
    def _mac(private_key: bytes, message: bytes) -> bytes:
        return hmac.new(private_key, message, hashlib.sha256).digest()

    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        """Check that ``signature`` was produced by ``public_key``'s holder."""
        private = self._private_for_public.get(public_key)
        if private is None:
            return False
        return hmac.compare_digest(self._mac(private, message), signature)


#: Default authority shared by code that does not thread its own through.
DEFAULT_AUTHORITY = SignatureAuthority()


@dataclass
class KeyPair:
    """A public/private key pair whose public key hashes to a flat ID."""

    public_key: bytes
    _private_key: bytes = field(repr=False)
    authority: SignatureAuthority = field(default=DEFAULT_AUTHORITY, repr=False)
    bits: int = DEFAULT_BITS

    @classmethod
    def generate(
        cls,
        seed: bytes,
        authority: Optional[SignatureAuthority] = None,
        bits: int = DEFAULT_BITS,
    ) -> "KeyPair":
        """Deterministically generate a key pair from ``seed``.

        Determinism keeps simulations reproducible; distinct seeds give
        independent keys.
        """
        authority = authority or DEFAULT_AUTHORITY
        private = _digest(b"private", seed)
        public = _digest(b"public", private)
        authority.register(public, private)
        return cls(public_key=public, _private_key=private, authority=authority, bits=bits)

    @property
    def flat_id(self) -> FlatId:
        """The self-certifying identifier: a hash of the public key."""
        return FlatId.from_bytes(self.public_key, bits=self.bits)

    def sign(self, message: bytes) -> bytes:
        return SignatureAuthority._mac(self._private_key, message)

    def prove_ownership(self, challenge: bytes) -> "OwnershipProof":
        """Produce the proof a hosting router demands before a join."""
        return OwnershipProof(
            claimed_id=self.flat_id,
            public_key=self.public_key,
            challenge=challenge,
            signature=self.sign(_digest(b"join", challenge)),
        )


@dataclass(frozen=True)
class OwnershipProof:
    """A join-time proof that the sender holds the private key for an ID."""

    claimed_id: FlatId
    public_key: bytes
    challenge: bytes
    signature: bytes


def authenticate(
    proof: OwnershipProof, authority: Optional[SignatureAuthority] = None
) -> FlatId:
    """Verify a join proof; raise :class:`SpoofedIdentityError` on failure.

    This implements line 1 of Algorithm 1 ("authenticate(id) # exception
    on error"): the claimed ID must equal the hash of the public key, and
    the signature over the router's challenge must verify.
    """
    authority = authority or DEFAULT_AUTHORITY
    derived = FlatId.from_bytes(proof.public_key, bits=proof.claimed_id.bits)
    if derived != proof.claimed_id:
        raise SpoofedIdentityError("claimed ID is not the hash of the public key")
    message = _digest(b"join", proof.challenge)
    if not authority.verify(proof.public_key, message, proof.signature):
        raise SpoofedIdentityError("signature does not verify for claimed ID")
    return proof.claimed_id
