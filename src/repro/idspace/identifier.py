"""Flat identifiers and circular-namespace arithmetic.

The paper wraps 128-bit identifiers "to create a circular namespace and, as
in Chord, we use the notions of successor and predecessor" (Section 2.1).
Routing is greedy: "a packet destined for an ID is sent in the direction of
the pointer that is closest, but not past, the destination ID" (Section 2.2).
This module is the single source of truth for that arithmetic; every other
subsystem (intradomain rings, Canon merging, fingers, caches) goes through
it, so the namespace size is configurable in one place and properties such
as "greedy progress is monotone" can be tested once.
"""

from __future__ import annotations

import hashlib
from functools import total_ordering
from typing import Iterable, Optional

DEFAULT_BITS = 128


@total_ordering
class FlatId:
    """An immutable flat label in a ``2**bits`` circular namespace.

    Instances are hashable and totally ordered by numeric value, which is
    the *linear* order used to keep sorted rings; circular comparisons
    (successorship, clockwise distance) live on :class:`RingSpace`.
    """

    __slots__ = ("value", "bits", "_hash")

    def __init__(self, value: int, bits: int = DEFAULT_BITS):
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.value = value % (1 << bits)
        self.bits = bits

    @classmethod
    def from_bytes(cls, data: bytes, bits: int = DEFAULT_BITS) -> "FlatId":
        """Derive an identifier by hashing ``data`` into the namespace.

        This is how self-certifying IDs are formed: the identifier is "a
        hash of its public key".
        """
        digest = hashlib.sha256(data).digest()
        return cls(int.from_bytes(digest, "big"), bits=bits)

    @classmethod
    def from_hex(cls, text: str, bits: int = DEFAULT_BITS) -> "FlatId":
        return cls(int(text, 16), bits=bits)

    def to_hex(self) -> str:
        width = (self.bits + 3) // 4
        return format(self.value, "0{}x".format(width))

    def prefix_bits(self, n: int) -> int:
        """The top ``n`` bits, used by prefix-based finger tables."""
        if not 0 <= n <= self.bits:
            raise ValueError("prefix length out of range")
        return self.value >> (self.bits - n) if n else 0

    def digit(self, row: int, base_bits: int) -> int:
        """Digit ``row`` of the ID when written in base ``2**base_bits``.

        Row 0 is the most significant digit; this is the Pastry-style view
        used by the proximity finger tables (Section 4.1).
        """
        shift = self.bits - (row + 1) * base_bits
        if shift < 0:
            raise ValueError("row out of range for this namespace")
        return (self.value >> shift) & ((1 << base_bits) - 1)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FlatId)
            and self.value == other.value
            and self.bits == other.bits
        )

    def __lt__(self, other: "FlatId") -> bool:
        if not isinstance(other, FlatId):
            return NotImplemented
        return self.value < other.value

    def __hash__(self) -> int:
        # Hashing only the value keeps equal IDs hash-equal (equality
        # implies equal values); the result is memoised because IDs are
        # immutable and live in many dict-keyed hot paths.
        try:
            return self._hash
        except AttributeError:
            result = self._hash = hash(self.value)
            return result

    def __repr__(self) -> str:
        return "FlatId(0x{}…)".format(self.to_hex()[:8])


class RingSpace:
    """Circular-namespace arithmetic over ``2**bits`` labels.

    All interval conventions follow Chord: ``successor`` relations use
    half-open intervals ``(a, b]`` clockwise, so that an ID is its own
    successor only in a single-node ring.
    """

    def __init__(self, bits: int = DEFAULT_BITS):
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.bits = bits
        self.size = 1 << bits
        #: ``size - 1``; with a power-of-two namespace, ``x & mask`` is the
        #: wrap used by the int-domain fast paths below.
        self.mask = self.size - 1

    def make(self, value: int) -> FlatId:
        return FlatId(value, bits=self.bits)

    def hash_of(self, data: bytes) -> FlatId:
        return FlatId.from_bytes(data, bits=self.bits)

    def distance_cw(self, a: FlatId, b: FlatId) -> int:
        """Clockwise (increasing-value, wrapping) distance from ``a`` to ``b``."""
        return (b.value - a.value) % self.size

    def in_interval_oc(self, x: FlatId, a: FlatId, b: FlatId) -> bool:
        """True iff ``x`` lies in the clockwise interval ``(a, b]``.

        When ``a == b`` the interval is the whole ring (everything except
        nothing), matching the Chord convention for single-node rings.
        """
        if a == b:
            return True
        return 0 < self.distance_cw(a, x) <= self.distance_cw(a, b)

    def in_interval_oo(self, x: FlatId, a: FlatId, b: FlatId) -> bool:
        """True iff ``x`` lies strictly inside the clockwise interval ``(a, b)``."""
        if a == b:
            return x != a
        da = self.distance_cw(a, x)
        return 0 < da < self.distance_cw(a, b)

    def progress(self, current: FlatId, candidate: FlatId, dest: FlatId) -> Optional[int]:
        """Clockwise progress made by ``candidate`` toward ``dest``.

        Returns the distance advanced, or ``None`` if the candidate would
        overshoot (be "past" the destination) and is therefore not an
        admissible greedy hop.  Landing exactly on ``dest`` is maximal
        progress.
        """
        to_dest = self.distance_cw(current, dest)
        advanced = self.distance_cw(current, candidate)
        if advanced > to_dest:
            return None
        return advanced

    def closest_not_past(
        self, current: FlatId, dest: FlatId, candidates: Iterable[FlatId]
    ) -> Optional[FlatId]:
        """The greedy next hop: closest candidate to ``dest`` that is not past it.

        This is the rule of Algorithm 2 in the paper, evaluated by a linear
        scan — the right tool for small, *unsorted* candidate iterables
        (a successor group, one VN's pointer set).  For a maintained sorted
        key set, :meth:`repro.util.ringmap.SortedRingMap.closest_not_past`
        answers the same query with one bisect; the two are cross-checked
        against each other by the ring-invariant tests.  Returns ``None``
        when no candidate makes strictly positive progress.
        """
        best = None
        best_advance = 0
        for cand in candidates:
            advanced = self.progress(current, cand, dest)
            if advanced is not None and advanced > best_advance:
                best, best_advance = cand, advanced
        return best

    def midpoint(self, a: FlatId, b: FlatId) -> FlatId:
        """The ID halfway along the clockwise arc from ``a`` to ``b``."""
        return self.make(a.value + self.distance_cw(a, b) // 2)

    # -- int-domain fast paths ---------------------------------------------------
    #
    # The greedy inner loops (forwarding, router indexes, ring maps) run
    # these operations millions of times per experiment.  Working on raw
    # ``int`` values skips FlatId allocation, ``total_ordering`` dispatch
    # and tuple hashing; the property tests assert each variant returns
    # exactly what its FlatId counterpart returns.

    def distance_cw_i(self, a: int, b: int) -> int:
        """Int-domain :meth:`distance_cw` over raw ``.value`` ints."""
        return (b - a) & self.mask

    def in_interval_oc_i(self, x: int, a: int, b: int) -> bool:
        """Int-domain :meth:`in_interval_oc` (clockwise ``(a, b]``)."""
        if a == b:
            return True
        mask = self.mask
        return 0 < ((x - a) & mask) <= ((b - a) & mask)

    def in_interval_oo_i(self, x: int, a: int, b: int) -> bool:
        """Int-domain :meth:`in_interval_oo` (clockwise ``(a, b)``)."""
        if a == b:
            return x != a
        mask = self.mask
        da = (x - a) & mask
        return 0 < da < ((b - a) & mask)

    def progress_i(self, current: int, candidate: int, dest: int) -> Optional[int]:
        """Int-domain :meth:`progress`."""
        mask = self.mask
        advanced = (candidate - current) & mask
        if advanced > ((dest - current) & mask):
            return None
        return advanced

    def closest_not_past_i(self, current: int, dest: int,
                           candidates: Iterable[int]) -> Optional[int]:
        """Int-domain :meth:`closest_not_past` over raw values."""
        mask = self.mask
        to_dest = (dest - current) & mask
        best = None
        best_advance = 0
        for cand in candidates:
            advanced = (cand - current) & mask
            if advanced <= to_dest and advanced > best_advance:
                best, best_advance = cand, advanced
        return best

    def __repr__(self) -> str:
        return "RingSpace(bits={})".format(self.bits)
