"""Persistent request-serving mode: a resident network behind JSON lines.

``python -m repro serve`` builds a network once (or warm-loads a
:mod:`repro.snapshot`), holds it resident, and answers a stream of
requests — so interactive exploration, scripted experiments, and
external tooling pay the expensive build/join phase exactly once instead
of per invocation.

Protocol — one JSON object per line, in either direction::

    → {"op": "send", "id": 7, "n": 100}
    ← {"ok": true, "op": "send", "id": 7, "sent": 100, "delivered": 100,
       "mean_stretch": 1.18, ...}

Every response echoes ``op`` (and ``id`` when the request carried one)
and has ``ok``; failures carry ``error`` instead of result fields, and a
bad request never kills the server.  Supported ops: ``ping``, ``info``,
``join``, ``leave``, ``send``, ``route``, ``workload``, ``metrics``,
``metrics_text``, ``save``, ``state_hash``, ``verify``, ``shutdown``.
Per-request latency is recorded through :mod:`repro.util.perf` as a
``serve.request.<op>`` timer plus a ``serve.latency.<op>`` histogram;
the ``metrics`` op reports both back out (with per-op p50/p95/p99), and
``metrics_text`` renders the whole registry in the Prometheus text
exposition format for external scrapers (see
:func:`repro.obs.metrics.render_prometheus`).

Transports: stdio (default — pipe-friendly), or TCP via ``--tcp PORT``
(line-delimited JSON over a socket, one resident network shared by
sequential connections).
"""

from __future__ import annotations

import json
import socketserver
import sys
import time
from typing import Any, Dict, IO, Iterable, Optional

from repro.util import perf


def build_network(kind: str = "intra", seed: int = 0, n_routers: int = 40,
                  n_ases: int = 60, hosts: int = 0,
                  cache_entries: Optional[int] = None, n_fingers: int = 8):
    """Build a fresh network the way workload scenarios do, plus an
    optional initial join phase (``hosts``)."""
    if kind == "intra":
        from repro.intra.network import IntraDomainNetwork
        from repro.topology.isp import synthetic_isp
        topo = synthetic_isp(n_routers=n_routers, seed=seed, name="serve")
        kwargs = {} if cache_entries is None else {
            "cache_entries": cache_entries}
        net = IntraDomainNetwork(topo, seed=seed, **kwargs)
    elif kind == "inter":
        from repro.inter.network import InterDomainNetwork
        from repro.topology.asgraph import synthetic_as_graph
        asg = synthetic_as_graph(n_ases=n_ases, seed=seed)
        net = InterDomainNetwork(asg, n_fingers=n_fingers, seed=seed,
                                 cache_entries=cache_entries or 0)
    else:
        raise ValueError("kind must be 'intra' or 'inter', got "
                         "{!r}".format(kind))
    if hosts:
        net.join_random_hosts(hosts)
        net.flush_indexes()
    return net


class ServeError(ValueError):
    """A request the server understood enough to reject cleanly."""


def _path_result_dict(result) -> Dict[str, Any]:
    return {
        "delivered": result.delivered,
        "hops": result.hops,
        "optimal_hops": result.optimal_hops,
        "pointer_hops": result.pointer_hops,
        "used_cache": result.used_cache,
        "stretch": round(result.stretch, 4),
        "path": [str(hop) for hop in result.path],
    }


class ReproServer:
    """One resident network plus the request dispatch around it."""

    def __init__(self, net):
        self.net = net
        self.requests_served = 0
        self._shutdown = False

    @property
    def kind(self) -> str:
        return ("intra" if type(self.net).__name__ == "IntraDomainNetwork"
                else "inter")

    # -- dispatch ----------------------------------------------------------

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one decoded request; never raises."""
        if not isinstance(request, dict):
            return {"ok": False, "op": None,
                    "error": "request must be a JSON object"}
        op = request.get("op")
        handler = getattr(self, "_op_" + op, None) if isinstance(
            op, str) else None
        response: Dict[str, Any] = {"ok": True, "op": op}
        if "id" in request:
            response["id"] = request["id"]
        if handler is None:
            response["ok"] = False
            response["error"] = "unknown op {!r}; try one of: {}".format(
                op, ", ".join(sorted(
                    name[4:] for name in dir(self)
                    if name.startswith("_op_"))))
            return response
        start = time.perf_counter()
        try:
            with perf.timed("serve.request.{}".format(op)):
                result = handler(request)
        except Exception as exc:
            response["ok"] = False
            response["error"] = "{}: {}".format(type(exc).__name__, exc)
            return response
        perf.observe("serve.latency.{}".format(op),
                     time.perf_counter() - start)
        self.requests_served += 1
        response.update(result)
        return response

    def handle_line(self, line: str) -> Optional[str]:
        """Answer one raw request line (empty lines are ignored)."""
        line = line.strip()
        if not line:
            return None
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return json.dumps({"ok": False, "op": None,
                               "error": "bad JSON: {}".format(exc)})
        return json.dumps(self.handle(request), sort_keys=True)

    # -- ops ---------------------------------------------------------------

    def _op_ping(self, request: Dict) -> Dict:
        return {"pong": True}

    def _op_info(self, request: Dict) -> Dict:
        net = self.net
        info: Dict[str, Any] = {
            "kind": self.kind,
            "seed": net.seed,
            "hosts": len(net.hosts),
            "rng_streams": len(net.rngs),
            "requests_served": self.requests_served,
        }
        if self.kind == "intra":
            info["routers"] = len(net.routers)
            info["topology"] = net.topology.name
        else:
            info["ases"] = len(net.ases)
            info["peering_mode"] = net.peering_mode
        return info

    def _op_join(self, request: Dict) -> Dict:
        n = int(request.get("n", 1))
        if n < 1:
            raise ServeError("n must be >= 1")
        receipts = self.net.join_random_hosts(n)
        names = [r.host_name for r in receipts]
        return {"joined": len(receipts), "hosts": names,
                "total_hosts": len(self.net.hosts)}

    def _op_leave(self, request: Dict) -> Dict:
        host = request.get("host")
        if not host:
            raise ServeError("leave needs a 'host' name")
        if host not in self.net.hosts:
            raise ServeError("unknown host {!r}".format(host))
        if self.kind != "intra":
            raise ServeError(
                "graceful leave is an intradomain operation; "
                "interdomain departures are AS failures (fail_as)")
        messages = self.net.leave_host(host)
        return {"left": host, "messages": messages,
                "total_hosts": len(self.net.hosts)}

    def _op_send(self, request: Dict) -> Dict:
        n = int(request.get("n", 1))
        if n < 1:
            raise ServeError("n must be >= 1")
        if "src" in request or "dst" in request:
            raise ServeError("send routes random pairs; use op 'route' "
                             "for a specific src/dst")
        delivered = cached = 0
        hops = stretch_sum = 0.0
        for _ in range(n):
            result = self.net.send(*self.net.random_host_pair())
            if result.delivered:
                delivered += 1
                hops += result.hops
                stretch_sum += result.stretch
            cached += result.used_cache
        return {
            "sent": n,
            "delivered": delivered,
            "cache_hits": cached,
            "mean_hops": round(hops / delivered, 4) if delivered else 0.0,
            "mean_stretch": round(stretch_sum / delivered, 4)
            if delivered else 0.0,
        }

    def _op_route(self, request: Dict) -> Dict:
        src, dst = request.get("src"), request.get("dst")
        if not src or not dst:
            raise ServeError("route needs 'src' and 'dst' host names")
        for host in (src, dst):
            if host not in self.net.hosts:
                raise ServeError("unknown host {!r}".format(host))
        return _path_result_dict(self.net.send(src, dst))

    def _op_workload(self, request: Dict) -> Dict:
        from repro.workload.driver import run_scenario
        from repro.workload.scenario import Scenario, builtin_scenario
        spec = request.get("scenario")
        if isinstance(spec, str):
            scenario = builtin_scenario(spec, seed=int(request.get(
                "seed", self.net.seed)))
        elif isinstance(spec, dict):
            scenario = Scenario.from_dict(spec)
        else:
            raise ServeError("workload needs 'scenario': a builtin name "
                             "or a full scenario object")
        expected = scenario.network.kind
        if expected != self.kind:
            raise ServeError(
                "scenario targets a {!r} network but the resident network "
                "is {!r}".format(expected, self.kind))
        result = run_scenario(scenario, network=self.net)
        view = result.deterministic_view()
        return {
            "scenario": scenario.name,
            "summary": view["summary"],
            "totals": view["totals"],
            "faults": len(view["fault_log"]),
            "violations": view["violations"],
            "wall_seconds": result.wall_seconds,
        }

    @staticmethod
    def _latency_summary() -> Dict[str, Dict[str, float]]:
        """Per-op request-latency percentiles from the ``serve.latency.*``
        histograms (seconds)."""
        out: Dict[str, Dict[str, float]] = {}
        prefix = "serve.latency."
        for name, hist in perf.PERF.histograms.items():
            if name.startswith(prefix) and len(hist):
                snap = hist.snapshot()
                out[name[len(prefix):]] = {
                    "count": snap["count"],
                    "mean": round(snap["mean"], 9),
                    "p50": round(snap["p50"], 9),
                    "p95": round(snap["p95"], 9),
                    "p99": round(snap["p99"], 9),
                    "max": round(snap["max"], 9),
                }
        return out

    def _metrics_registry_snapshot(self) -> Dict[str, Any]:
        """The registry view ``metrics_text`` renders: the process perf
        registry plus the resident network's protocol message counters
        and a few liveness gauges."""
        snap = perf.snapshot()
        counters = dict(snap.get("counters", {}))
        for name, value in self.net.stats.messages.items():
            counters["net.messages." + name] = value
        snap["counters"] = counters
        gauges = dict(snap.get("gauges", {}))
        gauges["net.hosts"] = len(self.net.hosts)
        gauges["serve.requests_served"] = self.requests_served
        snap["gauges"] = gauges
        return snap

    def _op_metrics(self, request: Dict) -> Dict:
        return {
            "stats": self.net.stats.snapshot(),
            "perf": perf.snapshot(),
            "latency": self._latency_summary(),
            "requests_served": self.requests_served,
        }

    def _op_metrics_text(self, request: Dict) -> Dict:
        from repro.obs.metrics import render_prometheus
        return {
            "content_type": "text/plain; version=0.0.4",
            "text": render_prometheus(self._metrics_registry_snapshot()),
        }

    def _op_save(self, request: Dict) -> Dict:
        from repro import snapshot
        path = request.get("path")
        if not path:
            raise ServeError("save needs a 'path'")
        digest = snapshot.save(self.net, path,
                               meta={"source": "serve",
                                     **request.get("meta", {})})
        return {"path": path, "state_hash": digest}

    def _op_state_hash(self, request: Dict) -> Dict:
        from repro import snapshot
        self.net.flush_indexes()
        return {"state_hash": snapshot.state_hash(self.net)}

    def _op_verify(self, request: Dict) -> Dict:
        from repro import snapshot
        violations = snapshot.validate_network(self.net)
        return {"violations": violations, "clean": not violations}

    def _op_shutdown(self, request: Dict) -> Dict:
        self._shutdown = True
        return {"bye": True, "requests_served": self.requests_served}

    # -- transports --------------------------------------------------------

    def serve_lines(self, lines: Iterable[str], out: IO[str]) -> int:
        """Core loop shared by every transport; returns requests answered."""
        answered = 0
        for line in lines:
            reply = self.handle_line(line)
            if reply is None:
                continue
            out.write(reply + "\n")
            out.flush()
            answered += 1
            if self._shutdown:
                break
        return answered

    def serve_stdio(self, stdin: Optional[IO[str]] = None,
                    stdout: Optional[IO[str]] = None) -> int:
        return self.serve_lines(stdin or sys.stdin, stdout or sys.stdout)

    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0,
                  ready=None, timeout: Optional[float] = None) -> None:
        """Serve line-delimited JSON over TCP until a ``shutdown`` op.

        ``ready(actual_port)`` is called once the socket is bound —
        tests use it to learn an ephemeral port.  ``timeout`` bounds how
        long one connection may sit idle mid-session (seconds); an idle
        or vanished client is dropped and the server moves on to the
        next connection instead of wedging.
        """
        server_self = self
        conn_timeout = timeout

        class Handler(socketserver.StreamRequestHandler):
            # BaseRequestHandler.setup() applies this to the connection
            # socket, so a silent client cannot hold the server forever.
            timeout = conn_timeout

            def handle(self) -> None:
                reader = (raw.decode("utf-8", "replace")
                          for raw in self.rfile)
                out = _SocketWriter(self.wfile)
                try:
                    server_self.serve_lines(reader, out)
                except (BrokenPipeError, ConnectionResetError,
                        TimeoutError):
                    # The client hung up mid-request (or idled past the
                    # timeout).  Abandon this connection quietly; the
                    # resident network is untouched and the accept loop
                    # continues.
                    perf.counter("serve.disconnects")

        with _ReuseAddrTCPServer((host, port), Handler) as tcp:
            if ready is not None:
                ready(tcp.server_address[1])
            while not self._shutdown:
                tcp.handle_request()


class _ReuseAddrTCPServer(socketserver.TCPServer):
    """TCPServer that sets ``SO_REUSEADDR`` *before* binding.

    ``TCPServer.__init__`` binds in the constructor, so flipping
    ``allow_reuse_address`` on the instance afterwards is a no-op — the
    flag must be a class attribute to take effect, or a restart within
    TIME_WAIT of a previous run fails with ``EADDRINUSE``.
    """

    allow_reuse_address = True

    def handle_error(self, request, client_address) -> None:
        # Abrupt disconnects escaping the handler (e.g. during the
        # response flush in ``finish()``) are routine churn, not server
        # errors — don't spew a traceback for them.
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError,
                            TimeoutError)):
            perf.counter("serve.disconnects")
            return
        super().handle_error(request, client_address)


class _SocketWriter:
    """File-ish text adapter over a binary socket write file."""

    def __init__(self, wfile):
        self.wfile = wfile

    def write(self, text: str) -> None:
        self.wfile.write(text.encode("utf-8"))

    def flush(self) -> None:
        self.wfile.flush()


class ShardedReproServer(ReproServer):
    """The serve protocol over a sharded simulation instead of one net.

    The resident "network" is a :class:`repro.sim.shard.ShardCoordinator`
    — N worker processes holding lock-step replicas.  Bulk operations
    (``join``, ``send``) and observers (``metrics``, ``metrics_text``,
    ``state_hash``, ``save``, ``info``) forward to the coordinator; the
    metrics surfaces render the *merged* coordinator + all-worker
    registry view (per-shard ``shard.<k>.*`` gauges included) plus the
    live window counters the coordinator folds in at every barrier.
    Operations that need an in-process network object (``route``,
    ``leave``, ``workload``, ``verify``) reject cleanly with a pointer
    at unsharded mode.
    """

    def __init__(self, sim):
        super().__init__(net=None)
        self.sim = sim

    @property
    def kind(self) -> str:
        return "inter"

    def _unsharded_only(self, op: str):
        raise ServeError("op {!r} is not available with --shards; "
                         "run an unsharded server".format(op))

    def _op_info(self, request: Dict) -> Dict:
        info = self.sim.info()
        info["kind"] = self.kind
        info["requests_served"] = self.requests_served
        return info

    def _op_join(self, request: Dict) -> Dict:
        n = int(request.get("n", 1))
        if n < 1:
            raise ServeError("n must be >= 1")
        joined = self.sim.join_hosts(n)
        return {"joined": joined, "total_hosts": self.sim.hosts_joined}

    def _op_send(self, request: Dict) -> Dict:
        n = int(request.get("n", 1))
        if n < 1:
            raise ServeError("n must be >= 1")
        if "src" in request or "dst" in request:
            raise ServeError("send routes random pairs; op 'route' is "
                             "not available with --shards")
        return self.sim.run_sends(n)

    def _merged_registry(self):
        """All worker registries folded together (``shard.<k>.*`` gauges
        included) plus the coordinator's own serve timers — the one view
        every sharded metrics surface renders from.  Only gauges and the
        window counter come from :attr:`~repro.sim.shard.ShardCoordinator.
        live_perf`: its counters are window deltas of the same registries
        :meth:`~repro.sim.shard.ShardCoordinator.merged_perf` already
        sums, so folding them wholesale would double-count."""
        merged = self.sim.merged_perf()
        merged.merge(perf.PERF)  # fold in coordinator-side serve timers
        merged.gauges.update(self.sim.live_perf.gauges)
        windows = self.sim.live_perf.counters.get("shard.windows", 0)
        if windows:
            merged.counter("shard.windows", windows)
        return merged

    def _metrics_registry_snapshot(self) -> Dict[str, Any]:
        snap = self._merged_registry().snapshot()
        gauges = dict(snap.get("gauges", {}))
        gauges["serve.requests_served"] = self.requests_served
        snap["gauges"] = gauges
        return snap

    def _op_metrics(self, request: Dict) -> Dict:
        worker = self.sim.metrics()
        return {
            "stats": worker["snapshot"],
            "lookup_mismatches": worker["lookup_mismatches"],
            "perf": self._merged_registry().snapshot(),
            "latency": self._latency_summary(),
            "live": {
                "windows_synced": self.sim.windows_synced,
                "counters": dict(self.sim.live_perf.counters),
                "gauges": dict(self.sim.live_perf.gauges),
            },
            "requests_served": self.requests_served,
        }

    def _op_save(self, request: Dict) -> Dict:
        path = request.get("path")
        if not path:
            raise ServeError("save needs a 'path'")
        digest = self.sim.save(path, meta={"source": "serve",
                                           **request.get("meta", {})})
        return {"path": path, "state_hash": digest}

    def _op_state_hash(self, request: Dict) -> Dict:
        self.sim.flush_indexes()
        return {"state_hash": self.sim.state_hash()}

    def _op_route(self, request: Dict) -> Dict:
        self._unsharded_only("route")

    def _op_leave(self, request: Dict) -> Dict:
        self._unsharded_only("leave")

    def _op_workload(self, request: Dict) -> Dict:
        self._unsharded_only("workload")

    def _op_verify(self, request: Dict) -> Dict:
        self._unsharded_only("verify")
