"""Flooding cost/latency models and OSPF-style timers.

Two things the benchmarks need from the link-state protocol itself:

* the *message cost* of a flood (LSA distribution, and the flooding join
  of a router's default virtual node in Section 3.1, and the
  CMU-ETHERNET baseline whose host joins flood every link);
* the *time* for information to reach the whole network (failure
  detection + LSA propagation ≈ OSPF recovery time, the baseline the
  paper compares non-partition recovery against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.linkstate.lsdb import LinkStateMap
from repro.linkstate.spf import PathCache


@dataclass(frozen=True)
class OspfTimers:
    """Classic OSPF-ish timer settings (milliseconds)."""

    hello_interval_ms: float = 10_000.0
    dead_interval_ms: float = 40_000.0
    #: Sub-second detection as deployed ISPs tune it; used by default so
    #: recovery-time benchmarks aren't dominated by 40 s dead timers.
    fast_detect_ms: float = 300.0
    spf_delay_ms: float = 50.0


def flood_message_cost(lsmap: LinkStateMap,
                       origin: Optional[str] = None) -> int:
    """Messages for one reliable flood over the live graph.

    Standard link-state flooding sends each LSA over every live link once
    in each direction except back toward the sender; in the aggregate this
    is one message per link per direction minus the in-edges of the
    origin's spanning tree — we use the conventional upper bound of
    ``2·|E|`` minus the origin's savings, and simply model ``2·|E|``
    when no origin is given.
    """
    n_links = lsmap.live_graph.number_of_edges()
    if origin is None:
        return 2 * n_links
    return max(0, 2 * n_links - lsmap.live_graph.degree(origin))


def flood_latency_ms(lsmap: LinkStateMap, origin: str,
                     paths: Optional[PathCache] = None) -> float:
    """Time for a flood from ``origin`` to reach every reachable router."""
    paths = paths or PathCache(lsmap)
    worst = 0.0
    for router in lsmap.live_routers():
        latency = paths.latency_ms(origin, router)
        if latency is not None:
            worst = max(worst, latency)
    return worst


class FloodModel:
    """Convenience bundle: charge floods to a stats collector."""

    def __init__(self, lsmap: LinkStateMap, stats=None,
                 timers: OspfTimers = OspfTimers()):
        self.lsmap = lsmap
        self.stats = stats
        self.timers = timers

    def lsa_flood(self, origin: str, category: str = "lsa") -> int:
        cost = flood_message_cost(self.lsmap, origin)
        if self.stats is not None:
            self.stats.charge_hops(cost, category)
        return cost

    def recovery_time_ms(self, origin: str,
                         paths: Optional[PathCache] = None) -> float:
        """Failure detection + flood + SPF — the OSPF recovery baseline."""
        return (self.timers.fast_detect_ms
                + flood_latency_ms(self.lsmap, origin, paths)
                + self.timers.spf_delay_ms)
