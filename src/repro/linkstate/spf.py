"""Shortest-path computation over the live map, with caching.

The hot loops (every source-route setup, every data packet's stretch
denominator) need hop-count shortest paths; join latency needs
latency-weighted paths.  Both are cached per source and invalidated by the
link-state map's ``generation`` counter, so a burst of queries between
topology changes costs one BFS/Dijkstra per source.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.linkstate.lsdb import LinkStateMap


class PathCache:
    """Generation-validated shortest-path oracle over a :class:`LinkStateMap`."""

    def __init__(self, lsmap: LinkStateMap):
        self.lsmap = lsmap
        self._generation = -1
        self._hop_paths: Dict[str, Dict[str, List[str]]] = {}
        self._latency_dist: Dict[str, Dict[str, float]] = {}

    def _fresh(self) -> None:
        if self._generation != self.lsmap.generation:
            self._hop_paths.clear()
            self._latency_dist.clear()
            self._generation = self.lsmap.generation

    # -- hop-count metric --------------------------------------------------------

    def _hop_tree(self, src: str) -> Dict[str, List[str]]:
        self._fresh()
        tree = self._hop_paths.get(src)
        if tree is None:
            if src not in self.lsmap.live_graph:
                tree = {}
            else:
                tree = nx.single_source_shortest_path(self.lsmap.live_graph, src)
            self._hop_paths[src] = tree
        return tree

    def hop_path(self, src: str, dst: str) -> Optional[List[str]]:
        """Fewest-hops router path, or ``None`` when unreachable."""
        return self._hop_tree(src).get(dst)

    def hop_dist(self, src: str, dst: str) -> Optional[int]:
        path = self.hop_path(src, dst)
        return None if path is None else len(path) - 1

    def nearest(self, src: str, candidates) -> Optional[str]:
        """The reachable candidate fewest hops from ``src``."""
        best, best_dist = None, None
        for cand in candidates:
            dist = self.hop_dist(src, cand)
            if dist is None:
                continue
            if best_dist is None or dist < best_dist:
                best, best_dist = cand, dist
        return best

    # -- latency metric ------------------------------------------------------------

    def latency_ms(self, src: str, dst: str) -> Optional[float]:
        """Latency of the minimum-latency path, or ``None`` if unreachable."""
        self._fresh()
        dists = self._latency_dist.get(src)
        if dists is None:
            if src not in self.lsmap.live_graph:
                dists = {}
            else:
                dists = nx.single_source_dijkstra_path_length(
                    self.lsmap.live_graph, src, weight="latency_ms")
            self._latency_dist[src] = dists
        return dists.get(dst)

    def path_latency_ms(self, path: List[str]) -> float:
        """Latency along an explicit source route."""
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.lsmap.live_graph.edges[a, b]["latency_ms"]
        return total

    # -- diameter (used by the join-cost sanity checks) -----------------------------

    def live_diameter(self) -> int:
        graph = self.lsmap.live_graph
        if graph.number_of_nodes() == 0:
            return 0
        if not nx.is_connected(graph):
            raise ValueError("live graph is partitioned; diameter undefined")
        return nx.diameter(graph)
