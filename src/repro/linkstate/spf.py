"""Shortest-path computation over the live map, with caching.

The hot loops (every source-route setup, every data packet's stretch
denominator) need hop-count shortest paths; join latency needs
latency-weighted paths.  Both are cached per source.

Invalidation is *selective*: the cache subscribes to the link-state
map's :class:`TopologyEvent` stream and, on a failure event, evicts only
the sources whose cached SPF tree could actually have used the failed
element.  Removing a link or router can never shorten any other source's
paths, so a tree that does not touch the failed element stays exact.  A
restoration (``LINK_UP`` / ``ROUTER_UP``) can improve *any* path, so
those events clear everything.  Under the fig-7 churn workloads this
keeps the vast majority of trees warm across each failure burst; see the
``spf.evict.*`` perf counters.

The ``generation`` check remains as a belt-and-braces fallback for
caches that missed events (e.g. maps mutated before the cache attached).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.linkstate.lsdb import EventKind, LinkStateMap, TopologyEvent
from repro.util import perf


class PathCache:
    """Event-invalidated shortest-path oracle over a :class:`LinkStateMap`."""

    def __init__(self, lsmap: LinkStateMap):
        self.lsmap = lsmap
        self._generation = lsmap.generation
        self._hop_paths: Dict[str, Dict[str, List[str]]] = {}
        self._latency_dist: Dict[str, Dict[str, float]] = {}
        lsmap.subscribe(self._on_event)

    # -- invalidation -------------------------------------------------------------

    def _on_event(self, event: TopologyEvent) -> None:
        """Evict exactly the cached trees the topology change can affect."""
        if event.kind in (EventKind.LINK_UP, EventKind.ROUTER_UP):
            # A restored element can improve paths from any source.
            perf.counter("spf.evict.full")
            self._hop_paths.clear()
            self._latency_dist.clear()
        elif event.kind is EventKind.LINK_DOWN:
            a, b = event.link
            # A source's paths can only change if its tree reached both
            # endpoints: if either was unreachable, the link was not on
            # (or near) any shortest path, and a removal never creates
            # reachability.
            self._evict(lambda reach: a in reach and b in reach)
        else:  # ROUTER_DOWN
            router = event.router
            self._evict(lambda reach: router in reach)
        self._generation = self.lsmap.generation

    def _evict(self, touches) -> None:
        evicted = 0
        for cache in (self._hop_paths, self._latency_dist):
            stale = [src for src, reach in cache.items() if touches(reach)]
            for src in stale:
                del cache[src]
            evicted += len(stale)
        perf.counter("spf.evict.selective")
        perf.counter("spf.evict.trees", evicted)

    def _fresh(self) -> None:
        if self._generation != self.lsmap.generation:
            self._hop_paths.clear()
            self._latency_dist.clear()
            self._generation = self.lsmap.generation

    # -- snapshot support ---------------------------------------------------------

    def __getstate__(self):
        """Serialize the subscription wiring but *not* the cached trees.

        SPF trees are pure derived state (deterministic recomputation
        from the live map), so :mod:`repro.snapshot` marks them
        rebuild-on-load instead of shipping megabytes of paths: the
        loaded cache starts cold and repopulates lazily.  Dropping them
        here also keeps the canonical state hash independent of how warm
        the oracle happened to be at save time.
        """
        state = self.__dict__.copy()
        state["_hop_paths"] = {}
        state["_latency_dist"] = {}
        return state

    # -- hop-count metric --------------------------------------------------------

    def _hop_tree(self, src: str) -> Dict[str, List[str]]:
        self._fresh()
        tree = self._hop_paths.get(src)
        if tree is None:
            with perf.timed("spf.hop_tree"):
                if src not in self.lsmap.live_graph:
                    tree = {}
                else:
                    tree = nx.single_source_shortest_path(
                        self.lsmap.live_graph, src)
            self._hop_paths[src] = tree
        return tree

    def hop_path(self, src: str, dst: str) -> Optional[List[str]]:
        """Fewest-hops router path, or ``None`` when unreachable."""
        return self._hop_tree(src).get(dst)

    def hop_dist(self, src: str, dst: str) -> Optional[int]:
        path = self.hop_path(src, dst)
        return None if path is None else len(path) - 1

    def nearest(self, src: str, candidates) -> Optional[str]:
        """The reachable candidate fewest hops from ``src``."""
        best, best_dist = None, None
        for cand in candidates:
            dist = self.hop_dist(src, cand)
            if dist is None:
                continue
            if best_dist is None or dist < best_dist:
                best, best_dist = cand, dist
        return best

    # -- latency metric ------------------------------------------------------------

    def latency_ms(self, src: str, dst: str) -> Optional[float]:
        """Latency of the minimum-latency path, or ``None`` if unreachable."""
        self._fresh()
        dists = self._latency_dist.get(src)
        if dists is None:
            with perf.timed("spf.latency_tree"):
                if src not in self.lsmap.live_graph:
                    dists = {}
                else:
                    dists = nx.single_source_dijkstra_path_length(
                        self.lsmap.live_graph, src, weight="latency_ms")
            self._latency_dist[src] = dists
        return dists.get(dst)

    def path_latency_ms(self, path: List[str]) -> float:
        """Latency along an explicit source route."""
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.lsmap.live_graph.edges[a, b]["latency_ms"]
        return total

    # -- diameter (used by the join-cost sanity checks) -----------------------------

    def live_diameter(self) -> int:
        graph = self.lsmap.live_graph
        if graph.number_of_nodes() == 0:
            return 0
        if not nx.is_connected(graph):
            raise ValueError("live graph is partitioned; diameter undefined")
        return nx.diameter(graph)
