"""The live link-state database (network map).

Wraps a static :class:`RouterTopology` with mutable failure state.  The
routing layer subscribes for :class:`TopologyEvent` notifications — this
is the paper's "notifies the routing layer of such events" — and reads
paths through an attached :class:`repro.linkstate.spf.PathCache`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.topology.graph import RouterTopology


class EventKind(enum.Enum):
    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    ROUTER_DOWN = "router_down"
    ROUTER_UP = "router_up"


@dataclass(frozen=True)
class TopologyEvent:
    kind: EventKind
    router: Optional[str] = None
    link: Optional[Tuple[str, str]] = None


class LinkStateMap:
    """Mutable live view over a static topology.

    ``generation`` increments on every change; path caches key their
    validity on it.  Failed routers take all their incident links down
    with them (and those links return when the router returns, unless the
    link itself was failed independently).
    """

    def __init__(self, topology: RouterTopology):
        topology.validate()
        self.topology = topology
        self.generation = 0
        self._failed_routers: Set[str] = set()
        self._failed_links: Set[frozenset] = set()
        self._subscribers: List[Callable[[TopologyEvent], None]] = []
        self._live: nx.Graph = topology.graph.copy()

    # -- subscriptions --------------------------------------------------------

    def subscribe(self, callback: Callable[[TopologyEvent], None]) -> None:
        self._subscribers.append(callback)

    def _notify(self, event: TopologyEvent) -> None:
        self.generation += 1
        for callback in list(self._subscribers):
            callback(event)

    # -- mutation ---------------------------------------------------------------

    def fail_link(self, a: str, b: str) -> None:
        key = frozenset((a, b))
        if key in self._failed_links:
            return
        self._failed_links.add(key)
        if self._live.has_edge(a, b):
            self._live.remove_edge(a, b)
        self._notify(TopologyEvent(EventKind.LINK_DOWN, link=(a, b)))

    def restore_link(self, a: str, b: str) -> None:
        key = frozenset((a, b))
        if key not in self._failed_links:
            return
        self._failed_links.discard(key)
        if (a not in self._failed_routers and b not in self._failed_routers
                and self.topology.graph.has_edge(a, b)):
            self._live.add_edge(a, b, **self.topology.graph.edges[a, b])
        self._notify(TopologyEvent(EventKind.LINK_UP, link=(a, b)))

    def fail_router(self, router: str) -> None:
        if router in self._failed_routers:
            return
        self._failed_routers.add(router)
        if router in self._live:
            self._live.remove_node(router)
        self._notify(TopologyEvent(EventKind.ROUTER_DOWN, router=router))

    def restore_router(self, router: str) -> None:
        if router not in self._failed_routers:
            return
        self._failed_routers.discard(router)
        self._live.add_node(router, **self.topology.graph.nodes[router])
        for nbr in self.topology.graph.neighbors(router):
            if (nbr in self._live
                    and frozenset((router, nbr)) not in self._failed_links):
                self._live.add_edge(router, nbr,
                                    **self.topology.graph.edges[router, nbr])
        self._notify(TopologyEvent(EventKind.ROUTER_UP, router=router))

    def fail_pop(self, pop: Hashable) -> List[str]:
        """Fail every router in a PoP (Fig 7's partition workload)."""
        routers = self.topology.routers_in_pop(pop)
        for router in routers:
            self.fail_router(router)
        return routers

    def restore_pop(self, pop: Hashable) -> List[str]:
        routers = self.topology.routers_in_pop(pop)
        for router in routers:
            self.restore_router(router)
        return routers

    # -- queries -----------------------------------------------------------------

    @property
    def live_graph(self) -> nx.Graph:
        return self._live

    def is_router_up(self, router: str) -> bool:
        return router in self._live

    def is_link_up(self, a: str, b: str) -> bool:
        return self._live.has_edge(a, b)

    def live_routers(self) -> List[str]:
        return list(self._live.nodes)

    def reachable(self, a: str, b: str) -> bool:
        if a not in self._live or b not in self._live:
            return False
        return nx.has_path(self._live, a, b)

    def components(self) -> List[Set[str]]:
        return [set(c) for c in nx.connected_components(self._live)]

    def path_is_live(self, path: List[str]) -> bool:
        """Is a stored source route still usable on the live map?"""
        if len(path) < 1:
            return False
        if any(router not in self._live for router in path):
            return False
        return all(self._live.has_edge(a, b) for a, b in zip(path, path[1:]))

    def failed_routers(self) -> Set[str]:
        return set(self._failed_routers)

    def __repr__(self) -> str:
        return "LinkStateMap({!r}, live={}/{} routers, gen={})".format(
            self.topology.name, self._live.number_of_nodes(),
            self.topology.n_routers, self.generation)
