"""The OSPF-like substrate ROFL assumes (paper Section 2.1).

"ROFL assumes an underlying OSPF-like protocol that provides a network map
(and not routes to hosts) and can identify link failures in the physical
network. … This protocol is used to detect link and node failures, and
notifies the routing layer of such events."

* :mod:`repro.linkstate.lsdb` — the live network map: failures, restores,
  reachability, failure notifications to subscribers.
* :mod:`repro.linkstate.spf` — cached shortest-path computation (hop-count
  and latency metrics) with generation-based invalidation.
* :mod:`repro.linkstate.protocol` — flooding cost/latency models and the
  OSPF-style timers used by the failure benchmarks.
"""

from repro.linkstate.lsdb import LinkStateMap, TopologyEvent
from repro.linkstate.spf import PathCache
from repro.linkstate.protocol import (
    FloodModel,
    OspfTimers,
    flood_message_cost,
    flood_latency_ms,
)

__all__ = [
    "LinkStateMap",
    "TopologyEvent",
    "PathCache",
    "FloodModel",
    "OspfTimers",
    "flood_message_cost",
    "flood_latency_ms",
]
