"""Landmark election and vicinity construction (Thorup–Zwick flavoured).

The Disco-style plane needs exactly two pieces of precomputed structure
over the physical graph:

* a set of **landmarks** — ``~sqrt(R)`` routers sampled deterministically
  from the seeded RNG registry (every router learns a route to every
  landmark when the landmarks flood their election);
* per-router **vicinities** — the Thorup–Zwick ball
  ``ball(v) = { w : d(v, w) < d(v, L(v)) }`` where ``L(v)`` is ``v``'s
  nearest landmark: each router keeps shortest routes to exactly the
  routers that are closer to it than its own landmark.

Both are pure functions of (topology, seed), so two networks built from
the same seed elect the same landmarks and agree on every ball — the
property the deterministic-replay contract of the rest of the repo
relies on.

The stretch-3 guarantee rests on two facts proved here once and probed
live by :class:`repro.obs.probes.StretchBoundProbe`:

* **ball closure** — shortest paths *into* a ball stay inside it: if
  ``x`` lies on a shortest path from ``v`` to ``w ∈ ball(v)`` then
  ``d(v, x) < d(v, w) < radius(v)``, so ``x ∈ ball(v)`` too; vicinity
  advertisements therefore cost one message per ball member (a spanning
  tree of the ball rooted at its centre);
* **radius bound** — for any source ``s ∉ ball(t)`` we have
  ``d(t, L(t)) ≤ d(s, t)``, which caps the landmark detour
  ``d(s, L(t)) + d(L(t), t) ≤ d(s, t) + 2·d(t, L(t)) ≤ 3·d(s, t)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.linkstate.spf import PathCache


@dataclass
class LandmarkPlan:
    """The elected landmarks plus every router's ball, radius and home.

    ``radius[v]`` is the hop distance from ``v`` to its nearest landmark
    ``home[v]`` (ties broken by landmark name, so the plan is a pure
    function of the topology and the election).  A landmark's own radius
    is 0 and its ball is empty — routing *to* a host at a landmark goes
    straight through the landmark leg with stretch 1.
    """

    landmarks: List[str]
    home: Dict[str, str] = field(default_factory=dict)
    radius: Dict[str, int] = field(default_factory=dict)
    ball: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def n_landmarks(self) -> int:
        return len(self.landmarks)

    def ball_size(self, router: str) -> int:
        return len(self.ball[router])

    def is_landmark(self, router: str) -> bool:
        return self.radius.get(router) == 0

    def max_ball_size(self) -> int:
        return max((len(members) for members in self.ball.values()),
                   default=0)


def landmark_count(n_routers: int, factor: float = 1.0) -> int:
    """``ceil(factor · sqrt(R))`` clamped to ``[1, R]`` — the
    Thorup–Zwick sweet spot where both the landmark table and the
    expected ball size are ``O(sqrt(R))`` entries."""
    if n_routers <= 0:
        raise ValueError("need at least one router")
    return max(1, min(n_routers, math.ceil(factor * math.sqrt(n_routers))))


def elect_landmarks(routers: List[str], rng, factor: float = 1.0) -> List[str]:
    """Sample the landmark set deterministically from ``rng``.

    The candidate list is sorted first so the election depends only on
    the RNG stream and the *set* of routers, never on dict/list order.
    """
    ordered = sorted(routers)
    k = landmark_count(len(ordered), factor)
    return sorted(rng.sample(ordered, k))


def build_plan(paths: PathCache, routers: List[str],
               landmarks: List[str]) -> LandmarkPlan:
    """Compute every router's nearest landmark, radius and ball.

    ``paths`` must cover a connected live graph (construction time);
    distances are hop counts, the same metric every stretch denominator
    in the repo uses.
    """
    plan = LandmarkPlan(landmarks=list(landmarks))
    ordered = sorted(routers)
    for router in ordered:
        best_dist, best_landmark = None, None
        for landmark in landmarks:
            dist = paths.hop_dist(router, landmark)
            if dist is None:
                continue
            if best_dist is None or (dist, landmark) < (best_dist,
                                                        best_landmark):
                best_dist, best_landmark = dist, landmark
        if best_landmark is None:
            raise ValueError(
                "router {!r} cannot reach any landmark".format(router))
        plan.home[router] = best_landmark
        plan.radius[router] = best_dist
        plan.ball[router] = set()
    for router in ordered:
        radius = plan.radius[router]
        if radius == 0:
            continue
        ball = plan.ball[router]
        for other in ordered:
            if other == router:
                continue
            dist = paths.hop_dist(router, other)
            if dist is not None and dist < radius:
                ball.add(other)
    return plan
