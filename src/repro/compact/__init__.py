"""Compact routing on flat names (Disco-style, DESIGN.md §13).

A landmark-based flat-label routing plane with a *provable* worst-case
stretch bound — the counterpoint baseline to ROFL's unbounded tail:

* :mod:`repro.compact.landmarks` — deterministic ``~sqrt(R)`` landmark
  election and Thorup–Zwick vicinity balls;
* :mod:`repro.compact.resolve` — name-independent locator directory
  (flat ID → resolver landmark) and per-router locator caches;
* :mod:`repro.compact.network` — :class:`DiscoNetwork`, the
  :class:`repro.baselines.FlatLabelBaseline` implementation with traced
  forwarding and ``stretch_bound = 3.0``.
"""

from repro.compact.landmarks import (LandmarkPlan, build_plan,
                                     elect_landmarks, landmark_count)
from repro.compact.network import DiscoNetwork
from repro.compact.resolve import (Locator, LocatorCache, ResolverDirectory,
                                   resolver_of)

__all__ = [
    "DiscoNetwork",
    "LandmarkPlan",
    "Locator",
    "LocatorCache",
    "ResolverDirectory",
    "build_plan",
    "elect_landmarks",
    "landmark_count",
    "resolver_of",
]
