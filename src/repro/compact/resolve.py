"""Name-independent resolution: flat label → locator, Disco style.

Compact routing gives bounded-stretch paths between *routers*, but a
flat label says nothing about which router a host sits behind.  Disco
closes the gap with a landmark-hosted directory: each flat ID hashes to
one landmark (its **resolver**), which stores the host's *locator* —
the attachment router plus that router's home landmark.  A sender does
one control-plane lookup (source → resolver → source, charged as
``lookup`` messages), caches the locator, and then routes the data
packet with the bounded-stretch router machinery.  Data-path stretch
stays ≤ 3 because the detour, if any, goes through the *target's own*
nearest landmark — the resolver's location never appears on the data
path.

The per-router :class:`LocatorCache` plays the same role as ROFL's
bounded pointer cache: a small, evictable pool of remembered locators
that turns repeat traffic into zero-lookup sends, with hit/miss
counters for the head-to-head comparison.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.idspace.identifier import FlatId


@dataclass(frozen=True)
class Locator:
    """Where a flat label currently lives.

    ``attach_router`` is the host's attachment point; ``home_landmark``
    is that router's nearest landmark, shipped with the locator so a
    sender outside the target's vicinity can address the landmark leg
    without any extra lookup.
    """

    host_id: FlatId
    attach_router: str
    home_landmark: str


def resolver_of(host_id: FlatId, landmarks: List[str]) -> str:
    """The landmark that stores ``host_id``'s locator.

    Plain modular hashing over the *sorted* landmark list: every router
    knows the election outcome, so every router maps an ID to the same
    resolver with no communication.
    """
    if not landmarks:
        raise ValueError("no landmarks elected")
    return landmarks[host_id.value % len(landmarks)]


class ResolverDirectory:
    """The union of all landmarks' locator stores.

    Keyed by flat ID; :meth:`register`/:meth:`withdraw` are what a join/
    leave writes at the resolver, :meth:`lookup` is what a resolution
    query reads.  One dict stands in for the per-landmark shards — the
    resolver assignment (:func:`resolver_of`) decides which landmark is
    *charged* for each access.
    """

    def __init__(self, landmarks: List[str]):
        self.landmarks = list(landmarks)
        self._records: Dict[FlatId, Locator] = {}

    def resolver_of(self, host_id: FlatId) -> str:
        return resolver_of(host_id, self.landmarks)

    def register(self, locator: Locator) -> str:
        """Store ``locator``; returns the resolver landmark charged."""
        self._records[locator.host_id] = locator
        return self.resolver_of(locator.host_id)

    def withdraw(self, host_id: FlatId) -> Optional[str]:
        """Drop the record; returns the resolver, or ``None`` if absent."""
        if self._records.pop(host_id, None) is None:
            return None
        return self.resolver_of(host_id)

    def lookup(self, host_id: FlatId) -> Optional[Locator]:
        return self._records.get(host_id)

    def entries_per_landmark(self) -> Dict[str, int]:
        """How many locator records each landmark shard holds."""
        counts = {landmark: 0 for landmark in self.landmarks}
        for host_id in self._records:
            counts[self.resolver_of(host_id)] += 1
        return counts

    def __len__(self) -> int:
        return len(self._records)


class LocatorCache:
    """Bounded LRU of resolved locators at one router.

    The analogue of ROFL's per-router pointer cache: capacity is the
    experiment knob, hits skip the resolver round-trip entirely, and a
    stale entry (host moved or left) is detected on use and re-queried —
    the same validate-on-use discipline ROFL applies to cached source
    routes.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 0:
            raise ValueError("negative cache capacity")
        self.capacity = capacity
        self._entries: "OrderedDict[FlatId, Locator]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, host_id: FlatId) -> Optional[Locator]:
        entry = self._entries.get(host_id)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(host_id)
        self.hits += 1
        return entry

    def put(self, locator: Locator) -> None:
        if self.capacity == 0:
            return
        self._entries[locator.host_id] = locator
        self._entries.move_to_end(locator.host_id)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, host_id: FlatId) -> bool:
        if self._entries.pop(host_id, None) is not None:
            self.invalidations += 1
            return True
        return False

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, host_id: FlatId) -> bool:
        return host_id in self._entries
