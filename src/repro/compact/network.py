"""DiscoNetwork: compact routing on flat names with provable stretch ≤ 3.

The third flat-label baseline beside CMU-ETHERNET and OSPF host routing
(see :mod:`repro.baselines`): a Disco-style protocol ("Scalable Routing
on Flat Names", Singla et al.) over the same ISP topologies and host
populations ROFL runs on.  Where ROFL trades bounded state for an
*unbounded* worst-case stretch (the paper can only report empirical
CDFs), Disco pays ``O(sqrt(R))`` routing entries per router for a
worst-case guarantee the obs layer can check packet by packet.

Control plane (built at construction + per join):

* **landmark election** — ``~sqrt(R)`` routers sampled from the seeded
  RNG registry flood their election; every router installs a route to
  every landmark (:mod:`repro.compact.landmarks`);
* **vicinity advertisement** — every router advertises itself (and
  later its attached hosts) into its Thorup–Zwick ball, so router ``v``
  ends up with a host entry for exactly the IDs attached at routers
  ``w`` with ``v ∈ ball(w)``;
* **name resolution** — each flat ID hashes to one landmark storing its
  locator (:mod:`repro.compact.resolve`); joins register there, senders
  query it once and cache the answer.

Data plane, per packet from router ``s`` to the target's attachment
router ``a`` with home landmark ``L(a)`` and radius ``r_a = d(a,
L(a))``:

* if the target ID is in ``s``'s vicinity table (``s ∈ ball(a)`` or
  ``s = a``) route the shortest path directly — stretch 1
  (``vicinity.direct``);
* otherwise route toward ``L(a)`` (``landmark.route``); any router on
  the way whose vicinity table knows the ID exits early onto a shortest
  path (``vicinity.shortcut``), else the packet descends ``L(a) → a``
  (``landmark.descend``).

The guarantee: ``s ∉ ball(a)`` means ``r_a ≤ d(s, a)``, so the detour
costs at most ``d(s, L(a)) + d(L(a), a) ≤ d(s, a) + 2·r_a ≤ 3·d(s,
a)``, and a mid-path shortcut never exceeds the remaining detour by the
triangle inequality — observed stretch ≤ 3 on every delivered packet,
asserted live by :class:`repro.obs.probes.StretchBoundProbe` from the
``end`` records emitted here.

Like ROFL's ``validate_pointer``, staleness is modelled against the
oracle: a cached locator that disagrees with the directory is detected
on use, invalidated, and re-queried at full lookup cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compact.landmarks import LandmarkPlan, build_plan, elect_landmarks
from repro.compact.resolve import Locator, LocatorCache, ResolverDirectory
from repro.idspace.identifier import FlatId
from repro.linkstate.lsdb import LinkStateMap
from repro.linkstate.protocol import flood_message_cost
from repro.linkstate.spf import PathCache
from repro.obs import trace
from repro.sim.stats import PathResult, StatsCollector
from repro.topology.graph import RouterTopology
from repro.topology.hosts import HostPlan, HostTable, PlannedHost
from repro.util import perf
from repro.util.rng import RngRegistry


class DiscoNetwork:
    """Compact flat-name routing over one ISP topology."""

    #: Provable worst-case data-path stretch (Thorup–Zwick argument in
    #: the module docstring); every ``end`` trace record carries it and
    #: the stretch-bound probe asserts ``hops ≤ bound · optimal``.
    stretch_bound = 3.0

    def __init__(self, topology: RouterTopology, seed: int = 0,
                 landmark_factor: float = 1.0,
                 locator_cache_entries: int = 64,
                 authority=None,
                 attachment_weights: Optional[List[float]] = None):
        self.topology = topology
        self.seed = seed
        self.lsmap = LinkStateMap(topology)
        self.paths = PathCache(self.lsmap)
        self.stats = StatsCollector()
        self.rngs = RngRegistry(seed)
        self._rng = self.rngs.derive("compact", "traffic")

        election_rng = self.rngs.derive("compact", "landmarks")
        self.plan: LandmarkPlan = build_plan(
            self.paths, list(topology.routers),
            elect_landmarks(list(topology.routers), election_rng,
                            landmark_factor))
        self.directory = ResolverDirectory(self.plan.landmarks)
        self.locator_cache_entries = locator_cache_entries
        self.caches: Dict[str, LocatorCache] = {
            router: LocatorCache(locator_cache_entries)
            for router in sorted(topology.routers)}
        #: router → flat IDs its vicinity table can route directly
        #: (hosts attached at routers whose ball contains it, plus its
        #: own attached hosts).
        self.vicinity_ids: Dict[str, Set[FlatId]] = {
            router: set() for router in topology.routers}

        self.hosts: HostTable = HostTable()          # name → FlatId
        self.host_location: Dict[FlatId, str] = {}   # FlatId → router
        self._host_names: Dict[FlatId, str] = {}
        self._plan = HostPlan(
            attachment_points=topology.edge_routers() or topology.routers,
            seed=seed, weights=attachment_weights, authority=authority,
            registry=self.rngs)
        self._bootstrap()

    # -- control plane -------------------------------------------------------

    def _bootstrap(self) -> None:
        """Charge the one-time protocol setup.

        Each landmark floods its election (every router must learn a
        route to every landmark), and each router advertises itself into
        its ball — ball closure makes that advertisement a spanning tree
        of the ball, one message per member.
        """
        with self.stats.operation("bootstrap"):
            for landmark in self.plan.landmarks:
                self.stats.charge_hops(
                    flood_message_cost(self.lsmap, landmark), "bootstrap")
            for router in sorted(self.topology.routers):
                self.stats.charge_hops(self.plan.ball_size(router),
                                       "bootstrap")

    def join_host(self, host: PlannedHost) -> int:
        """Join one host; returns the network-level messages charged to
        the join operation (the :class:`FlatLabelBaseline` contract).

        Two control actions: register the locator at the ID's resolver
        landmark (one message along the attach → resolver path) and
        advertise the ID into the attach router's ball (one message per
        ball member, by ball closure).
        """
        with perf.timed("compact.join"), \
                self.stats.operation("join", host=host.name) as op:
            attach = host.attach_at
            locator = Locator(host_id=host.flat_id, attach_router=attach,
                              home_landmark=self.plan.home[attach])
            resolver = self.directory.resolver_of(host.flat_id)
            reg_path = self.paths.hop_path(attach, resolver)
            if reg_path is None:
                raise ValueError("resolver {!r} unreachable from {!r}"
                                 .format(resolver, attach))
            self.stats.charge_path(reg_path, "join")
            self.stats.charge_hops(self.plan.ball_size(attach), "join")
            self.directory.register(locator)
            self.vicinity_ids[attach].add(host.flat_id)
            for member in self.plan.ball[attach]:
                self.vicinity_ids[member].add(host.flat_id)
        self.hosts[host.name] = host.flat_id
        self.host_location[host.flat_id] = attach
        self._host_names[host.flat_id] = host.name
        return op["messages"]

    def join_random_hosts(self, n: int) -> List[int]:
        return [self.join_host(self._plan.next_host()) for _ in range(n)]

    def leave_host(self, host_name: str) -> int:
        """Withdraw a host: unregister its locator and retract the ball
        advertisement; returns the messages charged.  Remote locator
        caches are *not* notified — they discover staleness on next use,
        exactly like ROFL's cached source routes."""
        host_id = self.hosts[host_name]
        attach = self.host_location[host_id]
        with self.stats.operation("leave", host=host_name) as op:
            resolver = self.directory.withdraw(host_id)
            if resolver is not None:
                path = self.paths.hop_path(attach, resolver)
                if path is not None:
                    self.stats.charge_path(path, "leave")
            self.stats.charge_hops(self.plan.ball_size(attach), "leave")
            self.vicinity_ids[attach].discard(host_id)
            for member in self.plan.ball[attach]:
                self.vicinity_ids[member].discard(host_id)
        del self.hosts[host_name]
        del self.host_location[host_id]
        del self._host_names[host_id]
        return op["messages"]

    # -- resolution ----------------------------------------------------------

    def _resolve(self, src_router: str, dest_id: FlatId,
                 tr) -> Tuple[Optional[Locator], bool]:
        """Locator for ``dest_id`` as seen from ``src_router``.

        Returns ``(locator, used_cache)``; ``(None, _)`` means the ID is
        not registered anywhere (the lookup round-trip is still paid).
        Cache hits are validated against the directory oracle — a stale
        entry is invalidated and re-queried at full cost.
        """
        current = self.directory.lookup(dest_id)
        if current is not None and current.attach_router == src_router:
            if tr is not None:
                tr.event("resolve.local", router=src_router)
            return current, False

        cache = self.caches[src_router]
        cached = cache.get(dest_id)
        if cached is not None:
            if cached == current:
                if tr is not None:
                    tr.event("resolve.hit", router=src_router)
                return cached, True
            cache.invalidate(dest_id)

        if tr is not None:
            tr.event("resolve.miss", router=src_router)
        resolver = self.directory.resolver_of(dest_id)
        query_path = self.paths.hop_path(src_router, resolver)
        if query_path is None:
            return None, False
        self.stats.charge_path(query_path, "lookup")
        self.stats.charge_path(list(reversed(query_path)), "lookup")
        if tr is not None:
            tr.event("resolve.query", router=src_router, resolver=resolver,
                     rtt_hops=2 * (len(query_path) - 1))
        if current is None:
            return None, False
        cache.put(current)
        return current, False

    # -- data plane ----------------------------------------------------------

    def send(self, src_host: str, dst_host: str) -> PathResult:
        src_router = self.host_location[self.hosts[src_host]]
        return self.send_to_id(src_router, self.hosts[dst_host])

    def send_to_id(self, src_router: str, dest_id: FlatId) -> PathResult:
        """Resolve ``dest_id`` and route one data packet toward it."""
        with perf.timed("compact.route.data"):
            tr = trace.packet_span("compact.packet", start=src_router,
                                   dest=dest_id.to_hex(),
                                   mode="data") if trace.ENABLED else None
            locator, used_cache = self._resolve(src_router, dest_id, tr)
            if locator is None:
                if tr is not None:
                    tr.end(delivered=False, reason="unknown id",
                           router=src_router)
                    trace.close_span(tr)
                return PathResult(delivered=False, path=[src_router])
            result = self._route(src_router, locator, tr)
            result.used_cache = used_cache
            return result

    def _route(self, src_router: str, locator: Locator, tr) -> PathResult:
        dest = locator.attach_router
        dest_id = locator.host_id
        optimal = self.paths.hop_dist(src_router, dest)
        if optimal is None:
            if tr is not None:
                tr.end(delivered=False, reason="destination unreachable",
                       router=src_router)
                trace.close_span(tr)
            return PathResult(delivered=False, path=[src_router])

        route_path: List[str] = [src_router]

        def walk(to: str) -> bool:
            """Extend the route along the shortest path to ``to``."""
            leg = self.paths.hop_path(route_path[-1], to)
            if leg is None:
                return False
            for frm, nxt in zip(leg, leg[1:]):
                route_path.append(nxt)
                if tr is not None:
                    tr.hop(frm=frm, to=nxt)
            return True

        delivered = True
        reason = "delivered"
        if dest_id in self.vicinity_ids[src_router]:
            if tr is not None:
                tr.decision(router=src_router, rule="vicinity.direct",
                            target=dest, distance=optimal)
            delivered = walk(dest)
        else:
            landmark = locator.home_landmark
            if tr is not None:
                tr.decision(router=src_router, rule="landmark.route",
                            target=landmark,
                            distance=self.paths.hop_dist(src_router,
                                                         landmark))
            leg = self.paths.hop_path(src_router, landmark)
            if leg is None:
                delivered = False
            else:
                current = src_router
                for frm, nxt in zip(leg, leg[1:]):
                    route_path.append(nxt)
                    if tr is not None:
                        tr.hop(frm=frm, to=nxt)
                    current = nxt
                    if current == dest:
                        break
                    if dest_id in self.vicinity_ids[current]:
                        if tr is not None:
                            tr.decision(
                                router=current, rule="vicinity.shortcut",
                                target=dest,
                                distance=self.paths.hop_dist(current, dest))
                        delivered = walk(dest)
                        break
                else:
                    # Reached the landmark without meeting the vicinity:
                    # descend the landmark's own route to the target.
                    if current != dest:
                        if tr is not None:
                            tr.decision(
                                router=current, rule="landmark.descend",
                                target=dest,
                                distance=self.paths.hop_dist(current, dest))
                        delivered = walk(dest)

        if not delivered:
            reason = "destination unreachable"
        hops = len(route_path) - 1
        self.stats.charge_path(route_path, "data")
        if tr is not None:
            tr.end(delivered=delivered, reason=reason, router=route_path[-1],
                   hops=hops, optimal=optimal, bound=self.stretch_bound)
            trace.close_span(tr)
        return PathResult(delivered=delivered, path=route_path, hops=hops,
                          optimal_hops=optimal)

    def random_host_pair(self) -> Tuple[str, str]:
        if len(self.hosts.names) < 2:
            raise ValueError("need at least two hosts")
        pair = self._rng.sample(self.hosts.names, 2)
        return pair[0], pair[1]

    # -- accounting ----------------------------------------------------------

    def memory_entries_per_router(self) -> Dict[str, int]:
        """Routing-table entries per router: the landmark table (every
        router), the vicinity host entries, the locator-directory shard
        (landmarks only), and the live locator cache."""
        shard = self.directory.entries_per_landmark()
        return {
            router: (self.plan.n_landmarks
                     + len(self.vicinity_ids[router])
                     + shard.get(router, 0)
                     + len(self.caches[router]))
            for router in self.topology.routers}

    @property
    def landmarks(self) -> List[str]:
        return self.plan.landmarks

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    def cache_stats(self) -> Dict[str, int]:
        """Aggregate locator-cache counters across all routers."""
        totals = {"hits": 0, "misses": 0, "evictions": 0, "invalidations": 0}
        for cache in self.caches.values():
            totals["hits"] += cache.hits
            totals["misses"] += cache.misses
            totals["evictions"] += cache.evictions
            totals["invalidations"] += cache.invalidations
        return totals

    def __repr__(self) -> str:
        return "DiscoNetwork({!r}, hosts={}, landmarks={})".format(
            self.topology.name, len(self.hosts), self.plan.n_landmarks)
