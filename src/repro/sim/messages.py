"""Message vocabulary for protocol-level (event-driven) simulations.

The procedural simulations charge hop counts directly; the event-driven
paths (join latency, failure timers) exchange these dataclasses through
:class:`repro.sim.engine.EventLoop`-scheduled deliveries.  Keeping the
vocabulary in one place also documents the control-plane surface of ROFL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

from repro.idspace.identifier import FlatId


@dataclass(frozen=True)
class Message:
    """Base class: every message travels between two routers."""

    src: Hashable
    dst: Hashable


@dataclass(frozen=True)
class JoinRequest(Message):
    """A host (via its hosting router) asks to join the ring (Algorithm 1)."""

    joining_id: FlatId = None
    #: Routers traversed so far; the paper caches these en route and the
    #: hosting router of the destination stores the list for consistency.
    route_record: Tuple[Hashable, ...] = ()


@dataclass(frozen=True)
class JoinResponse(Message):
    """Carries the discovered predecessor/successor back to the joiner."""

    joining_id: FlatId = None
    predecessor: Optional[FlatId] = None
    successors: Tuple[FlatId, ...] = ()


@dataclass(frozen=True)
class PathSetup(Message):
    """Installs a source-route pointer from one ID to another."""

    from_id: FlatId = None
    to_id: FlatId = None
    source_route: Tuple[Hashable, ...] = ()


@dataclass(frozen=True)
class Teardown(Message):
    """Removes pointers naming a failed ID or traversing a failed router."""

    failed_id: Optional[FlatId] = None
    failed_router: Optional[Hashable] = None


@dataclass(frozen=True)
class DataPacket(Message):
    """A data-plane packet routed greedily on its destination ID."""

    dest_id: FlatId = None
    #: AS-level source route accumulated so far (interdomain, Section 4.1).
    as_path: Tuple[Hashable, ...] = ()
    payload: Optional[bytes] = None


@dataclass(frozen=True)
class LinkStateAd(Message):
    """An OSPF-like LSA; also piggybacks the zero-ID (Section 3.2)."""

    origin: Hashable = None
    sequence: int = 0
    neighbors: Tuple[Hashable, ...] = ()
    zero_id: Optional[FlatId] = None


@dataclass
class DeliveryReceipt:
    """What an event-driven exchange reports back to the caller."""

    completed_at: float
    messages: int
    path: List[Hashable] = field(default_factory=list)
