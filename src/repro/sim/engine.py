"""A minimal, deterministic discrete-event loop.

Events fire in (time, insertion-order) order, so two events scheduled for
the same instant run in the order they were scheduled — determinism the
test-suite relies on.  The loop supports cancellation and a bounded run
(``run(until=...)``) used to model timeouts.

Cancellation is lazy (cancelled entries stay heaped until popped), but
the loop tracks the live count so ``pending`` is O(1), and it compacts
the heap whenever cancelled entries outnumber live ones — long-running
churn workloads that schedule-and-cancel keepalive timers no longer leak
heap memory or drag every push/pop through dead entries.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback; comparable by (time, seq) for the heap."""

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _on_cancel: Optional[Callable[[], None]] = field(
        default=None, compare=False, repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()


class EventLoop:
    """Heap-based event scheduler with virtual time."""

    def __init__(self, on_event: Optional[Callable[[Event], Any]] = None) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._counter = itertools.count()
        self._cancelled = 0  # cancelled events still sitting in the heap
        self.events_run = 0
        self.events_cancelled = 0  # total pending events ever cancelled
        #: Observer invoked with each live event just before its callback
        #: runs (after ``now`` advances).  Cancelled events are skipped in
        #: the pop loop and never reach it.  Used by ``repro.obs``.
        self.on_event = on_event

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(
                "negative delay {!r}: cannot schedule in the past "
                "(now={!r})".format(delay, self.now))
        event = Event(self.now + delay, next(self._counter), callback,
                      _on_cancel=self._note_cancel)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(
                "absolute time {!r} is before now={!r}: cannot schedule "
                "in the past".format(time, self.now))
        return self.schedule(time - self.now, callback)

    def _note_cancel(self) -> None:
        self._cancelled += 1
        self.events_cancelled += 1
        # Compact once dead entries dominate: O(live) rebuild, amortised
        # O(1) per cancellation.
        if self._cancelled > len(self._heap) // 2:
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the single next event.  Returns False when idle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            # Out of the heap: a late cancel() must not skew the count.
            event._on_cancel = None
            self.now = event.time
            if self.on_event is not None:
                self.on_event(event)
            event.callback()
            self.events_run += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain events; stop at virtual time ``until`` or after
        ``max_events`` callbacks.  Returns how many events ran."""
        ran = 0
        while True:
            if max_events is not None and ran >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                # Advance to the bound, never backwards: ``run(until=t)``
                # with ``t < now`` must not rewind the clock — the
                # past-scheduling guards assume ``now`` is monotone.
                self.now = max(self.now, until)
                break
            self.step()
            ran += 1
        return ran

    @property
    def pending(self) -> int:
        return len(self._heap) - self._cancelled

    # -- snapshot support ---------------------------------------------------

    def pending_events(self) -> list:
        """The live (non-cancelled) events in firing order."""
        return sorted(e for e in self._heap if not e.cancelled)

    def __getstate__(self):
        """Serialize the virtual clock and the *live* pending queue.

        Cancelled heap entries are compacted away (they are garbage, and
        their callbacks may not be serializable), and the ``on_event``
        observer is dropped — observers (e.g. an installed tracer with an
        open file sink) are process-local wiring that the loading side
        re-attaches explicitly.  Event callbacks themselves must be
        picklable for a mid-run loop to snapshot; a quiescent (drained)
        loop always is.
        """
        state = self.__dict__.copy()
        state["_heap"] = self.pending_events()
        state["_cancelled"] = 0
        state["on_event"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        heapq.heapify(self._heap)
