"""A minimal, deterministic discrete-event loop.

Events fire in (time, insertion-order) order, so two events scheduled for
the same instant run in the order they were scheduled — determinism the
test-suite relies on.  The loop supports cancellation and a bounded run
(``run(until=...)``) used to model timeouts.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback; comparable by (time, seq) for the heap."""

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """Heap-based event scheduler with virtual time."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._counter = itertools.count()
        self.events_run = 0

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        event = Event(self.now + delay, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        return self.schedule(time - self.now, callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the single next event.  Returns False when idle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self.events_run += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain events; stop at virtual time ``until`` or after
        ``max_events`` callbacks.  Returns how many events ran."""
        ran = 0
        while True:
            if max_events is not None and ran >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            self.step()
            ran += 1
        return ran

    @property
    def pending(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)
