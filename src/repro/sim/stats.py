"""Measurement plumbing: message counters and path results.

Every control or data message in the simulation is *charged*: its
router-level (or AS-level) path is handed to a :class:`StatsCollector`,
which accumulates

* total message counts per category (``join``, ``teardown``, ``data`` …) —
  the y-axes of Figures 5a, 7 and 8a;
* per-router traversal counts — the load-balance series of Figure 6b;
* per-operation message tallies via :meth:`operation` scopes — the CDFs of
  Figures 5b and 8a.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Sequence


@dataclass
class PathResult:
    """Outcome of routing one packet."""

    delivered: bool
    path: List[Hashable] = field(default_factory=list)
    #: Number of physical (router- or AS-level) hops actually traversed.
    hops: int = 0
    #: Hops of the shortest possible path (or the policy baseline path).
    optimal_hops: int = 0
    #: Identifier-space pointer hops taken (ring hops, not physical hops).
    pointer_hops: int = 0
    #: Whether any hop was served from a pointer cache.
    used_cache: bool = False

    @property
    def stretch(self) -> float:
        """Traversed length over the baseline length (paper Section 6.1).

        Same-router delivery has no baseline path (``optimal_hops == 0``);
        the defined value is 0.0 rather than a ZeroDivisionError (or a
        fictitious 1.0) — aggregators already exclude these packets from
        stretch averages by filtering on ``optimal_hops > 0``.
        """
        if not self.delivered:
            return float("inf")
        if self.optimal_hops <= 0:
            return 0.0
        return self.hops / self.optimal_hops


class StatsCollector:
    """Accumulates message and traversal counts for one experiment."""

    def __init__(self) -> None:
        self.messages: Counter = Counter()          # category -> message count
        self.router_traversals: Counter = Counter() # node -> messages through it
        self.operations: List[Dict] = []            # closed operation records
        self._open_ops: List[Dict] = []

    # -- charging ---------------------------------------------------------

    def charge_hops(self, n_hops: int, category: str = "control") -> None:
        """Charge ``n_hops`` network-level messages without node attribution."""
        if n_hops < 0:
            raise ValueError("negative hop count")
        self.messages[category] += n_hops
        for op in self._open_ops:
            op["messages"] += n_hops

    def charge_path(self, path: Sequence[Hashable], category: str = "control") -> int:
        """Charge one message traversing ``path`` (a node sequence).

        A path of ``k+1`` nodes costs ``k`` network-level messages, one per
        link, matching how the paper counts "network-level messages".
        Every node on the path (except the origin) is credited with a
        traversal for the load-balance series.
        """
        n_hops = max(0, len(path) - 1)
        self.charge_hops(n_hops, category)
        for node in path[1:]:
            self.router_traversals[node] += 1
        return n_hops

    def absorb(self, messages: Optional[Dict[str, int]] = None,
               traversals: Optional[Dict[Hashable, int]] = None,
               into_op: Optional[Dict] = None) -> None:
        """Merge pre-aggregated charges captured elsewhere.

        The sharded runtime (:mod:`repro.sim.shard`) computes expensive
        lookup walks on the shard that owns them, under a scratch
        collector, and ships the aggregated counts to every replica as an
        *effect*.  Each replica folds the effect in here — optionally
        attributing the messages to an already-closed operation record
        (``into_op``), so per-operation CDFs match an unsharded run.
        """
        if messages:
            total = 0
            for category, count in messages.items():
                self.messages[category] += count
                total += count
            if into_op is not None:
                into_op["messages"] += total
        if traversals:
            for node, count in traversals.items():
                self.router_traversals[node] += count

    # -- operation scoping --------------------------------------------------

    @contextmanager
    def operation(self, kind: str, **labels) -> Iterator[Dict]:
        """Scope a logical operation (one host join, one repair, …).

        All hops charged while the scope is open are attributed to it; the
        closed record lands in :attr:`operations` for CDF plotting.
        """
        record = {"kind": kind, "messages": 0, **labels}
        self._open_ops.append(record)
        try:
            yield record
        finally:
            self._open_ops.remove(record)
            self.operations.append(record)

    # -- reading ------------------------------------------------------------

    def total_messages(self, category: Optional[str] = None) -> int:
        if category is None:
            return sum(self.messages.values())
        return self.messages[category]

    def operation_costs(self, kind: str) -> List[int]:
        """Per-operation message counts for all closed operations of ``kind``."""
        return [op["messages"] for op in self.operations if op["kind"] == kind]

    def load_series(self) -> Dict[Hashable, int]:
        return dict(self.router_traversals)

    def reset_load(self) -> None:
        self.router_traversals.clear()

    def snapshot(self) -> Dict[str, int]:
        return dict(self.messages)


def cdf_points(samples: Sequence[float]) -> List[tuple]:
    """Sorted ``(value, cumulative_fraction)`` pairs for plotting a CDF."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile (nearest-rank) of ``samples``."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]
