"""Sharded multiprocess simulation with a deterministic cross-shard merge.

The interdomain simulator's cost profile splits cleanly in two:

* **installs** — ring inserts, successor/predecessor pointer setup, bloom
  updates, RNG draws.  Cheap, oracle-driven, and *every* replica can
  execute them identically from the shared seed;
* **walks** — the honest message-charged scoped lookups and the
  proximity finger selection.  Expensive (the large majority of join
  time at 10k hosts), but *read-only* against routing state: their only
  outputs are message/traversal charges, a mismatch verdict, and a
  selected finger table.

So instead of partitioning mutable state (which would force a consistency
protocol through every ring insert), each worker process holds a **full
replica** and executes all installs in lock-step, while the expensive
walks of an operation run **only on the shard that owns it** (by the home
AS of the joining/sending host, under :class:`ShardPlan`'s balanced
partition).  Walk outputs travel as *effects* — plain picklable records —
over ``multiprocessing`` pipes to the coordinator, which merges them into
one canonical sequence-ordered stream and broadcasts it back; every
replica applies the merged stream at the next window barrier.

Conservative synchronization (SimBricks-style): each worker drives its
own :class:`repro.sim.engine.EventLoop`; a window spans exactly one
*lookahead* of virtual time — the minimum latency of any ghost edge (AS
link crossing shards) — so nothing a shard computes inside a window could
have influenced another shard before the barrier at which its effects
become visible.

Determinism argument (the non-negotiable property):

1. every replica performs the same installs and the same RNG draws in
   the same order, so replica state before each window's walks is
   identical on every shard and for every shard count;
2. a walk is a deterministic read-only function of replica state, so its
   effect record does not depend on *which* worker computed it;
3. the merged effect stream is ordered by the global operation sequence
   number, so barrier application is identical everywhere;
4. derived read-path state (the columnar candidate indexes, flush
   epochs, policy/BGP memos) is excluded from serialization by each
   owner's ``__getstate__``.

(1)–(4) together make the delivery/stretch/overhead metrics and the
snapshot ``state_hash`` of an N-shard run bit-identical to the 1-shard
run — which CI gates (2-shard vs 1-shard at 2k hosts) and the scaling
bench records per row (``--shards``).

Sharded runs require ``cache_entries == 0`` (the scaling bench's
default): pointer-cache fills would make walks mutate state on one
replica only.  All other state mutated by healthy-network routing is the
scratch stats collector swapped in around each walk.

Telemetry rides the same pipes (DESIGN.md §12).  With ``trace_out``
set, every worker installs a :mod:`repro.obs.trace` tracer; the records
an *owned* operation emits are sliced out of the worker's ring buffer
and shipped inside that operation's effect.  The coordinator strips
them during the canonical merge and rewrites ``seq``/``span``/``parent``
onto one global numbering in merged (virtual time, global op seq)
order — so the JSONL an N-shard run writes is byte-identical to the
1-shard run's.  Span sampling is decided from the *global* operation
sequence number (never the worker-local span counter), which keeps the
keep/drop set shard-count-invariant at any sample rate.  With
``metrics_out`` set, the coordinator also writes one JSONL row per sync
window — virtual-time stamp plus message/traversal/delivery deltas
aggregated from the merged effects, deterministic by construction —
and each window reply carries the worker's perf-counter delta, folded
into :attr:`ShardCoordinator.live_perf` so a resident serve session can
report progress without an extra broadcast.
"""

from __future__ import annotations

import json
import multiprocessing
import traceback
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.obs import trace as obs_trace
from repro.obs.trace import _HASH_MOD, _HASH_MULT
from repro.sim.engine import EventLoop
from repro.sim.stats import StatsCollector
from repro.util import perf
from repro.util.perf import PerfRegistry

#: Operations per synchronization window.  One window spans one lookahead
#: of virtual time; a larger window amortises the two pipe round-trips
#: per barrier, a smaller one bounds how much finger state is deferred.
DEFAULT_WINDOW_OPS = 512


class ShardError(RuntimeError):
    """A worker failed, desynchronized, or the run was misconfigured."""


# ---------------------------------------------------------------------------
# Partition plan
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardPlan:
    """A deterministic N-way partition of the AS set plus its ghost view.

    ``shard_of`` maps every AS to its owning shard; ``ghost_edges`` are
    the AS links whose endpoints live on different shards — the seams
    cross-shard traffic crosses — and ``lookahead`` is the minimum ghost
    link latency, the conservative-sync window span.
    """

    n_shards: int
    shard_of: Dict[Hashable, int]
    ghost_edges: Tuple[Tuple[Hashable, Hashable], ...]
    lookahead: float

    @classmethod
    def from_graph(cls, asg, n_shards: int) -> "ShardPlan":
        if n_shards < 1:
            raise ShardError("n_shards must be >= 1, got {}".format(n_shards))
        # Greedy balanced partition over expected host load: heaviest
        # AS first onto the lightest shard.  Deterministic: ties break
        # on AS name, then on shard index.
        order = sorted(asg.ases(), key=lambda a: (-asg.hosts(a), str(a)))
        loads = [0.0] * n_shards
        shard_of: Dict[Hashable, int] = {}
        for asn in order:
            target = min(range(n_shards), key=lambda i: (loads[i], i))
            shard_of[asn] = target
            # +1 spreads host-free transit cores across shards too.
            loads[target] += asg.hosts(asn) + 1.0
        ghosts = sorted(
            (tuple(sorted((a, b), key=str))
             for a, b, _rel in asg.links() if shard_of[a] != shard_of[b]),
            key=lambda edge: (str(edge[0]), str(edge[1])))
        lookahead = asg.min_link_latency(ghosts if ghosts else None)
        return cls(n_shards=n_shards, shard_of=shard_of,
                   ghost_edges=tuple(ghosts), lookahead=lookahead)

    def owner(self, asn: Hashable) -> int:
        return self.shard_of[asn]


# ---------------------------------------------------------------------------
# Walk capture (runs inside worker processes)
# ---------------------------------------------------------------------------

@contextmanager
def _scratch_stats(net):
    """Swap a scratch collector in so a walk's charges are captured as an
    effect instead of landing on the replica's canonical stats."""
    scratch = StatsCollector()
    saved = net.stats
    net.stats = scratch
    try:
        yield scratch
    finally:
        net.stats = saved


def _empty_join_effect() -> Dict[str, Any]:
    return {"kind": "join", "messages": Counter(), "traversals": Counter(),
            "mismatches": 0, "fingers": None, "finger_charge": 0}


class WalkContext:
    """Per-join hook handed to :func:`repro.inter.canon.join_inter`.

    On the owning shard (``compute=True``) it runs the honest scoped
    lookups under a scratch collector and accumulates their charges into
    an effect record; on every replica it captures the join's operation
    record and virtual node so the barrier can attribute the merged
    effect back to them.
    """

    __slots__ = ("compute", "effect", "op_record", "vn", "n_fingers")

    def __init__(self, compute: bool):
        self.compute = compute
        self.effect = _empty_join_effect()
        self.op_record: Optional[Dict] = None
        self.vn = None
        self.n_fingers = 0

    def lookup(self, net, vn, level, oracle_pred) -> None:
        """Run one level's honest predecessor walk, capturing charges."""
        from repro.inter.canon import _scoped_lookup
        with _scratch_stats(net) as scratch:
            pred = _scoped_lookup(net, vn, level)
        if pred is None or pred.id != oracle_pred.id:
            self.effect["mismatches"] += 1
        self.effect["messages"].update(scratch.messages)
        self.effect["traversals"].update(scratch.router_traversals)

    def note_join(self, op_record: Dict, vn, n_fingers: int) -> None:
        self.op_record = op_record
        self.vn = vn
        self.n_fingers = n_fingers


# ---------------------------------------------------------------------------
# Worker (child process)
# ---------------------------------------------------------------------------

def build_replica(recipe: Dict[str, Any]):
    """Build one full-replica interdomain network from a recipe dict.

    Every worker calls this with the identical recipe, so all replicas
    start from the same seed and the same synthesized topology.
    """
    from repro.inter.network import InterDomainNetwork
    from repro.inter.policy import JoinStrategy
    from repro.topology.asgraph import synthetic_as_graph

    cache_entries = int(recipe.get("cache_entries", 0))
    if cache_entries != 0:
        raise ShardError(
            "sharded runs require cache_entries=0: pointer-cache fills "
            "during walks would mutate state on the owning replica only")
    peering_mode = recipe.get("peering_mode", "virtual_as")
    if peering_mode != "virtual_as":
        raise ShardError("sharded runs support peering_mode='virtual_as' "
                         "only, got {!r}".format(peering_mode))
    asg = synthetic_as_graph(n_ases=int(recipe.get("n_ases", 100)),
                             seed=int(recipe.get("seed", 0)))
    strategy = JoinStrategy(recipe.get("strategy",
                                       JoinStrategy.MULTIHOMED.value))
    return InterDomainNetwork(asg, n_fingers=int(recipe.get("n_fingers", 8)),
                              seed=int(recipe.get("seed", 0)),
                              strategy=strategy, cache_entries=0)


class ShardWorker:
    """One shard: a full replica plus its event loop and command pump."""

    def __init__(self, conn, recipe: Dict[str, Any], index: int,
                 n_shards: int, telemetry: Optional[Dict[str, Any]] = None):
        self.conn = conn
        self.index = index
        self.n_shards = n_shards
        self.net = build_replica(recipe)
        self.plan = ShardPlan.from_graph(self.net.asg, n_shards)
        self.loop = EventLoop()
        self._op_seq = 0
        #: seq -> (op record, virtual node) for joins awaiting a barrier.
        self._pending: Dict[int, tuple] = {}
        self._out: List[Dict[str, Any]] = []
        #: Counter values at the last window boundary, for per-window
        #: perf deltas shipped with each window reply.
        self._perf_base: Dict[str, float] = {}
        telemetry = telemetry or {}
        self._trace_sample = float(telemetry.get("trace_sample", 1.0))
        self._trace_sink: Optional[obs_trace.RingBufferSink] = None
        if telemetry.get("trace"):
            self._trace_sink = obs_trace.RingBufferSink(capacity=None)
            obs_trace.install(obs_trace.Tracer(
                self._trace_sink, clock=lambda: self.loop.now, sample=1.0))

    # -- telemetry ------------------------------------------------------------

    def _op_sampled(self, seq: int) -> bool:
        """Keep/drop decision for one operation's trace, hashed from the
        *global* op sequence number — identical on every replica and for
        every shard count (a worker-local span id would not be)."""
        if self._trace_sample >= 1.0:
            return True
        return ((seq + 1) * _HASH_MULT) % _HASH_MOD < int(
            self._trace_sample * _HASH_MOD)

    @contextmanager
    def _op_trace(self, seq: Optional[int]) -> Iterator[
            Optional[obs_trace.RingBufferSink]]:
        """Capture the records one *owned* operation emits (``seq`` is
        ``None`` on non-owning replicas — no capture).  Unsampled ops run
        with emission muted so their records never exist anywhere."""
        sink = self._trace_sink
        if sink is None or seq is None:
            yield None
            return
        if not self._op_sampled(seq):
            obs_trace.ENABLED = False
            try:
                yield None
            finally:
                obs_trace.ENABLED = True
            return
        sink.clear()
        yield sink

    def _perf_delta(self) -> Dict[str, float]:
        """Counter movement since the previous window boundary."""
        counters = perf.PERF.counters
        delta = {name: value - self._perf_base.get(name, 0)
                 for name, value in counters.items()
                 if value != self._perf_base.get(name, 0)}
        self._perf_base = dict(counters)
        return delta

    # -- operations ---------------------------------------------------------

    def _next_planned_host(self):
        host = self.net.next_planned_host()
        guard = 0
        while not self.net.as_is_up(host.attach_at) and guard < 64:
            host = self.net.next_planned_host()
            guard += 1
        return host

    def _do_join(self, seq: int) -> None:
        from repro.inter.fingers import select_fingers
        net = self.net
        host = self._next_planned_host()
        ctx = WalkContext(compute=self.plan.owner(host.attach_at)
                          == self.index)
        with self._op_trace(seq if ctx.compute else None) as sink:
            net.join_host(host, walks=ctx)
            if ctx.compute and ctx.n_fingers:
                with perf.timed("inter.join.fingers"):
                    fingers, charge = select_fingers(net, ctx.vn,
                                                     ctx.n_fingers)
                ctx.effect["fingers"] = fingers
                ctx.effect["finger_charge"] = charge
        if ctx.compute:
            effect = ctx.effect
            effect["seq"] = seq
            effect["messages"] = dict(effect["messages"])
            effect["traversals"] = dict(effect["traversals"])
            if sink is not None:
                effect["trace"] = [r.to_dict() for r in sink.records()]
            self._out.append(effect)
        self._pending[seq] = (ctx.op_record, ctx.vn)

    def _do_send(self, seq: int) -> None:
        net = self.net
        a, b = net.random_host_pair()
        src_vn = net.hosts[a]
        if self.plan.owner(src_vn.home_as) != self.index:
            return
        with self._op_trace(seq) as sink:
            with _scratch_stats(net) as scratch:
                result = net.send(a, b)
        effect = {
            "kind": "send", "seq": seq,
            "messages": dict(scratch.messages),
            "traversals": dict(scratch.router_traversals),
            "delivered": result.delivered,
            "hops": result.hops,
            "optimal_hops": result.optimal_hops,
            "pointer_hops": result.pointer_hops,
            "used_cache": result.used_cache,
        }
        if sink is not None:
            effect["trace"] = [r.to_dict() for r in sink.records()]
        self._out.append(effect)

    def _run_window(self, kind: str, count: int) -> List[Dict[str, Any]]:
        """Schedule ``count`` operations inside one lookahead of virtual
        time and drain the event loop to the window barrier."""
        self._out = []
        op = self._do_join if kind == "join" else self._do_send
        start = self.loop.now
        span = self.plan.lookahead
        for i in range(count):
            seq = self._op_seq
            self._op_seq += 1
            at = start + span * (i + 1) / (count + 1)
            self.loop.schedule_at(at, (lambda s=seq: op(s)))
        barrier = start + span
        self.loop.schedule_at(barrier, lambda: None)
        self.loop.run(until=barrier)
        return self._out

    def _localize_fingers(self, vn, fingers: List) -> List:
        """Rebind shipped fingers to this replica's own objects.

        The canonical state hash encodes shared references as back-refs,
        so a finger whose ``level`` is a pickled *copy* of a replica-local
        ``VirtualAS``, or whose ``as_route`` is a copy of a memoised
        policy-path tuple, would hash differently from the same finger
        built in-process.  Selection only picks levels from
        ``vn.joined_levels`` (value equality) and routes from the policy
        memo (warmed identically on every replica by the installs), so
        both identities are recoverable locally — and the route rebuild
        doubles as a desync check.
        """
        from dataclasses import replace
        net = self.net
        local = {level: level for level in vn.joined_levels
                 if level is not None}
        out = []
        for finger in fingers:
            level = local.get(finger.level, finger.level)
            route = net.policy.policy_path(vn.home_as, finger.dest_as,
                                           scope=level)
            if route is None:
                route = net.policy.policy_path(vn.home_as, finger.dest_as)
            if route is None or tuple(route) != finger.as_route:
                raise ShardError(
                    "finger route desync: local policy path {!r} != "
                    "shipped {!r}".format(route, finger.as_route))
            out.append(replace(finger, level=level, as_route=tuple(route)))
        return out

    def _apply_effects(self, effects: List[Dict[str, Any]]) -> None:
        """The barrier: fold the merged effect stream into this replica."""
        from repro.inter.fingers import apply_fingers
        net = self.net
        for effect in effects:
            if effect["kind"] == "join":
                record, vn = self._pending[effect["seq"]]
                if effect["fingers"] is not None:
                    with perf.timed("inter.join.fingers.apply"):
                        fingers = self._localize_fingers(
                            vn, effect["fingers"])
                        apply_fingers(net, vn, fingers,
                                      effect["finger_charge"])
                    record["messages"] += effect["finger_charge"]
                net.stats.absorb(effect["messages"], effect["traversals"],
                                 into_op=record)
                net.lookup_mismatches += effect["mismatches"]
            else:
                net.stats.absorb(effect["messages"], effect["traversals"])
        self._pending.clear()

    # -- command pump -------------------------------------------------------

    def run(self) -> None:
        self.conn.send({"ready": True, "shard": self.index,
                        "lookahead": self.plan.lookahead,
                        "ghost_edges": len(self.plan.ghost_edges),
                        "owned_ases": sum(
                            1 for s in self.plan.shard_of.values()
                            if s == self.index)})
        while True:
            cmd = self.conn.recv()
            name = cmd["cmd"]
            if name == "stop":
                self.conn.send({"ok": True})
                return
            if name == "join_window":
                effects = self._run_window("join", cmd["count"])
                self.conn.send({"effects": effects,
                                "perf_delta": self._perf_delta()})
            elif name == "send_window":
                effects = self._run_window("send", cmd["count"])
                self.conn.send({"effects": effects,
                                "perf_delta": self._perf_delta()})
            elif name == "apply":
                self._apply_effects(cmd["effects"])
                self.conn.send({"ok": True})
            elif name == "warm":
                with perf.timed("bench.oracle_warm"):
                    self.net.bgp.warm()
                self.conn.send({"ok": True})
            elif name == "flush":
                self.net.flush_indexes()
                self.conn.send({"ok": True})
            elif name == "perf_reset":
                perf.reset()
                self._perf_base = {}
                self.conn.send({"ok": True})
            elif name == "metrics":
                self.conn.send({
                    "messages": dict(self.net.stats.messages),
                    "snapshot": self.net.stats.snapshot(),
                    "operations": len(self.net.stats.operations),
                    "lookup_mismatches": self.net.lookup_mismatches,
                    "hosts": len(self.net.hosts),
                })
            elif name == "state_hash":
                from repro import snapshot
                self.conn.send({"state_hash": snapshot.state_hash(self.net)})
            elif name == "save":
                from repro import snapshot
                digest = snapshot.save(self.net, cmd["path"],
                                       meta=cmd.get("meta"))
                self.conn.send({"state_hash": digest})
            elif name == "info":
                self.conn.send({
                    "seed": self.net.seed,
                    "hosts": len(self.net.hosts),
                    "ases": len(self.net.ases),
                    "rng_streams": len(self.net.rngs),
                    "peering_mode": self.net.peering_mode,
                    "virtual_now": self.loop.now,
                })
            elif name == "perf":
                reg = perf.PERF
                prefix = "shard.{}.".format(self.index)
                reg.gauge(prefix + "virtual_now", self.loop.now)
                reg.gauge(prefix + "hosts", len(self.net.hosts))
                reg.gauge(prefix + "owned_ases", sum(
                    1 for s in self.plan.shard_of.values()
                    if s == self.index))
                for timer in ("inter.route.lookup", "inter.join.fingers"):
                    cell = reg.timers.get(timer)
                    if cell is not None:
                        reg.gauge(prefix + timer + ".seconds",
                                  round(cell[1], 6))
                self.conn.send({"perf": reg})
            else:
                raise ShardError("unknown command {!r}".format(name))


def _worker_main(conn, recipe: Dict[str, Any], index: int,
                 n_shards: int,
                 telemetry: Optional[Dict[str, Any]] = None) -> None:
    # Under the fork start method the child inherits the parent's global
    # perf registry mid-flight; a worker's report must cover its own
    # lifetime only (and match what a spawn start would produce).  Same
    # for any installed tracer — an inherited JsonlSink would share the
    # parent's file descriptor and interleave writes into its file.
    perf.reset()
    obs_trace.uninstall()
    try:
        ShardWorker(conn, recipe, index, n_shards, telemetry).run()
    except EOFError:
        pass  # coordinator went away; nothing to report to
    except Exception:
        try:
            conn.send({"error": traceback.format_exc()})
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Coordinator (parent process)
# ---------------------------------------------------------------------------

class ShardCoordinator:
    """Drives N shard workers through lock-step windows and merges their
    effects into one canonical stream (the cross-shard message proxy).

    The coordinator holds **no replica**: worker 0's replica is the
    canonical state for hashes, snapshots, and stats (every replica is
    bit-identical at each barrier, so the choice is arbitrary — the
    test-suite asserts the equality across all workers).

    Usage::

        with ShardCoordinator({"n_ases": 100, "seed": 0}, n_shards=4) as sim:
            sim.join_hosts(10_000)
            sim.warm_oracle()
            metrics = sim.run_sends(2_000)
            digest = sim.state_hash()
    """

    def __init__(self, recipe: Dict[str, Any], n_shards: int,
                 window_ops: int = DEFAULT_WINDOW_OPS, *,
                 trace_out: Optional[str] = None,
                 trace_sample: float = 1.0,
                 metrics_out: Optional[str] = None):
        if n_shards < 1:
            raise ShardError("n_shards must be >= 1")
        if window_ops < 1:
            raise ShardError("window_ops must be >= 1")
        if not 0.0 <= trace_sample <= 1.0:
            raise ShardError("trace_sample must be in [0, 1]")
        self.recipe = dict(recipe)
        self.n_shards = n_shards
        self.window_ops = window_ops
        self.trace_out = trace_out
        self.trace_sample = trace_sample
        self.metrics_out = metrics_out
        self.lookahead: Optional[float] = None
        self.hosts_joined = 0
        self.sends_run = 0
        self.windows_synced = 0
        #: Worker perf-counter deltas folded in live at each window
        #: barrier (N-replica semantics, like :meth:`merged_perf`), so a
        #: resident serve session can report mid-run progress without an
        #: extra broadcast.
        self.live_perf = PerfRegistry()
        self._virtual_now = 0.0
        self._trace_fh: Optional[Any] = None
        self._metrics_fh: Optional[Any] = None
        self._trace_seq = 0
        self._trace_span = 0
        self._conns: List[Any] = []
        self._procs: List[Any] = []
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ShardCoordinator":
        if self._started:
            return self
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context("spawn")
        telemetry = {"trace": self.trace_out is not None,
                     "trace_sample": self.trace_sample}
        for index in range(self.n_shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker_main,
                               args=(child, self.recipe, index,
                                     self.n_shards, telemetry),
                               daemon=True,
                               name="rofl-shard-{}".format(index))
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._started = True
        for index, conn in enumerate(self._conns):
            ready = self._recv(index)
            if not ready.get("ready"):
                raise ShardError("shard {} failed to start: {!r}".format(
                    index, ready))
            self.lookahead = ready["lookahead"]
        if self.trace_out is not None:
            self._trace_fh = open(self.trace_out, "w")
        if self.metrics_out is not None:
            self._metrics_fh = open(self.metrics_out, "w")
        return self

    def close(self) -> None:
        if not self._started:
            return
        for index, conn in enumerate(self._conns):
            try:
                conn.send({"cmd": "stop"})
                conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        for fh in (self._trace_fh, self._metrics_fh):
            if fh is not None:
                fh.close()
        self._trace_fh = self._metrics_fh = None
        self._conns, self._procs = [], []
        self._started = False

    def __enter__(self) -> "ShardCoordinator":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- plumbing -----------------------------------------------------------

    def _recv(self, index: int) -> Dict[str, Any]:
        try:
            response = self._conns[index].recv()
        except EOFError:
            raise ShardError(
                "shard {} died (pipe closed); exit code {!r}".format(
                    index, self._procs[index].exitcode))
        if isinstance(response, dict) and "error" in response:
            raise ShardError("shard {} failed:\n{}".format(
                index, response["error"]))
        return response

    def _broadcast(self, cmd: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Send one command to every worker, then collect every reply."""
        for conn in self._conns:
            conn.send(cmd)
        return [self._recv(index) for index in range(self.n_shards)]

    def _ask(self, index: int, cmd: Dict[str, Any]) -> Dict[str, Any]:
        self._conns[index].send(cmd)
        return self._recv(index)

    def _merge_effects(self, replies: List[Dict[str, Any]],
                       expected: int) -> List[Dict[str, Any]]:
        """Canonical merge: exactly one effect per owned operation,
        ordered by the global operation sequence number."""
        by_seq: Dict[int, Dict[str, Any]] = {}
        for index, reply in enumerate(replies):
            for effect in reply["effects"]:
                if effect["seq"] in by_seq:
                    raise ShardError(
                        "operation {} claimed by two shards — partition "
                        "desync".format(effect["seq"]))
                by_seq[effect["seq"]] = effect
        if expected and len(by_seq) != expected:
            raise ShardError(
                "window produced {} effects for {} operations — ownership "
                "desync".format(len(by_seq), expected))
        return [by_seq[seq] for seq in sorted(by_seq)]

    def _run_phase(self, kind: str, total: int) -> List[Dict[str, Any]]:
        self.start()
        merged_all: List[Dict[str, Any]] = []
        done = 0
        while done < total:
            count = min(self.window_ops, total - done)
            replies = self._broadcast({"cmd": kind + "_window",
                                       "count": count})
            merged = self._merge_effects(replies, count)
            self._virtual_now += self.lookahead or 0.0
            # Strip telemetry out of the merged stream *before* the apply
            # broadcast — replicas never need it, and shipping trace
            # slices back N times would swamp the pipes.
            self._collect_window_telemetry(kind, replies, merged)
            self._broadcast({"cmd": "apply", "effects": merged})
            merged_all.extend(merged)
            done += count
        return merged_all

    # -- telemetry (coordinator side) ----------------------------------------

    def _renumber_trace(self, records: List[Dict[str, Any]]
                        ) -> List[Dict[str, Any]]:
        """Rewrite one op's records onto the global numbering.  Worker-
        local ``seq``/``span`` values depend on what else that worker
        owned; after this rewrite the stream is a pure function of the
        merged (virtual time, global op seq) order — the byte-equality
        contract.  Spans never cross operation boundaries, so the maps
        are per-op."""
        seq_map: Dict[int, int] = {}
        span_map: Dict[int, int] = {}
        for row in records:
            self._trace_seq += 1
            seq_map[row["seq"]] = self._trace_seq
            row["seq"] = self._trace_seq
            span = row["span"]
            if span:
                mapped = span_map.get(span)
                if mapped is None:
                    self._trace_span += 1
                    mapped = span_map[span] = self._trace_span
                row["span"] = mapped
            if row["parent"] != -1:
                row["parent"] = seq_map.get(row["parent"], -1)
        return records

    def _metrics_row(self, kind: str,
                     merged: List[Dict[str, Any]]) -> Dict[str, Any]:
        """One window-metrics row, aggregated *only* from the merged
        effect stream — which is shard-count invariant by the core
        determinism contract, so the metrics JSONL is too."""
        messages: Counter = Counter()
        traversals = 0
        row: Dict[str, Any] = {
            "t": round(self._virtual_now, 9),
            "window": self.windows_synced,
            "kind": kind,
            "ops": len(merged),
        }
        if kind == "join":
            mismatches = finger_charge = 0
            for effect in merged:
                messages.update(effect["messages"])
                traversals += sum(effect["traversals"].values())
                mismatches += effect["mismatches"]
                finger_charge += effect["finger_charge"]
            row["mismatches"] = mismatches
            row["finger_charge"] = finger_charge
        else:
            delivered = cache_hits = 0
            hops = 0.0
            for effect in merged:
                messages.update(effect["messages"])
                traversals += sum(effect["traversals"].values())
                if effect["delivered"]:
                    delivered += 1
                    hops += effect["hops"]
                cache_hits += bool(effect["used_cache"])
            row["delivered"] = delivered
            row["cache_hits"] = cache_hits
            row["hops"] = hops
        row["messages"] = dict(messages)
        row["traversals"] = traversals
        return row

    def _collect_window_telemetry(self, kind: str,
                                  replies: List[Dict[str, Any]],
                                  merged: List[Dict[str, Any]]) -> None:
        """Per-barrier telemetry: pop trace slices off the merged effects
        (renumbered onto the global sequence and written canonically),
        write the window's metrics row, and fold worker perf deltas into
        :attr:`live_perf`."""
        for reply in replies:
            for name, value in reply.get("perf_delta", {}).items():
                self.live_perf.counter(name, value)
        for effect in merged:
            records = effect.pop("trace", None)
            if records and self._trace_fh is not None:
                for row in self._renumber_trace(records):
                    self._trace_fh.write(json.dumps(
                        row, sort_keys=True, separators=(",", ":")))
                    self._trace_fh.write("\n")
        if self._trace_fh is not None:
            self._trace_fh.flush()
        if self._metrics_fh is not None:
            self._metrics_fh.write(json.dumps(
                self._metrics_row(kind, merged),
                sort_keys=True, separators=(",", ":")))
            self._metrics_fh.write("\n")
            self._metrics_fh.flush()
        self.windows_synced += 1
        self.live_perf.counter("shard.windows")
        self.live_perf.gauge("shard.virtual_now",
                             round(self._virtual_now, 9))

    # -- public API ---------------------------------------------------------

    def join_hosts(self, n: int) -> int:
        """Join ``n`` hosts across all shards; returns hosts joined."""
        with perf.timed("shard.join_phase"):
            self._run_phase("join", n)
        self.hosts_joined += n
        return n

    def run_sends(self, n: int) -> Dict[str, Any]:
        """Route ``n`` random pairs; returns serve-style delivery metrics."""
        with perf.timed("shard.send_phase"):
            effects = self._run_phase("send", n)
        self.sends_run += n
        delivered = cached = 0
        hops = stretch_sum = 0.0
        for effect in effects:
            if effect["delivered"]:
                delivered += 1
                hops += effect["hops"]
                if effect["optimal_hops"] > 0:
                    stretch_sum += effect["hops"] / effect["optimal_hops"]
            cached += bool(effect["used_cache"])
        return {
            "sent": n,
            "delivered": delivered,
            "cache_hits": cached,
            "mean_hops": round(hops / delivered, 4) if delivered else 0.0,
            "mean_stretch": round(stretch_sum / delivered, 4)
            if delivered else 0.0,
        }

    def warm_oracle(self) -> None:
        """Warm the BGP baseline tables on every replica (outside any
        phase timing, like the bench's ``warm_fn``)."""
        self._broadcast({"cmd": "warm"})

    def flush_indexes(self) -> None:
        self._broadcast({"cmd": "flush"})

    def perf_reset(self) -> None:
        self._broadcast({"cmd": "perf_reset"})

    def metrics(self) -> Dict[str, Any]:
        """Canonical protocol metrics from the worker-0 replica."""
        return self._ask(0, {"cmd": "metrics"})

    def info(self) -> Dict[str, Any]:
        out = self._ask(0, {"cmd": "info"})
        out["shards"] = self.n_shards
        out["lookahead"] = self.lookahead
        return out

    def state_hash(self, all_replicas: bool = False):
        """Canonical state hash (worker 0), or every replica's hash.

        ``all_replicas=True`` is the lock-step invariant probe: all N
        hashes must be equal, or the replicas have diverged.
        """
        if not all_replicas:
            return self._ask(0, {"cmd": "state_hash"})["state_hash"]
        return [reply["state_hash"]
                for reply in self._broadcast({"cmd": "state_hash"})]

    def save(self, path: str, meta: Optional[Dict[str, Any]] = None) -> str:
        """Snapshot the canonical replica to ``path``; returns its hash."""
        full_meta = {"source": "shard", "shards": self.n_shards,
                     **(meta or {})}
        return self._ask(0, {"cmd": "save", "path": path,
                             "meta": full_meta})["state_hash"]

    def merged_perf(self) -> PerfRegistry:
        """Every worker's perf registry folded into one (plus per-shard
        gauges), for bench rows and the serve ``metrics`` op."""
        merged = PerfRegistry()
        for reply in self._broadcast({"cmd": "perf"}):
            merged.merge(reply["perf"])
        if self.lookahead is not None:
            merged.gauge("shard.count", self.n_shards)
            merged.gauge("shard.lookahead", self.lookahead)
        return merged
