"""Discrete-event simulation kernel and measurement plumbing.

Most ROFL control-plane operations are simulated procedurally (each
conceptual message is charged to the routers it traverses — the same
"highly simplified simulation" style as the paper's own evaluation).  Where
*timing* matters — join latency (Fig 5c), failure-detection timers — the
heap-based :class:`repro.sim.engine.EventLoop` drives message delivery with
per-link latencies.
"""

from repro.sim.engine import EventLoop, Event
from repro.sim.stats import StatsCollector, PathResult

__all__ = ["EventLoop", "Event", "StatsCollector", "PathResult",
           "ShardCoordinator", "ShardError", "ShardPlan"]


def __getattr__(name):
    # The shard layer pulls in multiprocessing and the interdomain stack;
    # load it lazily so `import repro.sim` stays light for intra users.
    if name in ("ShardCoordinator", "ShardError", "ShardPlan"):
        from repro.sim import shard
        return getattr(shard, name)
    raise AttributeError("module {!r} has no attribute {!r}".format(
        __name__, name))
