"""Canonical state encoding — the byte form behind ``state_hash``.

Two simulations hold *the same state* when their object graphs carry the
same values, regardless of memory addresses, set iteration order (which
``PYTHONHASHSEED`` perturbs across processes), or how warm any derived
cache happens to be.  This module walks an object graph into a canonical
byte stream with exactly those properties:

* dict items are emitted sorted by the canonical encoding of their keys,
  sets and frozensets sorted by the canonical encoding of their elements;
* objects are encoded through their ``__getstate__()`` — the *same*
  reduction pickle uses — so classes that mark derived caches
  rebuild-on-load (``PathCache``, ``BgpBaseline``, ``PolicyView``,
  ``ASGraph``) are hashed without them, and the hash of a saved network
  equals the hash of its loaded twin by construction;
* shared references and cycles are handled with a visit-order memo, so
  structurally identical graphs built in different processes (or
  round-tripped through :mod:`repro.snapshot.store`) hash identically;
* RNG streams hash by their ``getstate()`` tuples — a stream that has
  advanced is different state, which is what makes
  "same seed → same hash" a *checkable* invariant rather than a slogan.

The stream is fed straight into SHA-256; nothing is materialised beyond
per-dict key buffers.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
import random
from array import array
from typing import Any, Callable, Dict

from repro.idspace.identifier import FlatId

try:  # optional accelerator backend, never required
    import numpy as _numpy
except ImportError:  # pragma: no cover - depends on environment
    _numpy = None


class CanonicalizationError(TypeError):
    """Raised when an object cannot be canonically encoded."""


def _len_prefixed(tag: bytes, payload: bytes) -> bytes:
    return tag + str(len(payload)).encode("ascii") + b":" + payload


class _Walker:
    """One canonical walk over an object graph, streaming into ``update``."""

    def __init__(self, update: Callable[[bytes], None]):
        self.update = update
        self._memo: Dict[int, int] = {}
        self._visit = itertools.count()
        # Keep encoded objects alive for the walk: ``id()`` values are
        # only unique among *live* objects, and properties/iterators can
        # mint temporaries whose ids would otherwise be recycled.
        self._keepalive: list = []

    # -- containers ---------------------------------------------------------

    def _sub_bytes(self, obj: Any) -> bytes:
        """Encode ``obj`` into standalone bytes (for sort keys).

        Shares this walk's memo so revisits stay consistent between the
        sort-key pass and the streaming pass.
        """
        chunks: list = []
        saved = self.update
        self.update = chunks.append
        try:
            self.encode(obj)
        finally:
            self.update = saved
        return b"".join(chunks)

    def _enter(self, obj: Any) -> bool:
        """Memoise ``obj``; True when already emitted (a back-ref)."""
        key = id(obj)
        index = self._memo.get(key)
        if index is not None:
            self.update(b"R" + str(index).encode("ascii") + b";")
            return True
        self._memo[key] = next(self._visit)
        self._keepalive.append(obj)
        return False

    # -- the dispatch -------------------------------------------------------

    def encode(self, obj: Any) -> None:  # noqa: C901 - a type switch
        update = self.update
        if obj is None:
            update(b"N;")
            return
        kind = type(obj)
        if kind is bool:
            update(b"T;" if obj else b"F;")
            return
        if kind is int:
            # hex() has no CPython digit-count ceiling; str() rejects
            # >4300-digit ints (Bloom-peering bitfields are far larger).
            update(b"i" + hex(obj).encode("ascii") + b";")
            return
        if kind is float:
            update(b"f" + repr(obj).encode("ascii") + b";")
            return
        if kind is str:
            update(_len_prefixed(b"s", obj.encode("utf-8")))
            return
        if kind is bytes:
            update(_len_prefixed(b"b", obj))
            return
        if kind is bytearray:
            update(_len_prefixed(b"y", bytes(obj)))
            return
        if kind is FlatId:
            update(b"I" + str(obj.value).encode("ascii") + b","
                   + str(obj.bits).encode("ascii") + b";")
            return
        if isinstance(obj, enum.Enum):
            update(_len_prefixed(
                b"E", "{}.{}".format(type(obj).__name__,
                                     obj.name).encode("utf-8")))
            return
        if kind in (list, tuple) or isinstance(obj, (list, tuple)):
            if self._enter(obj):
                return
            update(b"[" if isinstance(obj, list) else b"(")
            for item in obj:
                self.encode(item)
            update(b"]" if isinstance(obj, list) else b")")
            return
        if isinstance(obj, (set, frozenset)):
            if self._enter(obj):
                return
            update(b"<")
            for item_bytes in sorted(self._sub_bytes(item) for item in obj):
                update(item_bytes)
            update(b">")
            return
        if isinstance(obj, dict):
            self._encode_dict(obj)
            return
        if isinstance(obj, random.Random):
            if self._enter(obj):
                return
            update(b"G")
            self.encode(obj.getstate())
            return
        if kind is array:
            update(_len_prefixed(
                b"A", obj.typecode.encode("ascii") + b":"
                + ",".join(str(v) for v in obj).encode("ascii")))
            return
        if _numpy is not None and isinstance(obj, _numpy.ndarray):
            update(_len_prefixed(
                b"A", b"np:" + ",".join(str(v)
                                        for v in obj.tolist()).encode("ascii")))
            return
        if isinstance(obj, type(len)) or callable(obj) and hasattr(
                obj, "__qualname__"):
            self._encode_callable(obj)
            return
        if kind is itertools.count:
            update(_len_prefixed(b"C", repr(obj).encode("ascii")))
            return
        self._encode_object(obj)

    def _encode_dict(self, obj: dict) -> None:
        if self._enter(obj):
            return
        self.update(b"{")
        # Sort items by encoded key.  Keys are encoded once (into the
        # shared memo) and streamed verbatim; values stream in key order.
        pairs = sorted((self._sub_bytes(key), value)
                       for key, value in obj.items())
        for key_bytes, value in pairs:
            self.update(key_bytes)
            self.encode(value)
        self.update(b"}")

    def _encode_callable(self, obj: Any) -> None:
        bound = getattr(obj, "__self__", None)
        name = "{}.{}".format(getattr(obj, "__module__", "?"),
                              getattr(obj, "__qualname__", repr(type(obj))))
        self.update(_len_prefixed(b"M" if bound is not None else b"L",
                                  name.encode("utf-8")))
        if bound is not None and not isinstance(bound, type):
            self.encode(bound)

    def _encode_object(self, obj: Any) -> None:
        if self._enter(obj):
            return
        cls = type(obj)
        try:
            state = obj.__getstate__()
        except Exception as exc:
            raise CanonicalizationError(
                "cannot canonicalize {!r} instance: {}".format(
                    cls.__name__, exc))
        self.update(_len_prefixed(
            b"O", "{}.{}".format(cls.__module__,
                                 cls.__qualname__).encode("utf-8")))
        # ``object.__getstate__`` yields dict / (dict, slots) shapes;
        # dict *subclass* items are not part of either, so fold them in
        # explicitly (HostTable, collections.Counter, ...).
        if isinstance(obj, dict):
            self._encode_dict(dict(obj))
        self.encode(state)
        self.update(b"o")


def canonical_update(obj: Any, update: Callable[[bytes], None]) -> None:
    """Stream the canonical encoding of ``obj`` into ``update``."""
    _Walker(update).encode(obj)


def state_hash_of(obj: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``obj``."""
    hasher = hashlib.sha256()
    canonical_update(obj, hasher.update)
    return hasher.hexdigest()
