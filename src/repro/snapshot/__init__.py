"""Checkpoint/restore of complete simulation state (DESIGN.md §10).

Public API::

    from repro import snapshot

    digest = snapshot.save(net, "net.snap")       # flushes, hashes, writes
    net2   = snapshot.load("net.snap", verify=True)
    snapshot.state_hash(net) == snapshot.state_hash(net2)   # True
    snapshot.describe("net.snap")                  # header dict, cheap
    snapshot.validate_network(net2)                # invariant probe sweep

The determinism contract: building a network from seed *S* and loading a
snapshot of a network built from seed *S* yield state with the same
canonical hash, and every subsequent random draw (host plans, workload
tapes, failure schedules) continues identically — "same seed, same
hash, same future".
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.snapshot.codec import (CanonicalizationError, canonical_update,
                                  state_hash_of)
from repro.snapshot.store import (MAGIC, SCHEMA_VERSION, SchemaMismatchError,
                                  SnapshotError, describe, load, save,
                                  state_hash)

__all__ = [
    "CanonicalizationError",
    "MAGIC",
    "SCHEMA_VERSION",
    "SchemaMismatchError",
    "SnapshotError",
    "canonical_update",
    "describe",
    "load",
    "save",
    "state_hash",
    "state_hash_of",
    "validate_network",
]


def validate_network(net: Any) -> List[Dict[str, Any]]:
    """Run the standard invariant probes once; returns violations found.

    A loaded snapshot should be indistinguishable from a live network —
    this sweeps ring consistency / SPF agreement (intra) or inter-ring
    consistency (inter) and returns ``probe.summary()`` so callers can
    assert it is empty.
    """
    from repro.obs.probes import ProbeSet

    probes = ProbeSet.for_network(net)
    probes.tick(0.0)
    return probes.summary()
