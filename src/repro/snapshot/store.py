"""Versioned on-disk snapshots of complete simulation state.

Format — self-describing, one file::

    line 1   JSON header: {"magic": "repro-snapshot", "schema": 1,
                           "kind": "...", "state_hash": "...",
                           "counts": {...}, "meta": {...}}
    line 2+  zlib-compressed pickle of the network object graph

The header is plain UTF-8 JSON terminated by a newline, so ``head -1``
(or :func:`describe`) can inspect a snapshot without touching the
payload.  The ``state_hash`` recorded at save time is the canonical
digest from :mod:`repro.snapshot.codec`; ``load(verify=True)`` recomputes
it over the revived graph and refuses to return silently-corrupt state.

What a snapshot covers (and what it deliberately does not):

* the full routing state — rings, pointer caches, virtual nodes, finger
  tables, Bloom peering state, LSDBs;
* every live RNG stream position (via :class:`repro.util.rng.RngRegistry`
  and ``random.Random.getstate()``), so a loaded network continues the
  *same* random tape — replays are byte-identical;
* the event loop's virtual clock and pending queue, where present;
* derived caches (SPF trees, BGP oracle tables, policy memos) are
  **rebuild-on-load**: their owners drop them in ``__getstate__`` and
  repopulate lazily, keeping files small and the hash history-free.

Snapshots target *quiescent* networks — between workload phases, not in
the middle of one (mid-phase driver closures are not serializable).
"""

from __future__ import annotations

import contextlib
import gc
import io
import json
import pickle
import zlib
from typing import Any, Dict, Optional

from repro.snapshot.codec import state_hash_of
from repro.util import perf

#: Bump on any incompatible change to the header or payload layout.
SCHEMA_VERSION = 1
MAGIC = "repro-snapshot"

#: zlib level 6 halves 10k-host files for pennies of CPU; 9 costs ~4x
#: the compression time for a further ~2%.
_ZLIB_LEVEL = 6


@contextlib.contextmanager
def _gc_paused():
    """Suspend the cyclic GC across a bulk (un)pickle.

    Reviving a 10k-host graph allocates millions of tracked containers;
    with the collector live, threshold-triggered passes over the
    half-built graph dominate the load (measured ~4x the unpickle time
    itself).  Nothing in a fresh unpickle is garbage yet, so the passes
    find nothing — pause the collector, then restore its prior state.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


class SnapshotError(RuntimeError):
    """A snapshot file is unreadable, corrupt, or not a snapshot."""


class SchemaMismatchError(SnapshotError):
    """The snapshot was written by an incompatible schema version."""

    def __init__(self, found: Any, path: str):
        self.found = found
        self.expected = SCHEMA_VERSION
        super().__init__(
            "snapshot {!r} has schema version {!r} but this build reads "
            "version {}; re-create the snapshot with the current code "
            "(snapshots are rebuildable artifacts, not archives)".format(
                path, found, SCHEMA_VERSION))


def state_hash(net: Any) -> str:
    """Canonical SHA-256 of a network's complete serialized state.

    Deterministic across processes and ``PYTHONHASHSEED`` values: two
    networks built by the same code from the same seed hash identically,
    and a loaded snapshot hashes identically to the network it was saved
    from.  Call :meth:`flush_indexes` first if deferred maintenance
    should not count as state (``save`` does this automatically).
    """
    with perf.timed("snapshot.hash"):
        return state_hash_of(net)


def _network_counts(net: Any) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    hosts = getattr(net, "hosts", None)
    if hosts is not None:
        counts["hosts"] = len(hosts)
    routers = getattr(net, "routers", None)
    if routers is not None:
        counts["routers"] = len(routers)
    ases = getattr(net, "ases", None)
    if ases is not None:
        counts["ases"] = len(ases)
    rngs = getattr(net, "rngs", None)
    if rngs is not None:
        counts["rng_streams"] = len(rngs)
    return counts


def save(net: Any, path: str, meta: Optional[Dict[str, Any]] = None) -> str:
    """Serialize ``net`` to ``path``; returns the recorded state hash.

    Pending columnar-index maintenance is flushed first so the snapshot
    (and its hash) reflect settled state rather than whichever epoch the
    deferred flush happened to be in.
    """
    flush = getattr(net, "flush_indexes", None)
    if flush is not None:
        flush()
    digest = state_hash(net)
    header = {
        "magic": MAGIC,
        "schema": SCHEMA_VERSION,
        "kind": type(net).__name__,
        "state_hash": digest,
        "counts": _network_counts(net),
        "meta": dict(meta or {}),
    }
    with perf.timed("snapshot.save"):
        with _gc_paused():
            blob = pickle.dumps(net, protocol=pickle.HIGHEST_PROTOCOL)
        payload = zlib.compress(blob, _ZLIB_LEVEL)
        with open(path, "wb") as fh:
            fh.write(json.dumps(header, sort_keys=True).encode("utf-8"))
            fh.write(b"\n")
            fh.write(payload)
    perf.counter("snapshot.saved")
    perf.observe("snapshot.bytes", len(payload))
    return digest


def _read_header(fh: io.BufferedReader, path: str) -> Dict[str, Any]:
    line = fh.readline()
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise SnapshotError(
            "{!r} is not a repro snapshot (unreadable header)".format(path))
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise SnapshotError(
            "{!r} is not a repro snapshot (bad magic)".format(path))
    if header.get("schema") != SCHEMA_VERSION:
        raise SchemaMismatchError(header.get("schema"), path)
    return header


def describe(path: str) -> Dict[str, Any]:
    """Read and validate a snapshot's header without loading the payload."""
    with open(path, "rb") as fh:
        return _read_header(fh, path)


def load(path: str, verify: bool = False) -> Any:
    """Revive the network saved at ``path``.

    With ``verify=True`` the canonical state hash is recomputed over the
    revived graph and checked against the header — catching corrupt
    payloads *and* code drift that changes serialized state shape.
    """
    with perf.timed("snapshot.load"):
        with open(path, "rb") as fh:
            header = _read_header(fh, path)
            payload = fh.read()
        try:
            with _gc_paused():
                net = pickle.loads(zlib.decompress(payload))
        except Exception as exc:
            raise SnapshotError(
                "snapshot {!r} payload is corrupt: {}".format(path, exc))
    if verify:
        digest = state_hash(net)
        if digest != header["state_hash"]:
            raise SnapshotError(
                "snapshot {!r} failed verification: stored hash {}… but "
                "revived state hashes {}…".format(
                    path, header["state_hash"][:16], digest[:16]))
    perf.counter("snapshot.loaded")
    return net
