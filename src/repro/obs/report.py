"""Self-contained run reports: metrics stream, timer tree, trajectory.

``python -m repro report`` takes the telemetry artifacts other parts of
the pipeline write — a window-metrics JSONL stream (``--metrics-out``),
a perf snapshot with timers (any JSON carrying a registry dump, e.g. a
workload result or one ``BENCH_scaling.json`` row), and the scaling
bench's ``BENCH_scaling.json`` — and renders them into one document a
human can read without re-running anything.  Markdown by default; a
``.html`` output path produces a self-contained HTML file (inline CSS,
inline SVG sparklines, zero external assets) suitable for a CI artifact.

The hierarchical timer tree folds dotted timer names
(``inter.join.fingers`` under ``inter.join`` under ``inter``) and
aggregates seconds/calls bottom-up, so the expensive subtree is obvious
at a glance even in a registry with dozens of flat names.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Dict, List, Optional

# ---------------------------------------------------------------------------
# Timer tree.
# ---------------------------------------------------------------------------


def build_timer_tree(timers: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Fold flat dotted timer names into a tree.

    Each node is ``{"name", "children": {part: node}, "row"}`` where
    ``row`` is the registry's snapshot entry when the exact dotted name
    exists (inner nodes without their own timer get ``row=None``).
    """
    root: Dict[str, Any] = {"name": "", "children": {}, "row": None}
    for name, row in timers.items():
        node = root
        for part in name.split("."):
            node = node["children"].setdefault(
                part, {"name": part, "children": {}, "row": None})
        node["row"] = row
    return root


def _subtree_seconds(node: Dict[str, Any]) -> float:
    own = node["row"]["seconds"] if node["row"] else 0.0
    return own + sum(_subtree_seconds(child)
                     for child in node["children"].values())


def render_timer_tree(timers: Dict[str, Dict[str, Any]]) -> List[str]:
    """Text lines of the tree, heaviest subtree first at every level."""
    lines = ["{:<44} {:>8} {:>10} {:>12} {:>10}".format(
        "timer", "calls", "seconds", "mean", "max")]

    def walk(node: Dict[str, Any], depth: int) -> None:
        children = sorted(node["children"].values(),
                          key=lambda c: (-_subtree_seconds(c), c["name"]))
        for child in children:
            label = "{}{}".format("  " * depth, child["name"])
            row = child["row"]
            if row:
                lines.append(
                    "{:<44} {:>8} {:>10.3f} {:>12.6f} {:>10.4f}".format(
                        label, row["calls"], row["seconds"],
                        row.get("mean", 0.0), row.get("max", 0.0)))
            else:
                lines.append("{:<44} {:>8} {:>10.3f}".format(
                    label, "-", _subtree_seconds(child)))
            walk(child, depth + 1)

    walk(build_timer_tree(timers), 0)
    return lines


# ---------------------------------------------------------------------------
# Metrics stream summary.
# ---------------------------------------------------------------------------

def summarize_metrics(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Totals over a window stream: counter deltas summed, span of t."""
    totals: Dict[str, float] = {}
    for row in rows:
        for name, delta in row.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + delta
    return {
        "windows": len(rows),
        "t_start": rows[0]["t"] if rows else None,
        "t_end": rows[-1]["t"] if rows else None,
        "counter_totals": totals,
    }


def _top_counters(rows: List[Dict[str, Any]], limit: int = 6) -> List[str]:
    """The counter names worth plotting/tabulating, biggest totals first."""
    totals = summarize_metrics(rows)["counter_totals"]
    return [name for name, _ in sorted(totals.items(),
                                       key=lambda kv: (-kv[1], kv[0]))
            ][:limit]


def _metrics_table(rows: List[Dict[str, Any]],
                   names: List[str]) -> List[List[str]]:
    table = [["window", "t"] + names]
    for row in rows:
        cells = [str(row.get("window", "")), "{:g}".format(row["t"])]
        for name in names:
            value = row.get("counters", {}).get(name, 0)
            cells.append("{:g}".format(value))
        table.append(cells)
    return table


# ---------------------------------------------------------------------------
# Trajectory (BENCH_scaling.json).
# ---------------------------------------------------------------------------

def _bench_tables(bench: Dict[str, Any]) -> Dict[str, List[List[str]]]:
    out: Dict[str, List[List[str]]] = {}
    for section in ("interdomain", "intradomain"):
        rows = bench.get(section) or []
        if not rows:
            continue
        table = [["hosts", "join s", "joins/s", "send s", "sends/s",
                  "peak MiB"]]
        for row in rows:
            table.append([
                str(row.get("hosts", "")),
                "{:g}".format(row.get("join_seconds", 0)),
                "{:g}".format(row.get("joins_per_sec", 0)),
                "{:g}".format(row.get("send_seconds", 0)),
                "{:g}".format(row.get("sends_per_sec", 0)),
                "{:g}".format(row.get("peak_rss_mb", 0)),
            ])
        out[section] = table
    workload = bench.get("workload") or []
    if workload:
        table = [["scenario", "rate x", "events", "events/s", "delivery"]]
        for row in workload:
            rate = row.get("delivery_rate")
            table.append([
                str(row.get("scenario", "")),
                "{:g}".format(row.get("rate_multiplier", 0)),
                str(row.get("events_run", "")),
                "{:g}".format(row.get("events_per_sec", 0)),
                "-" if rate is None else "{:.4f}".format(rate),
            ])
        out["workload"] = table
    return out


def _bench_perf(bench: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The perf snapshot of the largest interdomain row (the run whose
    timer tree says the most about where scale goes)."""
    rows = bench.get("interdomain") or bench.get("intradomain") or []
    best = None
    for row in rows:
        if isinstance(row.get("perf"), dict):
            if best is None or row.get("hosts", 0) > best.get("hosts", 0):
                best = row
    return best["perf"] if best else None


def extract_perf_snapshot(payload: Dict[str, Any]
                          ) -> Optional[Dict[str, Any]]:
    """Find a registry snapshot inside an arbitrary result JSON: the
    object itself (has ``timers``), its ``perf`` key, or — for a
    ``BENCH_scaling.json`` — the biggest row's dump."""
    if not isinstance(payload, dict):
        return None
    if isinstance(payload.get("timers"), dict):
        return payload
    if isinstance(payload.get("perf"), dict):
        return payload["perf"]
    return _bench_perf(payload)


# ---------------------------------------------------------------------------
# Head-to-head stretch comparison (compare_stretch.json).
# ---------------------------------------------------------------------------

def _cmp(value, spec: str = "{:.2f}") -> str:
    return "n/a" if value is None else spec.format(value)


def _compare_tables(result: Dict[str, Any]) -> Dict[str, List[List[str]]]:
    """Tables for a ``headtohead_stretch`` result (the JSON written by
    ``python -m repro compare-stretch --json``)."""
    header = ["proto", "sent", "delivered", "mean", "p99", "worst",
              "bound", "violations", "mismatches"]

    def row_of(label: str, row: Dict[str, Any]) -> List[str]:
        bound = row.get("stretch_bound")
        return [label, str(row["sent"]), str(row["delivered"]),
                _cmp(row["mean"]), _cmp(row["p99"]), _cmp(row["worst"]),
                "inf" if bound is None else "{:g}".format(bound),
                str(row["bound_violations"] + len(row["probe_violations"])),
                str(row["attribution_mismatches"])]

    out: Dict[str, List[List[str]]] = {}
    intra = result.get("intra") or {}
    if intra:
        out["intradomain ({})".format(result.get("profile", "?"))] = (
            [header] + [row_of(label, intra[label])
                        for label in ("rofl", "disco", "cmu", "ospf")
                        if label in intra])
    inter = result.get("inter") or {}
    if inter:
        out["interdomain"] = (
            [header + ["denominator"]]
            + [row_of(label, inter[label])
               + [str(inter[label].get("denominator", ""))]
               for label in ("rofl", "disco") if label in inter])
    return out


def _compare_notes(result: Dict[str, Any]) -> List[str]:
    notes = []
    sweep = result.get("disco_all_pairs")
    if sweep:
        notes.append(
            "Disco all-pairs sweep: {} pairs, max stretch {} (bound {:g}), "
            "{} undelivered, {} probe violation(s).".format(
                sweep["pairs"], _cmp(sweep["max_stretch"], "{:.3f}"),
                sweep["bound"], sweep["undelivered"],
                len(sweep["violations"])))
    for label in ("rofl", "disco"):
        row = (result.get("intra") or {}).get(label)
        if row and row.get("tail_attribution"):
            parts = ", ".join(
                "{} +{:.2f}".format(rule, share) for rule, share in
                sorted(row["tail_attribution"].items(),
                       key=lambda kv: -kv[1]))
            notes.append("{} stretch tail (≥p99) by decision: {}.".format(
                label, parts))
    return notes


# ---------------------------------------------------------------------------
# Markdown rendering.
# ---------------------------------------------------------------------------

def _md_table(table: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(table[0]) + " |",
             "|" + "|".join(" --- " for _ in table[0]) + "|"]
    for row in table[1:]:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def render_markdown(title: str,
                    metrics_rows: Optional[List[Dict[str, Any]]] = None,
                    perf_snapshot: Optional[Dict[str, Any]] = None,
                    bench: Optional[Dict[str, Any]] = None,
                    compare: Optional[Dict[str, Any]] = None) -> str:
    lines = ["# {}".format(title), ""]
    if compare:
        lines += ["## Stretch head-to-head", ""]
        for section, table in _compare_tables(compare).items():
            lines += ["### {}".format(section), ""]
            lines += _md_table(table)
            lines.append("")
        notes = _compare_notes(compare)
        lines += ["- {}".format(note) for note in notes]
        if notes:
            lines.append("")
    if metrics_rows:
        info = summarize_metrics(metrics_rows)
        lines += ["## Metrics stream", "",
                  "{} windows over t = {:g} .. {:g}.".format(
                      info["windows"], info["t_start"], info["t_end"]), ""]
        names = _top_counters(metrics_rows)
        if names:
            lines += _md_table(_metrics_table(metrics_rows, names))
            lines.append("")
    if perf_snapshot and perf_snapshot.get("timers"):
        lines += ["## Timer tree", "", "```"]
        lines += render_timer_tree(perf_snapshot["timers"])
        lines += ["```", ""]
    if bench:
        lines += ["## Scaling trajectory", ""]
        for section, table in _bench_tables(bench).items():
            lines += ["### {}".format(section), ""]
            lines += _md_table(table)
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# HTML rendering (self-contained: inline CSS + inline SVG).
# ---------------------------------------------------------------------------

_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 70em; color: #1a1a2e; padding: 0 1em; }
h1 { border-bottom: 2px solid #444; padding-bottom: .2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #bbb; padding: .25em .6em; text-align: right; }
th { background: #eef; }
td:first-child, th:first-child { text-align: left; }
pre { background: #f6f6fa; padding: 1em; overflow-x: auto; }
svg { background: #fbfbff; border: 1px solid #ddd; margin: .5em 0; }
.legend { font-size: 12px; color: #555; }
"""


def _sparkline(series: List[float], width: int = 640,
               height: int = 80) -> str:
    """One inline SVG polyline for a per-window series."""
    if len(series) < 2:
        return ""
    top = max(series) or 1.0
    step = width / (len(series) - 1)
    points = " ".join(
        "{:.1f},{:.1f}".format(i * step,
                               height - (value / top) * (height - 6) - 3)
        for i, value in enumerate(series))
    return ('<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}">'
            '<polyline fill="none" stroke="#3355bb" stroke-width="1.5" '
            'points="{p}"/></svg>').format(w=width, h=height, p=points)


def _html_table(table: List[List[str]]) -> str:
    head = "".join("<th>{}</th>".format(_html.escape(cell))
                   for cell in table[0])
    body = "".join(
        "<tr>{}</tr>".format("".join("<td>{}</td>".format(_html.escape(cell))
                                     for cell in row))
        for row in table[1:])
    return "<table><tr>{}</tr>{}</table>".format(head, body)


def render_html(title: str,
                metrics_rows: Optional[List[Dict[str, Any]]] = None,
                perf_snapshot: Optional[Dict[str, Any]] = None,
                bench: Optional[Dict[str, Any]] = None,
                compare: Optional[Dict[str, Any]] = None) -> str:
    parts = ["<!DOCTYPE html><html><head><meta charset=\"utf-8\">",
             "<title>{}</title>".format(_html.escape(title)),
             "<style>{}</style></head><body>".format(_CSS),
             "<h1>{}</h1>".format(_html.escape(title))]
    if compare:
        parts.append("<h2>Stretch head-to-head</h2>")
        for section, table in _compare_tables(compare).items():
            parts.append("<h3>{}</h3>{}".format(_html.escape(section),
                                                _html_table(table)))
        notes = _compare_notes(compare)
        if notes:
            parts.append("<ul>{}</ul>".format("".join(
                "<li>{}</li>".format(_html.escape(note))
                for note in notes)))
    if metrics_rows:
        info = summarize_metrics(metrics_rows)
        parts.append("<h2>Metrics stream</h2>")
        parts.append("<p>{} windows over t = {:g} .. {:g}.</p>".format(
            info["windows"], info["t_start"], info["t_end"]))
        for name in _top_counters(metrics_rows, limit=3):
            series = [row.get("counters", {}).get(name, 0)
                      for row in metrics_rows]
            svg = _sparkline([float(v) for v in series])
            if svg:
                parts.append("<div class=\"legend\">{} per window "
                             "(peak {:g})</div>{}".format(
                                 _html.escape(name), max(series), svg))
        names = _top_counters(metrics_rows)
        if names:
            parts.append(_html_table(_metrics_table(metrics_rows, names)))
    if perf_snapshot and perf_snapshot.get("timers"):
        parts.append("<h2>Timer tree</h2><pre>{}</pre>".format(
            _html.escape("\n".join(
                render_timer_tree(perf_snapshot["timers"])))))
    if bench:
        parts.append("<h2>Scaling trajectory</h2>")
        for section, table in _bench_tables(bench).items():
            parts.append("<h3>{}</h3>{}".format(_html.escape(section),
                                                _html_table(table)))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


# ---------------------------------------------------------------------------
# Top-level entry used by the CLI.
# ---------------------------------------------------------------------------

def generate_report(title: str,
                    metrics_path: Optional[str] = None,
                    perf_path: Optional[str] = None,
                    bench_path: Optional[str] = None,
                    compare_path: Optional[str] = None,
                    fmt: str = "markdown") -> str:
    """Load the named artifacts and render one report document."""
    from repro.obs.metrics import read_metrics_jsonl
    metrics_rows = read_metrics_jsonl(metrics_path) if metrics_path else None
    perf_snapshot = None
    if perf_path:
        with open(perf_path) as fh:
            perf_snapshot = extract_perf_snapshot(json.load(fh))
    bench = None
    if bench_path:
        with open(bench_path) as fh:
            bench = json.load(fh)
        if perf_snapshot is None:
            perf_snapshot = _bench_perf(bench)
    compare = None
    if compare_path:
        with open(compare_path) as fh:
            compare = json.load(fh)
    render = render_html if fmt == "html" else render_markdown
    return render(title, metrics_rows=metrics_rows,
                  perf_snapshot=perf_snapshot, bench=bench, compare=compare)
