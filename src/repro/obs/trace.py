"""The core of ``repro.obs``: cheap causal trace records and sinks.

Every routed packet (or control lookup) can open a *span*; within a span
the forwarding engines emit *records* — decision points tagged with the
rule that chose the next pointer, physical hops linked to the decision
that committed them, cache hits/misses, NACKs, and terminal outcomes.
Records carry monotonic sequence numbers, the simulator's virtual time,
and a causal parent id, so any :class:`repro.sim.stats.PathResult` can be
explained after the fact (see :mod:`repro.obs.explain`) and invariant
probes can subscribe live (see :mod:`repro.obs.probes`).

The layer is **off by default** and designed to vanish from the hot
paths when off: emit sites check the module-level :data:`ENABLED` flag
once per packet (``span = trace.packet_span(...) if trace.ENABLED else
None``) and a local ``is None`` test per hop.  When on, spans are
sampled deterministically from their span id — no RNG draw, so enabling
tracing never perturbs a seeded workload's random streams and a traced
run replays byte-for-byte.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Fast guard consulted by every instrumented hot path.  True exactly
#: while a tracer is installed via :func:`install` / :func:`tracing`.
ENABLED = False

#: The installed tracer (``None`` when tracing is off).
_TRACER: Optional["Tracer"] = None

#: Knuth's multiplicative-hash constant, used for deterministic span
#: sampling (same span id + same sample rate → same keep/drop decision).
_HASH_MULT = 2654435761
_HASH_MOD = 1 << 32


@dataclass
class TraceRecord:
    """One trace event.

    ``span`` groups records of one logical operation (one routed packet);
    ``parent`` is the ``seq`` of the causally preceding record inside the
    span (-1 for span roots), e.g. a ``hop`` record's parent is the
    ``decision`` record that committed the pointer it walks.
    """

    seq: int
    t: float
    span: int
    parent: int
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "t": self.t, "span": self.span,
                "parent": self.parent, "kind": self.kind, "data": self.data}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceRecord":
        return cls(seq=payload["seq"], t=payload["t"], span=payload["span"],
                   parent=payload["parent"], kind=payload["kind"],
                   data=dict(payload.get("data", {})))


# ---------------------------------------------------------------------------
# Sinks.
# ---------------------------------------------------------------------------

class NullSink:
    """Discards every record (tracing structure without retention)."""

    def write(self, record: TraceRecord) -> None:
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keeps the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: Optional[int] = 65536):
        self._buf: deque = deque(maxlen=capacity)

    def write(self, record: TraceRecord) -> None:
        self._buf.append(record)

    def records(self) -> List[TraceRecord]:
        return list(self._buf)

    def clear(self) -> None:
        self._buf.clear()

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._buf)


class JsonlSink:
    """Streams records as one JSON object per line.

    Output is deterministic (sorted keys, compact separators, no wall
    clock anywhere in a record), so two runs from one seed produce
    byte-identical files — the replay contract the CI smoke checks.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "w")

    def write(self, record: TraceRecord) -> None:
        self._fh.write(json.dumps(record.to_dict(), sort_keys=True,
                                  separators=(",", ":")))
        self._fh.write("\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def dump_jsonl(records: List[TraceRecord], path: str) -> None:
    """Write records in the :class:`JsonlSink` format (deterministic)."""
    sink = JsonlSink(path)
    try:
        for record in records:
            sink.write(record)
    finally:
        sink.close()


def read_jsonl(path: str) -> List[TraceRecord]:
    """Load the records a :class:`JsonlSink` wrote."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(TraceRecord.from_dict(json.loads(line)))
    return records


# ---------------------------------------------------------------------------
# Spans.
# ---------------------------------------------------------------------------

class Span:
    """One sampled logical operation; a factory for causally-linked records.

    ``decision()`` records a rule-tagged routing decision and becomes the
    parent of subsequent ``hop()`` records; ``end()`` closes the span
    with its outcome.  ``event()`` is the generic escape hatch.
    """

    __slots__ = ("tracer", "id", "root", "last_decision")

    def __init__(self, tracer: "Tracer", span_id: int, root_seq: int):
        self.tracer = tracer
        self.id = span_id
        self.root = root_seq
        self.last_decision = root_seq

    def event(self, kind: str, parent: Optional[int] = None, **data) -> int:
        return self.tracer.emit(kind, span=self.id,
                                parent=self.root if parent is None else parent,
                                **data)

    def decision(self, **data) -> int:
        seq = self.tracer.emit("decision", span=self.id, parent=self.root,
                               **data)
        self.last_decision = seq
        return seq

    def hop(self, **data) -> int:
        return self.tracer.emit("hop", span=self.id,
                                parent=self.last_decision, **data)

    def end(self, **data) -> int:
        return self.tracer.emit("end", span=self.id, parent=self.root, **data)


# ---------------------------------------------------------------------------
# Tracer.
# ---------------------------------------------------------------------------

class Tracer:
    """Emits :class:`TraceRecord`\\ s into a sink and to live observers.

    ``clock`` supplies virtual time (the workload driver binds it to its
    event loop's ``now``; standalone uses default to 0.0 and rely on
    ``seq`` for ordering).  ``sample`` keeps that fraction of spans,
    decided deterministically per span id.  Observers (invariant probes)
    see every record after the sink does; records they emit re-entrantly
    are delivered to the sink but not re-dispatched to observers.
    """

    def __init__(self, sink=None, clock: Optional[Callable[[], float]] = None,
                 sample: float = 1.0, loop_events: bool = False):
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be in [0, 1]")
        self.sink = sink if sink is not None else RingBufferSink()
        self.clock = clock or (lambda: 0.0)
        self.sample = sample
        #: Whether the event-loop observer hook should emit ``sim.event``
        #: records (high volume; off unless explicitly requested).
        self.loop_events = loop_events
        #: The span the forwarding engine is currently inside, so nested
        #: components (pointer-cache lookups, policy filters) can attach
        #: records without threading a span through every call.
        self.current: Optional[Span] = None
        self.records_emitted = 0
        self.spans_started = 0
        self.spans_dropped = 0
        self._seq = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._observers: List[Callable[[TraceRecord], None]] = []
        self._dispatching = False

    # -- record emission -----------------------------------------------------

    def emit(self, kind: str, span: int = 0, parent: int = -1, **data) -> int:
        record = TraceRecord(seq=next(self._seq), t=self.clock(), span=span,
                             parent=parent, kind=kind, data=data)
        self.records_emitted += 1
        self.sink.write(record)
        if self._observers and not self._dispatching:
            self._dispatching = True
            try:
                for observer in self._observers:
                    observer(record)
            finally:
                self._dispatching = False
        return record.seq

    def span(self, kind: str, **data) -> Optional[Span]:
        """Open a sampled span; ``None`` means this span was not sampled
        (callers skip all further emission with a local ``is None``)."""
        span_id = next(self._span_ids)
        self.spans_started += 1
        if self.sample < 1.0:
            keep = ((span_id * _HASH_MULT) % _HASH_MOD) < int(
                self.sample * _HASH_MOD)
            if not keep:
                self.spans_dropped += 1
                return None
        root = self.emit(kind, span=span_id, parent=-1, **data)
        return Span(self, span_id, root)

    def event_in_current(self, kind: str, **data) -> None:
        """Attach a record to whatever span is in flight (if any)."""
        span = self.current
        if span is not None:
            span.event(kind, **data)

    # -- observers -----------------------------------------------------------

    def add_observer(self, observer: Callable[[TraceRecord], None]) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: Callable[[TraceRecord], None]) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    # -- event-loop hook -----------------------------------------------------

    def on_loop_event(self, event) -> None:
        """Observer for :meth:`repro.sim.engine.EventLoop.step`; records
        each fired event when ``loop_events`` is on."""
        if self.loop_events:
            self.emit("sim.event", parent=-1, event_seq=event.seq)

    def close(self) -> None:
        self.sink.close()


# ---------------------------------------------------------------------------
# Module-level installation (the hot-path guard).
# ---------------------------------------------------------------------------

def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the active tracer and raise the :data:`ENABLED` flag."""
    global _TRACER, ENABLED
    _TRACER = tracer
    ENABLED = True
    return tracer


def uninstall() -> None:
    global _TRACER, ENABLED
    ENABLED = False
    _TRACER = None


def get_tracer() -> Optional[Tracer]:
    return _TRACER


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """``with trace.tracing(Tracer(...)) as tr: ...`` — scoped install."""
    tr = tracer if tracer is not None else Tracer()
    install(tr)
    try:
        yield tr
    finally:
        uninstall()


# -- emit-site helpers (called only after an ENABLED check) -----------------

def packet_span(kind: str, **data) -> Optional[Span]:
    """Open a packet span on the installed tracer and make it current.

    Call sites guard with ``if trace.ENABLED:``; a ``None`` return means
    tracing is off or the span was sampled out.
    """
    tracer = _TRACER
    if tracer is None:
        return None
    span = tracer.span(kind, **data)
    tracer.current = span
    return span


def close_span(span: Optional[Span]) -> None:
    """Clear the current-span slot once a packet span is finished."""
    tracer = _TRACER
    if tracer is not None and tracer.current is span:
        tracer.current = None


def event_in_current(kind: str, **data) -> None:
    tracer = _TRACER
    if tracer is not None:
        tracer.event_in_current(kind, **data)
