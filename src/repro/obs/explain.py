"""Route-decision explanation: turn a packet span into an attributed tree.

A packet span (see :mod:`repro.obs.trace`) is a root record, a sequence
of rule-tagged ``decision`` records, ``hop`` records causally parented
to the decision that committed them, annotation records (cache
hits/misses, NACKs, policy filters), and one terminal ``end`` record.
This module groups those into *segments* — one per routing decision —
and attributes stretch to each: a segment that walked ``k`` physical
hops contributes ``k / optimal_hops`` stretch, so the attributions sum
exactly to :attr:`repro.sim.stats.PathResult.stretch` for a delivered
packet (and to 0.0 when ``optimal_hops == 0``, matching the defined
same-router semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.trace import TraceRecord

#: Span-root kinds produced by the forwarding engines.
PACKET_KINDS = ("intra.packet", "inter.packet", "inter.bloom-packet",
                "compact.packet")


@dataclass
class Segment:
    """One routing decision and every physical hop it committed."""

    decision: TraceRecord
    hops: List[TraceRecord] = field(default_factory=list)
    #: Annotation records observed while this decision governed the
    #: packet (cache hit/miss/reject, nack, policy.filter, repair …).
    notes: List[TraceRecord] = field(default_factory=list)

    @property
    def rule(self) -> str:
        return self.decision.data.get("rule", "?")

    @property
    def router(self) -> str:
        return self.decision.data.get("router", "?")

    @property
    def n_hops(self) -> int:
        return len(self.hops)

    def attribution(self, optimal_hops: Optional[int]) -> float:
        """This segment's share of the packet's stretch."""
        if not optimal_hops or optimal_hops <= 0:
            return 0.0
        return self.n_hops / optimal_hops


@dataclass
class PacketExplanation:
    """A packet span decomposed into attributed decision segments."""

    root: TraceRecord
    segments: List[Segment] = field(default_factory=list)
    #: Annotations recorded before the first decision.
    preamble: List[TraceRecord] = field(default_factory=list)
    end: Optional[TraceRecord] = None

    @property
    def span_id(self) -> int:
        return self.root.span

    @property
    def delivered(self) -> bool:
        return bool(self.end is not None and self.end.data.get("delivered"))

    @property
    def reason(self) -> str:
        return self.end.data.get("reason", "?") if self.end else "in-flight"

    @property
    def hops(self) -> int:
        return sum(seg.n_hops for seg in self.segments)

    def attributions(self, optimal_hops: Optional[int]) -> List[float]:
        """Per-segment stretch shares; their sum equals the packet's
        ``PathResult.stretch`` when it was delivered."""
        return [seg.attribution(optimal_hops) for seg in self.segments]

    def total_stretch(self, optimal_hops: Optional[int]) -> float:
        return sum(self.attributions(optimal_hops))

    # -- rendering -----------------------------------------------------------

    def render(self, optimal_hops: Optional[int] = None) -> str:
        """A human-readable decision tree with per-segment attribution."""
        data = self.root.data
        head = "{} {} -> {}  [{}]".format(
            self.root.kind, data.get("start", "?"),
            _short_id(data.get("dest", "?")), data.get("mode", "data"))
        lines = [head]
        status = "delivered" if self.delivered else "NOT delivered"
        summary = "  {} in {} hops ({})".format(status, self.hops, self.reason)
        if optimal_hops is not None and optimal_hops > 0:
            summary += ", optimal {}, stretch {:.3f}".format(
                optimal_hops, self.total_stretch(optimal_hops))
        lines.append(summary)
        for note in self.preamble:
            lines.append("  . {}".format(_note_line(note)))
        last = len(self.segments) - 1
        for i, seg in enumerate(self.segments):
            branch = "└─" if i == last else "├─"
            line = "  {} decision@{}: {} -> {}".format(
                branch, seg.router, seg.rule,
                _short_id(seg.decision.data.get("target", "?")))
            if "distance" in seg.decision.data:
                line += " dist={}".format(_fmt_dist(seg.decision.data["distance"]))
            if seg.decision.data.get("shortcut"):
                line += " (transit shortcut)"
            line += "  [{} hop{}".format(seg.n_hops,
                                         "" if seg.n_hops == 1 else "s")
            if optimal_hops is not None and optimal_hops > 0:
                line += ", +{:.3f} stretch".format(seg.attribution(optimal_hops))
            line += "]"
            lines.append(line)
            stem = "     " if i == last else "  │  "
            if seg.hops:
                walk = [seg.hops[0].data.get("frm", "?")]
                walk += [h.data.get("to", "?") for h in seg.hops]
                lines.append(stem + " -> ".join(str(w) for w in walk))
            for note in seg.notes:
                lines.append(stem + ". " + _note_line(note))
        return "\n".join(lines)


def _fmt_dist(distance) -> str:
    """Ring distances are up to 2**128; render big ones by magnitude."""
    if isinstance(distance, int) and distance > 10**6:
        return "~2^{}".format(distance.bit_length())
    return str(distance)


def _short_id(hex_id) -> str:
    text = str(hex_id)
    return "0x" + text[:8] + "…" if len(text) > 10 else text


def _note_line(record: TraceRecord) -> str:
    extras = " ".join("{}={}".format(k, _short_id(v) if k in ("target", "dest")
                                     else v)
                      for k, v in sorted(record.data.items()))
    return "{} {}".format(record.kind, extras).rstrip()


# ---------------------------------------------------------------------------
# Grouping.
# ---------------------------------------------------------------------------

def spans(records: Sequence[TraceRecord]) -> Dict[int, List[TraceRecord]]:
    """Group records by span id (span 0 — spanless records — excluded)."""
    grouped: Dict[int, List[TraceRecord]] = {}
    for record in records:
        if record.span:
            grouped.setdefault(record.span, []).append(record)
    return grouped


def packet_spans(records: Sequence[TraceRecord]) -> List[List[TraceRecord]]:
    """Every packet span, in first-seen order."""
    out = []
    for span_records in spans(records).values():
        if span_records and span_records[0].kind in PACKET_KINDS:
            out.append(span_records)
    return out


def explain_span(span_records: Sequence[TraceRecord]) -> PacketExplanation:
    """Decompose one span's records into an attributed explanation."""
    if not span_records:
        raise ValueError("empty span")
    ordered = sorted(span_records, key=lambda r: r.seq)
    root = ordered[0]
    expl = PacketExplanation(root=root)
    by_decision: Dict[int, Segment] = {}
    for record in ordered[1:]:
        if record.kind == "decision":
            segment = Segment(decision=record)
            expl.segments.append(segment)
            by_decision[record.seq] = segment
        elif record.kind == "hop":
            segment = by_decision.get(record.parent)
            if segment is None and expl.segments:
                segment = expl.segments[-1]
            if segment is not None:
                segment.hops.append(record)
        elif record.kind == "end":
            expl.end = record
        else:
            if expl.segments:
                expl.segments[-1].notes.append(record)
            else:
                expl.preamble.append(record)
    return expl


def explain_packets(records: Sequence[TraceRecord]) -> List[PacketExplanation]:
    return [explain_span(span_records)
            for span_records in packet_spans(records)]


def last_packet(records: Sequence[TraceRecord]) -> Optional[PacketExplanation]:
    """Explanation of the most recent packet span, if any."""
    groups = packet_spans(records)
    return explain_span(groups[-1]) if groups else None
