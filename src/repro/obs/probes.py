"""Live invariant probes: structured violations during workload runs.

Probes watch a running network two ways: *event-driven* checks subscribe
to the installed tracer's record stream (e.g. every ``cache.hit`` must
respect the Bloom isolation guard), and *periodic* checks run on
:meth:`ProbeSet.tick` (ring successor consistency, Bloom residency,
LSDB/SPF agreement).  A failed check produces a structured
:class:`Violation` — and, when a tracer is attached, a
``probe.violation`` trace record — instead of an exception, so a
workload run completes and reports every invariant breach it saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.trace import Tracer, TraceRecord


@dataclass
class Violation:
    """One observed invariant breach."""

    probe: str
    t: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"probe": self.probe, "t": self.t, "detail": self.detail}


class Probe:
    """Base class; subclasses override ``check`` and/or ``on_record``."""

    name = "probe"

    def check(self, report) -> None:
        """Periodic invariant sweep; call ``report(**detail)`` per breach."""

    def on_record(self, record: TraceRecord, report) -> None:
        """React to one live trace record."""


class RingConsistencyProbe(Probe):
    """Intra: live members must form one sorted successor ring per
    component (wraps :meth:`IntraDomainNetwork.check_ring`)."""

    name = "ring-consistency"

    def __init__(self, net):
        self.net = net

    def check(self, report) -> None:
        try:
            self.net.check_ring()
        except AssertionError as exc:
            report(error=str(exc))


class InterRingConsistencyProbe(Probe):
    """Inter: every hierarchy level's merged ring must be consistent
    (wraps :meth:`InterDomainNetwork.check_rings`)."""

    name = "inter-ring-consistency"

    def __init__(self, net):
        self.net = net

    def check(self, report) -> None:
        try:
            self.net.check_rings()
        except AssertionError as exc:
            report(error=str(exc))


class CacheIsolationProbe(Probe):
    """Inter: pointer-cache use must respect the subtree Bloom guard.

    Event-driven: a ``cache.hit`` for a destination that the hitting
    AS's subtree Bloom claims is *below* it would let a cached shortcut
    pull intra-subtree traffic through a provider (Section 5) — the
    guard in :meth:`RoflAS._cache_match` exists to prevent exactly this.
    Periodic: every hosted ID must be resident in the subtree Bloom of
    each of its ancestors (Blooms admit false positives, never false
    negatives, so a miss means a stale filter).
    """

    name = "cache-isolation"

    def __init__(self, net):
        self.net = net

    def on_record(self, record: TraceRecord, report) -> None:
        if record.kind != "cache.hit":
            return
        asn = record.data.get("asn")
        dest_hex = record.data.get("dest")
        # Trace data stringifies AS numbers for JSON; map back.
        node = self.net.ases.get(asn)
        if node is None:
            node = next((n for key, n in self.net.ases.items()
                         if str(key) == asn), None)
        if node is None or dest_hex is None:
            return
        from repro.idspace.identifier import FlatId
        dest = FlatId.from_hex(dest_hex)
        if dest in node.subtree_bloom:
            report(kind="bloom-guard-bypassed", asn=asn, dest=dest_hex)

    def check(self, report) -> None:
        hierarchy = self.net.policy.hierarchy
        for asn, node in self.net.ases.items():
            for vn in node.hosted.values():
                for ancestor in hierarchy.up_chain(vn.home_as):
                    if vn.id not in self.net.ases[ancestor].subtree_bloom:
                        report(kind="bloom-missing-resident",
                               asn=ancestor, dest=vn.id.to_hex())


class SpfAgreementProbe(Probe):
    """Intra: the event-invalidated :class:`PathCache` must agree with a
    fresh SPF over the live LSDB (selective eviction gone wrong shows up
    as a stale cached distance)."""

    name = "spf-agreement"

    #: Pairs checked per tick; deterministic picks, no RNG draw.
    MAX_PAIRS = 8

    def __init__(self, net):
        self.net = net

    def _sample_pairs(self):
        routers = sorted(self.net.routers)
        n = len(routers)
        if n < 2:
            return
        step = max(1, n // self.MAX_PAIRS)
        for i in range(0, n, step):
            yield routers[i], routers[(i + n // 2) % n]

    def check(self, report) -> None:
        import networkx as nx
        graph = self.net.lsmap.live_graph
        for src, dst in self._sample_pairs():
            if src == dst:
                continue
            cached = self.net.paths.hop_dist(src, dst)
            if src not in graph or dst not in graph:
                fresh = None
            else:
                try:
                    fresh = nx.shortest_path_length(graph, src, dst)
                except nx.NetworkXNoPath:
                    fresh = None
            if cached != fresh:
                report(src=src, dst=dst, cached=cached, fresh=fresh)


class StretchBoundProbe(Probe):
    """Compact routing: observed stretch must respect the provable bound.

    Event-driven: every ``end`` record carrying both ``optimal`` and
    ``bound`` (the compact forwarding engine stamps each delivered
    packet with its hop count, the shortest-path distance, and the
    protocol's ``stretch_bound``) is asserted to satisfy
    ``hops ≤ bound · optimal`` — a breach means the Thorup–Zwick
    argument was violated in practice, the headline invariant of the
    Disco baseline.

    Periodic (when constructed with the network): deterministic bounded
    samples of the three structures the proof rests on —

    * *radius agreement*: the precomputed nearest-landmark distance must
      match a fresh SPF query;
    * *ball closure*: the shortest path to a ball member must stay
      inside the ball (the advertisement-cost and shortcut arguments);
    * *locator residency*: every sampled registered ID's directory
      record must point at the router that actually hosts it.
    """

    name = "stretch-bound"

    #: Routers / locators sampled per tick; deterministic, no RNG draw.
    MAX_SAMPLES = 8

    #: Slack for float comparison of ``hops ≤ bound · optimal``.
    EPSILON = 1e-9

    def __init__(self, net=None):
        self.net = net

    def on_record(self, record: TraceRecord, report) -> None:
        if record.kind != "end":
            return
        data = record.data
        if "optimal" not in data or "bound" not in data:
            return
        if not data.get("delivered"):
            return
        optimal = data["optimal"]
        hops = data.get("hops", 0)
        if optimal and optimal > 0:
            if hops > data["bound"] * optimal + self.EPSILON:
                report(kind="stretch-bound-exceeded", span=record.span,
                       hops=hops, optimal=optimal, bound=data["bound"],
                       stretch=hops / optimal)

    def _sample(self, items):
        ordered = sorted(items)
        step = max(1, len(ordered) // self.MAX_SAMPLES)
        return ordered[::step][:self.MAX_SAMPLES]

    def check(self, report) -> None:
        net = self.net
        if net is None:
            return
        plan = net.plan
        for router in self._sample(net.topology.routers):
            fresh = min((d for d in (net.paths.hop_dist(router, lm)
                                     for lm in plan.landmarks)
                         if d is not None), default=None)
            if fresh != plan.radius.get(router):
                report(kind="radius-disagreement", router=router,
                       cached=plan.radius.get(router), fresh=fresh)
                continue
            ball = plan.ball[router]
            for member in self._sample(ball)[:2]:
                path = net.paths.hop_path(router, member)
                if path is None:
                    report(kind="ball-member-unreachable", router=router,
                           member=member)
                elif any(node not in ball for node in path[1:-1]):
                    report(kind="ball-not-closed", router=router,
                           member=member, path=list(path))
        for host_id in self._sample(net.host_location):
            locator = net.directory.lookup(host_id)
            if locator is None:
                report(kind="locator-missing", dest=host_id.to_hex())
            elif locator.attach_router != net.host_location[host_id]:
                report(kind="locator-stale", dest=host_id.to_hex(),
                       registered=locator.attach_router,
                       actual=net.host_location[host_id])


class ProbeSet:
    """A bundle of probes sharing one violation log.

    Attach to a tracer to receive live records (and echo violations as
    ``probe.violation`` trace records); call :meth:`tick` from the
    workload sampling loop for the periodic sweeps.
    """

    def __init__(self, probes: List[Probe],
                 tracer: Optional[Tracer] = None):
        self.probes = probes
        self.tracer = tracer
        self.violations: List[Violation] = []
        self._now = 0.0
        if tracer is not None:
            tracer.add_observer(self.on_record)

    @classmethod
    def for_network(cls, net, tracer: Optional[Tracer] = None) -> "ProbeSet":
        """The standard probe bundle for an intra or inter network."""
        from repro.compact.network import DiscoNetwork
        from repro.inter.network import InterDomainNetwork
        from repro.intra.network import IntraDomainNetwork
        probes: List[Probe] = []
        if isinstance(net, IntraDomainNetwork):
            probes = [RingConsistencyProbe(net), SpfAgreementProbe(net)]
        elif isinstance(net, InterDomainNetwork):
            probes = [InterRingConsistencyProbe(net),
                      CacheIsolationProbe(net)]
        elif isinstance(net, DiscoNetwork):
            probes = [StretchBoundProbe(net)]
        return cls(probes, tracer=tracer)

    # -- plumbing ------------------------------------------------------------

    def _report_for(self, probe: Probe):
        def report(**detail):
            violation = Violation(probe=probe.name, t=self._now,
                                  detail=detail)
            self.violations.append(violation)
            if self.tracer is not None:
                self.tracer.emit("probe.violation", probe=probe.name,
                                 **detail)
        return report

    def on_record(self, record: TraceRecord) -> None:
        self._now = record.t
        for probe in self.probes:
            probe.on_record(record, self._report_for(probe))

    def tick(self, now: float) -> int:
        """Run every periodic check; returns violations found this tick."""
        self._now = now
        before = len(self.violations)
        for probe in self.probes:
            probe.check(self._report_for(probe))
        return len(self.violations) - before

    def detach(self) -> None:
        if self.tracer is not None:
            self.tracer.remove_observer(self.on_record)

    def summary(self) -> List[Dict[str, Any]]:
        return [v.to_dict() for v in self.violations]
