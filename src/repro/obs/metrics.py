"""Streaming metrics: windowed registry deltas and Prometheus text.

The end-of-run ``PerfRegistry.snapshot()`` that lands in bench rows says
nothing about *dynamics* — stretch under churn, repair after a fault,
control overhead over time.  This module closes that gap with two
complementary surfaces:

* :class:`MetricsExporter` — a JSONL stream of per-window **deltas**
  over a live :class:`repro.util.perf.PerfRegistry` (plus optional
  extra cumulative counter sources, e.g. a network's
  ``StatsCollector.messages``).  Windows are stamped with *virtual*
  time, never the wall clock, and in deterministic mode every emitted
  field is a pure function of simulation state — so two runs from one
  seed produce byte-identical streams (the same replay contract the
  trace JSONL and the workload result already obey).

* :func:`render_prometheus` — the classic Prometheus text exposition of
  a registry snapshot, served live by ``repro serve``'s ``metrics_text``
  op so external scrapers can watch a resident network.

Both are zero-dependency and cost nothing when unused: the exporter is
pull-based (callers decide when a window closes — the workload driver
ties it to virtual-time sampling, the shard coordinator to sync-window
barriers) and touches the registry only at those boundaries.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Dict, IO, Optional, Union

from repro.util.perf import PerfRegistry

#: Histogram quantiles reported per window and in Prometheus summaries.
QUANTILES = (0.5, 0.95, 0.99)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


class MetricsExporter:
    """Emit windowed registry deltas as deterministic JSONL.

    One line per window::

        {"counters": {...}, "gauges": {...}, "histograms": {...},
         "t": 12.0, "timers": {...}, "window": 3}

    ``counters`` carries the **delta** since the previous window (zero
    deltas are omitted); ``gauges`` the current values; ``histograms``
    the cumulative count, the window's new-sample count, and cumulative
    p50/p95/p99/mean; ``timers`` the per-window call delta — and, only
    when ``deterministic=False``, wall-clock seconds/mean/max (wall
    time can never be byte-reproducible, so deterministic streams drop
    it and keep the call counts, which are functions of the seed).

    ``counters_fn`` folds an extra cumulative-counter source into the
    stream (the workload driver passes the network's protocol message
    counters); it must return a ``name -> cumulative value`` dict.
    """

    def __init__(self, registry: PerfRegistry,
                 out: Union[str, IO[str]], *,
                 deterministic: bool = True,
                 counters_fn: Optional[Callable[[], Dict[str, float]]] = None,
                 source: Optional[str] = None):
        self.registry = registry
        self.deterministic = deterministic
        self.counters_fn = counters_fn
        self.source = source
        if isinstance(out, str):
            self._fh: Optional[IO[str]] = open(out, "w")
            self._own_fh = True
        else:
            self._fh = out
            self._own_fh = False
        self.windows_emitted = 0
        #: Virtual time of the most recent window (None before the first).
        self.last_t: Optional[float] = None
        self._last_counters: Dict[str, float] = {}
        self._last_timers: Dict[str, tuple] = {}
        self._last_hist_counts: Dict[str, int] = {}

    # -- window assembly -----------------------------------------------------

    def _cumulative_counters(self) -> Dict[str, float]:
        counters = dict(self.registry.counters)
        if self.counters_fn is not None:
            counters.update(self.counters_fn())
        return counters

    def _counter_deltas(self, counters: Dict[str, float]) -> Dict[str, float]:
        out = {}
        for name, value in counters.items():
            delta = value - self._last_counters.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def _timer_deltas(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for name, cell in self.registry.timers.items():
            last_calls, last_seconds = self._last_timers.get(name, (0, 0.0))
            delta_calls = cell[0] - last_calls
            if not delta_calls:
                continue
            row: Dict[str, float] = {"calls": delta_calls}
            if not self.deterministic:
                delta_seconds = cell[1] - last_seconds
                row["seconds"] = round(delta_seconds, 6)
                row["mean"] = round(delta_seconds / delta_calls, 9)
                row["max"] = round(cell[2], 6)
            out[name] = row
        return out

    def _histogram_rows(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for name, hist in self.registry.histograms.items():
            count = len(hist)
            new = count - self._last_hist_counts.get(name, 0)
            if not count:
                continue
            row = {"count": count, "new": new}
            snap = hist.snapshot()
            for q in QUANTILES:
                key = "p{:g}".format(q * 100)
                row[key] = snap.get(key, hist.percentile(q))
            row["mean"] = round(snap["mean"], 9)
            row["max"] = snap["max"]
            out[name] = row
        return out

    def emit_window(self, t: float,
                    extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Close the window ending at virtual time ``t``: write one JSONL
        line of deltas and advance the baseline.  Returns the row."""
        counters = self._cumulative_counters()
        row: Dict[str, Any] = {
            "t": round(t, 6),
            "window": self.windows_emitted,
            "counters": self._counter_deltas(counters),
            "timers": self._timer_deltas(),
            "gauges": dict(self.registry.gauges),
            "histograms": self._histogram_rows(),
        }
        if self.source is not None:
            row["source"] = self.source
        if extra:
            row.update(extra)
        self._write(row)
        self.windows_emitted += 1
        self.last_t = row["t"]
        self._last_counters = counters
        self._last_timers = {name: (cell[0], cell[1])
                             for name, cell in self.registry.timers.items()}
        self._last_hist_counts = {name: len(hist) for name, hist
                                  in self.registry.histograms.items()}
        return row

    def _write(self, row: Dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError("exporter is closed")
        self._fh.write(json.dumps(row, sort_keys=True,
                                  separators=(",", ":")))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None and self._own_fh:
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "MetricsExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_metrics_jsonl(path: str) -> list:
    """Load the window rows a :class:`MetricsExporter` wrote."""
    rows = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


# ---------------------------------------------------------------------------
# Prometheus text exposition.
# ---------------------------------------------------------------------------

def _mangle(name: str) -> str:
    """Dotted registry names to the Prometheus charset."""
    return _NAME_RE.sub("_", name)


def render_prometheus(registry_or_snapshot, prefix: str = "repro") -> str:
    """The Prometheus text exposition format (version 0.0.4) of a
    registry snapshot.

    Counters become ``<prefix>_<name>_total`` counters; gauges stay
    gauges; timers expand to ``_calls_total`` / ``_seconds_total``
    counters plus a ``_seconds_max`` gauge; histograms render as
    summaries with p50/p95/p99 quantiles, ``_sum``, and ``_count``.
    Output ordering is sorted, so equal snapshots render identically.
    """
    if isinstance(registry_or_snapshot, PerfRegistry):
        snap = registry_or_snapshot.snapshot()
    else:
        snap = registry_or_snapshot
    lines = []

    def fmt(value: float) -> str:
        if isinstance(value, float) and value == int(value) and \
                abs(value) < 1e15:
            return str(int(value))
        return repr(value)

    for name in sorted(snap.get("counters", {})):
        metric = "{}_{}_total".format(prefix, _mangle(name))
        lines.append("# TYPE {} counter".format(metric))
        lines.append("{} {}".format(metric, fmt(snap["counters"][name])))
    for name in sorted(snap.get("gauges", {})):
        metric = "{}_{}".format(prefix, _mangle(name))
        lines.append("# TYPE {} gauge".format(metric))
        lines.append("{} {}".format(metric, fmt(snap["gauges"][name])))
    for name in sorted(snap.get("timers", {})):
        row = snap["timers"][name]
        base = "{}_{}".format(prefix, _mangle(name))
        lines.append("# TYPE {}_calls_total counter".format(base))
        lines.append("{}_calls_total {}".format(base, fmt(row["calls"])))
        lines.append("# TYPE {}_seconds_total counter".format(base))
        lines.append("{}_seconds_total {}".format(base,
                                                  fmt(row["seconds"])))
        if "max" in row:
            lines.append("# TYPE {}_seconds_max gauge".format(base))
            lines.append("{}_seconds_max {}".format(base, fmt(row["max"])))
    for name in sorted(snap.get("histograms", {})):
        row = snap["histograms"][name]
        base = "{}_{}".format(prefix, _mangle(name))
        lines.append("# TYPE {} summary".format(base))
        if row.get("count"):
            for q in QUANTILES:
                key = "p{:g}".format(q * 100)
                if key in row:
                    lines.append('{}{{quantile="{}"}} {}'.format(
                        base, q, fmt(row[key])))
            lines.append("{}_sum {}".format(
                base, fmt(round(row["mean"] * row["count"], 9))))
        lines.append("{}_count {}".format(base, fmt(row.get("count", 0))))
    return "\n".join(lines) + "\n"
