"""``repro.obs`` — causal tracing, explain, probes, metrics, reports.

Zero-dependency observability for the whole stack.  See DESIGN.md §7
(tracing) and §12 (the streaming telemetry pipeline).
"""

from repro.obs.explain import (PacketExplanation, Segment, explain_packets,
                               explain_span, last_packet, packet_spans)
from repro.obs.metrics import (MetricsExporter, read_metrics_jsonl,
                               render_prometheus)
from repro.obs.probes import (CacheIsolationProbe, InterRingConsistencyProbe,
                              Probe, ProbeSet, RingConsistencyProbe,
                              SpfAgreementProbe, StretchBoundProbe, Violation)
from repro.obs.report import (build_timer_tree, generate_report,
                              render_html, render_markdown,
                              render_timer_tree, summarize_metrics)
from repro.obs.trace import (JsonlSink, NullSink, RingBufferSink, Span,
                             TraceRecord, Tracer, get_tracer, install,
                             read_jsonl, tracing, uninstall)

__all__ = [
    "CacheIsolationProbe", "InterRingConsistencyProbe", "JsonlSink",
    "MetricsExporter", "NullSink", "PacketExplanation", "Probe", "ProbeSet",
    "RingBufferSink", "RingConsistencyProbe", "Segment", "Span",
    "SpfAgreementProbe", "StretchBoundProbe", "TraceRecord", "Tracer",
    "Violation",
    "build_timer_tree", "explain_packets", "explain_span", "generate_report",
    "get_tracer", "install", "last_packet", "packet_spans",
    "read_jsonl", "read_metrics_jsonl", "render_html", "render_markdown",
    "render_prometheus", "render_timer_tree", "summarize_metrics",
    "tracing", "uninstall",
]
