"""``repro.obs`` — causal tracing, route-decision explain, invariant probes.

Zero-dependency observability for the whole stack.  See DESIGN.md §7.
"""

from repro.obs.explain import (PacketExplanation, Segment, explain_packets,
                               explain_span, last_packet, packet_spans)
from repro.obs.probes import (CacheIsolationProbe, InterRingConsistencyProbe,
                              Probe, ProbeSet, RingConsistencyProbe,
                              SpfAgreementProbe, Violation)
from repro.obs.trace import (JsonlSink, NullSink, RingBufferSink, Span,
                             TraceRecord, Tracer, get_tracer, install,
                             read_jsonl, tracing, uninstall)

__all__ = [
    "CacheIsolationProbe", "InterRingConsistencyProbe", "JsonlSink",
    "NullSink", "PacketExplanation", "Probe", "ProbeSet",
    "RingBufferSink", "RingConsistencyProbe", "Segment", "Span",
    "SpfAgreementProbe", "TraceRecord", "Tracer", "Violation",
    "explain_packets", "explain_span", "get_tracer", "install",
    "last_packet", "packet_spans", "read_jsonl", "tracing", "uninstall",
]
