"""ROFL: Routing on Flat Labels — a full reproduction of the SIGCOMM 2006 paper.

The package is organised by substrate (see DESIGN.md):

* :mod:`repro.idspace` — the flat 128-bit circular identifier namespace and
  self-certifying identities.
* :mod:`repro.util` — bloom filters, sorted ring maps and RNG helpers.
* :mod:`repro.sim` — a discrete-event simulation kernel and statistics.
* :mod:`repro.topology` — router-level ISP and AS-level Internet topologies.
* :mod:`repro.linkstate` — the OSPF-like link-state substrate ROFL assumes.
* :mod:`repro.intra` — intradomain ROFL (Section 3 of the paper).
* :mod:`repro.inter` — interdomain ROFL (Section 4) plus the BGP baseline.
* :mod:`repro.baselines` — CMU-ETHERNET and plain OSPF host routing.
* :mod:`repro.services` — anycast, multicast, security, traffic engineering.
* :mod:`repro.harness` — drivers that regenerate every figure in the paper.

Quickstart::

    from repro import quick_intradomain

    net = quick_intradomain(n_routers=40, n_hosts=200, seed=1)
    a, b = net.random_host_pair()
    result = net.send(a, b)
    print(result.hops, result.stretch)
"""

from repro.idspace.identifier import FlatId, RingSpace
from repro.intra.network import IntraDomainNetwork
from repro.inter.network import InterDomainNetwork
from repro.topology.isp import synthetic_isp, ROCKETFUEL_PROFILES
from repro.topology.asgraph import synthetic_as_graph

__version__ = "1.0.0"

__all__ = [
    "FlatId",
    "RingSpace",
    "IntraDomainNetwork",
    "InterDomainNetwork",
    "synthetic_isp",
    "synthetic_as_graph",
    "ROCKETFUEL_PROFILES",
    "quick_intradomain",
    "quick_interdomain",
]


def quick_intradomain(n_routers=40, n_hosts=100, seed=0, cache_entries=1024):
    """Build a small intradomain ROFL network ready to route packets.

    This is the two-line entry point used by ``examples/quickstart.py``:
    it generates a synthetic PoP-structured ISP, brings up the link-state
    substrate and joins ``n_hosts`` hosts onto the ring.
    """
    topo = synthetic_isp(n_routers=n_routers, seed=seed)
    net = IntraDomainNetwork(topo, cache_entries=cache_entries, seed=seed)
    net.join_random_hosts(n_hosts)
    return net


def quick_interdomain(n_ases=60, n_hosts=300, seed=0, n_fingers=16):
    """Build a small interdomain ROFL network over a synthetic AS graph."""
    graph = synthetic_as_graph(n_ases=n_ases, seed=seed)
    net = InterDomainNetwork(graph, n_fingers=n_fingers, seed=seed)
    net.join_random_hosts(n_hosts)
    return net
