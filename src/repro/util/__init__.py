"""Generic data structures shared by the ROFL subsystems.

* :mod:`repro.util.bloom` — Bloom filters (plain + counting), used for
  peering shortcuts and pointer-cache isolation (paper Sections 4.1–4.2).
* :mod:`repro.util.ringmap` — a sorted circular map supporting successor /
  predecessor / greedy lookups in ``O(log n)``.
* :mod:`repro.util.rng` — deterministic random helpers (seed derivation,
  Zipf sampling) so every experiment is reproducible.
"""

from repro.util.bloom import BloomFilter, CountingBloomFilter
from repro.util.ringmap import SortedRingMap
from repro.util.rng import RngRegistry, derive_rng, stable_hash, zipf_weights

__all__ = [
    "BloomFilter",
    "CountingBloomFilter",
    "RngRegistry",
    "SortedRingMap",
    "derive_rng",
    "stable_hash",
    "zipf_weights",
]
