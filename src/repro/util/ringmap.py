"""A sorted circular map over :class:`FlatId` keys.

Rings, virtual-node tables and pointer caches all need the same three
queries, each in ``O(log n)``:

* ``successor(id)`` — the next key clockwise (wrapping), Chord convention:
  the smallest key strictly greater than ``id``, else the smallest key.
* ``predecessor(id)`` — the previous key counter-clockwise.
* ``closest_not_past(current, dest)`` — the greedy next hop of Algorithm 2.

The paper notes the last query is cheap on real hardware: "given a list of
IDs in sorted order, the closest namespace distance match is either the
shortest prefix match or the one right before it in the sorted list"
(Section 3.3).  We implement exactly that: a bisect into the sorted key
list and an inspection of the neighbouring entry.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.idspace.identifier import FlatId, RingSpace


class SortedRingMap:
    """Map from :class:`FlatId` to arbitrary values with circular queries."""

    def __init__(self, space: RingSpace):
        self.space = space
        self._keys: List[FlatId] = []
        self._values: Dict[FlatId, Any] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: FlatId) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[FlatId]:
        return iter(self._keys)

    def __getitem__(self, key: FlatId) -> Any:
        return self._values[key]

    def get(self, key: FlatId, default: Any = None) -> Any:
        return self._values.get(key, default)

    def items(self) -> Iterator[Tuple[FlatId, Any]]:
        for key in self._keys:
            yield key, self._values[key]

    def keys(self) -> List[FlatId]:
        return list(self._keys)

    def insert(self, key: FlatId, value: Any = None) -> None:
        """Insert or replace the value stored at ``key``."""
        if key not in self._values:
            bisect.insort(self._keys, key)
        self._values[key] = value

    def remove(self, key: FlatId) -> Any:
        """Remove ``key``; raises ``KeyError`` if absent."""
        value = self._values.pop(key)  # KeyError propagates
        index = bisect.bisect_left(self._keys, key)
        del self._keys[index]
        return value

    def discard(self, key: FlatId) -> None:
        if key in self._values:
            self.remove(key)

    def successor(self, key: FlatId, strict: bool = True) -> Optional[FlatId]:
        """The next key clockwise from ``key`` (wrapping).

        With ``strict=False`` a stored key equal to ``key`` is returned
        as its own successor, which is the lookup used when routing *to*
        an identifier.
        """
        if not self._keys:
            return None
        if strict:
            index = bisect.bisect_right(self._keys, key)
        else:
            index = bisect.bisect_left(self._keys, key)
        return self._keys[index % len(self._keys)]

    def predecessor(self, key: FlatId, strict: bool = True) -> Optional[FlatId]:
        """The previous key counter-clockwise from ``key`` (wrapping)."""
        if not self._keys:
            return None
        if strict:
            index = bisect.bisect_left(self._keys, key) - 1
        else:
            index = bisect.bisect_right(self._keys, key) - 1
        return self._keys[index % len(self._keys)]

    def closest_not_past(self, current: FlatId, dest: FlatId) -> Optional[FlatId]:
        """Greedy best match: the stored key closest to ``dest`` without
        passing it, and strictly past ``current``.  ``None`` if no key
        makes progress.
        """
        if not self._keys:
            return None
        # The best admissible key is the predecessor of dest (allowing
        # equality): it is the closest key counter-clockwise of dest.
        candidate = self.predecessor(dest, strict=False)
        if candidate is None:
            return None
        if self.space.progress(current, candidate, dest):
            return candidate
        return None

    def iter_predecessors(self, key: FlatId) -> Iterator[FlatId]:
        """Yield stored keys counter-clockwise starting at ``key`` itself
        (if stored) or its predecessor, wrapping once around the ring."""
        if not self._keys:
            return
        start = (bisect.bisect_right(self._keys, key) - 1) % len(self._keys)
        for offset in range(len(self._keys)):
            yield self._keys[(start - offset) % len(self._keys)]

    def in_arc(self, low: FlatId, high: FlatId) -> List[FlatId]:
        """All stored keys on the clockwise arc ``[low, high]`` inclusive."""
        if not self._keys:
            return []
        if low <= high:
            lo = bisect.bisect_left(self._keys, low)
            hi = bisect.bisect_right(self._keys, high)
            return self._keys[lo:hi]
        # Wrapping arc: [low, top] + [bottom, high].
        lo = bisect.bisect_left(self._keys, low)
        hi = bisect.bisect_right(self._keys, high)
        return self._keys[lo:] + self._keys[:hi]

    def __repr__(self) -> str:
        return "SortedRingMap(n={})".format(len(self._keys))
