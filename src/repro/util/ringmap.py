"""A sorted circular map over :class:`FlatId` keys.

Rings, virtual-node tables and pointer caches all need the same three
queries, each in ``O(log n)``:

* ``successor(id)`` — the next key clockwise (wrapping), Chord convention:
  the smallest key strictly greater than ``id``, else the smallest key.
* ``predecessor(id)`` — the previous key counter-clockwise.
* ``closest_not_past(current, dest)`` — the greedy next hop of Algorithm 2.

The paper notes the last query is cheap on real hardware: "given a list of
IDs in sorted order, the closest namespace distance match is either the
shortest prefix match or the one right before it in the sorted list"
(Section 3.3).  We implement exactly that: a bisect into the sorted key
list and an inspection of the neighbouring entry.

Hot-path layout: alongside the ``FlatId`` key list the map keeps a
lock-step ``_ivalues`` array of raw ``int`` values.  Every bisect runs on
the int array (native int comparisons instead of ``total_ordering``
dispatch) and payloads are stored in a dict keyed by int value (native
int hashing instead of tuple hashing), which is where the greedy-routing
inner loops spend their time.  The ``*_value`` methods expose the same
queries directly in the int domain for callers that avoid ``FlatId``
allocation altogether.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

from repro.idspace.identifier import FlatId, RingSpace


class RingKeysView(Sequence):
    """A zero-copy, read-only view over a map's sorted key list.

    Returned by :meth:`SortedRingMap.keys` so hot loops can iterate and
    index the keys without the per-call list copy the old API made.  The
    view is live: it reflects later mutations of the map.
    """

    __slots__ = ("_keys",)

    def __init__(self, keys: List[FlatId]):
        self._keys = keys

    def __len__(self) -> int:
        return len(self._keys)

    def __getitem__(self, index):
        result = self._keys[index]
        return RingKeysView(result) if isinstance(index, slice) else result

    def __iter__(self) -> Iterator[FlatId]:
        return iter(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._keys

    def __repr__(self) -> str:
        return "RingKeysView(n={})".format(len(self._keys))


def _ival(key: Union[FlatId, int]) -> int:
    """The raw int value of a key given as either ``FlatId`` or ``int``."""
    return key if type(key) is int else key.value


class SortedRingMap:
    """Map from :class:`FlatId` to arbitrary values with circular queries."""

    def __init__(self, space: RingSpace):
        self.space = space
        self._keys: List[FlatId] = []
        self._ivalues: List[int] = []          # lock-step raw values
        self._payloads: dict = {}              # int value -> stored payload

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Union[FlatId, int]) -> bool:
        return _ival(key) in self._payloads

    def __iter__(self) -> Iterator[FlatId]:
        return iter(self._keys)

    def __getitem__(self, key: Union[FlatId, int]) -> Any:
        return self._payloads[_ival(key)]

    def get(self, key: Union[FlatId, int], default: Any = None) -> Any:
        return self._payloads.get(_ival(key), default)

    def items(self) -> Iterator[Tuple[FlatId, Any]]:
        payloads = self._payloads
        for key in self._keys:
            yield key, payloads[key.value]

    def keys(self) -> RingKeysView:
        """A read-only, zero-copy view of the sorted keys.

        Callers that need an independent snapshot (e.g. to mutate the map
        while iterating) should copy explicitly with ``list(ring.keys())``.
        """
        return RingKeysView(self._keys)

    def key_values(self) -> Sequence[int]:
        """The sorted raw int values, zero-copy.  Do not mutate."""
        return self._ivalues

    def payloads(self) -> dict:
        """The int-value-keyed payload dict, zero-copy.  Do not mutate."""
        return self._payloads

    def insert(self, key: FlatId, value: Any = None) -> None:
        """Insert or replace the value stored at ``key``."""
        iv = key.value
        if iv not in self._payloads:
            index = bisect.bisect_left(self._ivalues, iv)
            self._ivalues.insert(index, iv)
            self._keys.insert(index, key)
        self._payloads[iv] = value

    def remove(self, key: Union[FlatId, int]) -> Any:
        """Remove ``key``; raises ``KeyError`` if absent."""
        iv = _ival(key)
        value = self._payloads.pop(iv)  # KeyError propagates
        index = bisect.bisect_left(self._ivalues, iv)
        del self._ivalues[index]
        del self._keys[index]
        return value

    def discard(self, key: Union[FlatId, int]) -> None:
        if _ival(key) in self._payloads:
            self.remove(key)

    def successor(self, key: Union[FlatId, int],
                  strict: bool = True) -> Optional[FlatId]:
        """The next key clockwise from ``key`` (wrapping).

        With ``strict=False`` a stored key equal to ``key`` is returned
        as its own successor, which is the lookup used when routing *to*
        an identifier.
        """
        if not self._keys:
            return None
        iv = _ival(key)
        if strict:
            index = bisect.bisect_right(self._ivalues, iv)
        else:
            index = bisect.bisect_left(self._ivalues, iv)
        return self._keys[index % len(self._keys)]

    def predecessor(self, key: Union[FlatId, int],
                    strict: bool = True) -> Optional[FlatId]:
        """The previous key counter-clockwise from ``key`` (wrapping)."""
        if not self._keys:
            return None
        iv = _ival(key)
        if strict:
            index = bisect.bisect_left(self._ivalues, iv) - 1
        else:
            index = bisect.bisect_right(self._ivalues, iv) - 1
        return self._keys[index % len(self._keys)]

    def closest_not_past(self, current: Union[FlatId, int],
                         dest: Union[FlatId, int]) -> Optional[FlatId]:
        """Greedy best match: the stored key closest to ``dest`` without
        passing it, and strictly past ``current``.  ``None`` if no key
        makes progress.
        """
        if not self._keys:
            return None
        # The best admissible key is the predecessor of dest (allowing
        # equality): it is the closest key counter-clockwise of dest.
        candidate = self.predecessor(dest, strict=False)
        if candidate is None:
            return None
        if self.space.progress_i(_ival(current), candidate.value, _ival(dest)):
            return candidate
        return None

    def closest_not_past_value(self, current: int, dest: int) -> Optional[int]:
        """Int-domain :meth:`closest_not_past`: raw values in and out."""
        ivalues = self._ivalues
        if not ivalues:
            return None
        index = (bisect.bisect_right(ivalues, dest) - 1) % len(ivalues)
        candidate = ivalues[index]
        mask = self.space.mask
        advanced = (candidate - current) & mask
        if advanced and advanced <= ((dest - current) & mask):
            return candidate
        return None

    def iter_predecessors(self, key: Union[FlatId, int]) -> Iterator[FlatId]:
        """Yield stored keys counter-clockwise starting at ``key`` itself
        (if stored) or its predecessor, wrapping once around the ring."""
        if not self._keys:
            return
        iv = _ival(key)
        start = (bisect.bisect_right(self._ivalues, iv) - 1) % len(self._keys)
        for offset in range(len(self._keys)):
            yield self._keys[(start - offset) % len(self._keys)]

    def iter_predecessor_values(self, key: Union[FlatId, int]) -> Iterator[int]:
        """Int-domain :meth:`iter_predecessors`: yields raw values."""
        ivalues = self._ivalues
        n = len(ivalues)
        if not n:
            return
        start = (bisect.bisect_right(ivalues, _ival(key)) - 1) % n
        for offset in range(n):
            yield ivalues[(start - offset) % n]

    def in_arc(self, low: Union[FlatId, int],
               high: Union[FlatId, int]) -> List[FlatId]:
        """All stored keys on the clockwise arc ``[low, high]`` inclusive."""
        if not self._keys:
            return []
        low_v, high_v = _ival(low), _ival(high)
        if low_v <= high_v:
            lo = bisect.bisect_left(self._ivalues, low_v)
            hi = bisect.bisect_right(self._ivalues, high_v)
            return self._keys[lo:hi]
        # Wrapping arc: [low, top] + [bottom, high].
        lo = bisect.bisect_left(self._ivalues, low_v)
        hi = bisect.bisect_right(self._ivalues, high_v)
        return self._keys[lo:] + self._keys[:hi]

    def __repr__(self) -> str:
        return "SortedRingMap(n={})".format(len(self._keys))
