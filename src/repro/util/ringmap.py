"""A sorted circular map over :class:`FlatId` keys.

Rings, virtual-node tables and pointer caches all need the same three
queries, each in ``O(log n)``:

* ``successor(id)`` — the next key clockwise (wrapping), Chord convention:
  the smallest key strictly greater than ``id``, else the smallest key.
* ``predecessor(id)`` — the previous key counter-clockwise.
* ``closest_not_past(current, dest)`` — the greedy next hop of Algorithm 2.

The paper notes the last query is cheap on real hardware: "given a list of
IDs in sorted order, the closest namespace distance match is either the
shortest prefix match or the one right before it in the sorted list"
(Section 3.3).  We implement exactly that: a bisect into the sorted key
list and an inspection of the neighbouring entry.

Hot-path layout: alongside the ``FlatId`` key list the map keeps a
lock-step ``_ivalues`` array of raw ``int`` values.  Every bisect runs on
the int array (native int comparisons instead of ``total_ordering``
dispatch) and payloads are stored in a dict keyed by int value (native
int hashing instead of tuple hashing), which is where the greedy-routing
inner loops spend their time.  The ``*_value`` methods expose the same
queries directly in the int domain for callers that avoid ``FlatId``
allocation altogether.
"""

from __future__ import annotations

import bisect
import os
from array import array
from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

from repro.idspace.identifier import FlatId, RingSpace

try:  # optional accelerator backend, never required
    import numpy as _numpy
except ImportError:  # pragma: no cover - depends on environment
    _numpy = None

#: Feature flag for the numpy key-column backend of
#: :class:`ColumnarRingIndex` (``REPRO_NUMPY=1``).  Only engages for ring
#: spaces whose keys fit an unsigned 64-bit word; silently ignored when
#: numpy is not installed.
NUMPY_FLAG_ENV = "REPRO_NUMPY"


class RingKeysView(Sequence):
    """A zero-copy, read-only view over a map's sorted key list.

    Returned by :meth:`SortedRingMap.keys` so hot loops can iterate and
    index the keys without the per-call list copy the old API made.  The
    view is live: it reflects later mutations of the map.
    """

    __slots__ = ("_keys",)

    def __init__(self, keys: List[FlatId]):
        self._keys = keys

    def __len__(self) -> int:
        return len(self._keys)

    def __getitem__(self, index):
        result = self._keys[index]
        return RingKeysView(result) if isinstance(index, slice) else result

    def __iter__(self) -> Iterator[FlatId]:
        return iter(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._keys

    def __repr__(self) -> str:
        return "RingKeysView(n={})".format(len(self._keys))


def _ival(key: Union[FlatId, int]) -> int:
    """The raw int value of a key given as either ``FlatId`` or ``int``."""
    return key if type(key) is int else key.value


class SortedRingMap:
    """Map from :class:`FlatId` to arbitrary values with circular queries."""

    def __init__(self, space: RingSpace):
        self.space = space
        self._keys: List[FlatId] = []
        self._ivalues: List[int] = []          # lock-step raw values
        self._payloads: dict = {}              # int value -> stored payload

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Union[FlatId, int]) -> bool:
        return _ival(key) in self._payloads

    def __iter__(self) -> Iterator[FlatId]:
        return iter(self._keys)

    def __getitem__(self, key: Union[FlatId, int]) -> Any:
        return self._payloads[_ival(key)]

    def get(self, key: Union[FlatId, int], default: Any = None) -> Any:
        return self._payloads.get(_ival(key), default)

    def items(self) -> Iterator[Tuple[FlatId, Any]]:
        payloads = self._payloads
        for key in self._keys:
            yield key, payloads[key.value]

    def keys(self) -> RingKeysView:
        """A read-only, zero-copy view of the sorted keys.

        Callers that need an independent snapshot (e.g. to mutate the map
        while iterating) should copy explicitly with ``list(ring.keys())``.
        """
        return RingKeysView(self._keys)

    def key_values(self) -> Sequence[int]:
        """The sorted raw int values, zero-copy.  Do not mutate."""
        return self._ivalues

    def payloads(self) -> dict:
        """The int-value-keyed payload dict, zero-copy.  Do not mutate."""
        return self._payloads

    def insert(self, key: FlatId, value: Any = None) -> None:
        """Insert or replace the value stored at ``key``."""
        iv = key.value
        if iv not in self._payloads:
            index = bisect.bisect_left(self._ivalues, iv)
            self._ivalues.insert(index, iv)
            self._keys.insert(index, key)
        self._payloads[iv] = value

    def remove(self, key: Union[FlatId, int]) -> Any:
        """Remove ``key``; raises ``KeyError`` if absent."""
        iv = _ival(key)
        value = self._payloads.pop(iv)  # KeyError propagates
        index = bisect.bisect_left(self._ivalues, iv)
        del self._ivalues[index]
        del self._keys[index]
        return value

    def discard(self, key: Union[FlatId, int]) -> None:
        if _ival(key) in self._payloads:
            self.remove(key)

    def successor(self, key: Union[FlatId, int],
                  strict: bool = True) -> Optional[FlatId]:
        """The next key clockwise from ``key`` (wrapping).

        With ``strict=False`` a stored key equal to ``key`` is returned
        as its own successor, which is the lookup used when routing *to*
        an identifier.
        """
        if not self._keys:
            return None
        iv = _ival(key)
        if strict:
            index = bisect.bisect_right(self._ivalues, iv)
        else:
            index = bisect.bisect_left(self._ivalues, iv)
        return self._keys[index % len(self._keys)]

    def predecessor(self, key: Union[FlatId, int],
                    strict: bool = True) -> Optional[FlatId]:
        """The previous key counter-clockwise from ``key`` (wrapping)."""
        if not self._keys:
            return None
        iv = _ival(key)
        if strict:
            index = bisect.bisect_left(self._ivalues, iv) - 1
        else:
            index = bisect.bisect_right(self._ivalues, iv) - 1
        return self._keys[index % len(self._keys)]

    def closest_not_past(self, current: Union[FlatId, int],
                         dest: Union[FlatId, int]) -> Optional[FlatId]:
        """Greedy best match: the stored key closest to ``dest`` without
        passing it, and strictly past ``current``.  ``None`` if no key
        makes progress.
        """
        if not self._keys:
            return None
        # The best admissible key is the predecessor of dest (allowing
        # equality): it is the closest key counter-clockwise of dest.
        candidate = self.predecessor(dest, strict=False)
        if candidate is None:
            return None
        if self.space.progress_i(_ival(current), candidate.value, _ival(dest)):
            return candidate
        return None

    def closest_not_past_value(self, current: int, dest: int) -> Optional[int]:
        """Int-domain :meth:`closest_not_past`: raw values in and out."""
        ivalues = self._ivalues
        if not ivalues:
            return None
        index = (bisect.bisect_right(ivalues, dest) - 1) % len(ivalues)
        candidate = ivalues[index]
        mask = self.space.mask
        advanced = (candidate - current) & mask
        if advanced and advanced <= ((dest - current) & mask):
            return candidate
        return None

    def iter_predecessors(self, key: Union[FlatId, int]) -> Iterator[FlatId]:
        """Yield stored keys counter-clockwise starting at ``key`` itself
        (if stored) or its predecessor, wrapping once around the ring."""
        if not self._keys:
            return
        iv = _ival(key)
        start = (bisect.bisect_right(self._ivalues, iv) - 1) % len(self._keys)
        for offset in range(len(self._keys)):
            yield self._keys[(start - offset) % len(self._keys)]

    def iter_predecessor_values(self, key: Union[FlatId, int]) -> Iterator[int]:
        """Int-domain :meth:`iter_predecessors`: yields raw values."""
        ivalues = self._ivalues
        n = len(ivalues)
        if not n:
            return
        start = (bisect.bisect_right(ivalues, _ival(key)) - 1) % n
        for offset in range(n):
            yield ivalues[(start - offset) % n]

    def in_arc(self, low: Union[FlatId, int],
               high: Union[FlatId, int]) -> List[FlatId]:
        """All stored keys on the clockwise arc ``[low, high]`` inclusive."""
        if not self._keys:
            return []
        low_v, high_v = _ival(low), _ival(high)
        if low_v <= high_v:
            lo = bisect.bisect_left(self._ivalues, low_v)
            hi = bisect.bisect_right(self._ivalues, high_v)
            return self._keys[lo:hi]
        # Wrapping arc: [low, top] + [bottom, high].
        lo = bisect.bisect_left(self._ivalues, low_v)
        hi = bisect.bisect_right(self._ivalues, high_v)
        return self._keys[lo:] + self._keys[:hi]

    def __repr__(self) -> str:
        return "SortedRingMap(n={})".format(len(self._keys))


#: When the staged batch is at least ``1/REBUILD_FRACTION`` of the synced
#: key column, the sync rebuilds the whole column in one C-speed sort
#: instead of applying per-key inserts/deletes.
REBUILD_FRACTION = 8


def _pick_backend(space: RingSpace, backend: Optional[str]) -> str:
    """Resolve the key-column storage for a :class:`ColumnarRingIndex`.

    ``array`` (flat unsigned 64-bit C array) needs every key to fit one
    word; wider ring spaces (the 128-bit default) fall back to a sorted
    plain-int list, which bisect handles identically.  ``numpy`` is the
    opt-in vectorised variant behind :data:`NUMPY_FLAG_ENV`.
    """
    if backend is None:
        if (_numpy is not None and space.bits <= 64
                and os.environ.get(NUMPY_FLAG_ENV, "") not in ("", "0")):
            return "numpy"
        return "array" if space.bits <= 64 else "list"
    if backend not in ("list", "array", "numpy"):
        raise ValueError("unknown backend {!r}".format(backend))
    if backend in ("array", "numpy") and space.bits > 64:
        raise ValueError("backend {!r} needs keys <= 64 bits".format(backend))
    if backend == "numpy" and _numpy is None:
        raise ValueError("numpy backend requested but numpy is unavailable")
    return backend


class ColumnarRingIndex:
    """Flat-array circular candidate index over raw ``int`` keys.

    The columnar counterpart of :class:`SortedRingMap` for hot paths that
    already live in the int domain (router/AS candidate indexes): one
    sorted flat key column plus a lock-step payload column, so greedy
    scans walk two parallel arrays with zero per-candidate hashing.

    Mutations are **dict-immediate, column-deferred**: ``set``/``delete``
    update the authoritative payload dict at once (reads through ``get``
    are never stale) and only *stage* the key change.  The sorted columns
    are synced lazily at the next positional query, applying the whole
    staged batch in one pass — per-key C ``memmove`` for small batches, a
    single C-speed sort rebuild for storms.  This is what turns a
    mark-dirty storm (thousands of join-time mutations) into one cheap
    epoch flush instead of thousands of O(n) list inserts.

    Key column backends (``backend=`` or auto): ``"list"`` (sorted plain
    ints, any width), ``"array"`` (``array('Q')``, spaces ≤ 64 bits) and
    ``"numpy"`` (``uint64`` + ``searchsorted``, behind ``REPRO_NUMPY=1``).
    """

    __slots__ = ("space", "backend", "_payloads", "_keys", "_vals",
                 "_pending_add", "_pending_del")

    def __init__(self, space: RingSpace, backend: Optional[str] = None):
        self.space = space
        self.backend = _pick_backend(space, backend)
        self._payloads: dict = {}          # int key -> payload (authoritative)
        self._keys = self._empty_column()  # sorted key column (synced view)
        self._vals: List[Any] = []         # lock-step payload column
        self._pending_add: set = set()
        self._pending_del: set = set()

    def _empty_column(self):
        if self.backend == "array":
            return array("Q")
        if self.backend == "numpy":
            return _numpy.empty(0, dtype=_numpy.uint64)
        return []

    # -- dict-immediate mutation ------------------------------------------------

    def __len__(self) -> int:
        return len(self._payloads)

    def __contains__(self, key: int) -> bool:
        return key in self._payloads

    def get(self, key: int, default: Any = None) -> Any:
        return self._payloads.get(key, default)

    def __getitem__(self, key: int) -> Any:
        return self._payloads[key]

    def set(self, key: int, payload: Any) -> None:
        """Insert or replace the payload stored at ``key``."""
        payloads = self._payloads
        if key in payloads:
            payloads[key] = payload
            if key not in self._pending_add:
                # Key already synced: patch the payload column in place.
                index = self._bisect_left(key)
                self._vals[index] = payload
            return
        payloads[key] = payload
        if key in self._pending_del:
            # Deleted-then-reinserted within one epoch: the key is still
            # in the columns; only its payload cell needs patching.
            self._pending_del.discard(key)
            self._vals[self._bisect_left(key)] = payload
        else:
            self._pending_add.add(key)

    def delete(self, key: int) -> Any:
        """Remove ``key``; raises ``KeyError`` if absent."""
        payload = self._payloads.pop(key)  # KeyError propagates
        if key in self._pending_add:
            self._pending_add.discard(key)
        else:
            self._pending_del.add(key)
        return payload

    def discard(self, key: int) -> None:
        if key in self._payloads:
            self.delete(key)

    # -- the epoch sync ---------------------------------------------------------

    def pending(self) -> int:
        """Staged key mutations awaiting the next column sync."""
        return len(self._pending_add) + len(self._pending_del)

    def _bisect_left(self, key: int) -> int:
        if self.backend == "numpy":
            return int(_numpy.searchsorted(self._keys, key, side="left"))
        return bisect.bisect_left(self._keys, key)

    def _sync(self) -> None:
        adds, dels = self._pending_add, self._pending_del
        if not adds and not dels:
            return
        payloads = self._payloads
        if (self.backend == "numpy"
                or (len(adds) + len(dels)) * REBUILD_FRACTION
                >= len(self._keys)):
            # Storm (or numpy, whose inserts are whole-array copies
            # regardless): one C-speed sort over the authoritative dict.
            ordered = sorted(payloads)
            if self.backend == "array":
                self._keys = array("Q", ordered)
            elif self.backend == "numpy":
                self._keys = _numpy.fromiter(ordered, dtype=_numpy.uint64,
                                             count=len(ordered))
            else:
                self._keys = ordered
            self._vals = [payloads[key] for key in ordered]
        else:
            keys, vals = self._keys, self._vals
            for key in sorted(dels, reverse=True):
                position = bisect.bisect_left(keys, key)
                del keys[position]
                del vals[position]
            for key in sorted(adds):
                position = bisect.bisect_left(keys, key)
                keys.insert(position, key)
                vals.insert(position, payloads[key])
        adds.clear()
        dels.clear()

    # -- positional queries (int domain) ----------------------------------------

    def columns(self) -> Tuple[Sequence[int], List[Any]]:
        """The synced ``(sorted keys, lock-step payloads)`` columns.

        Zero-copy: callers must not mutate, and must re-fetch after any
        ``set``/``delete`` (the views go stale at the next sync).
        """
        self._sync()
        return self._keys, self._vals

    def key_values(self) -> Sequence[int]:
        """The synced sorted key column, zero-copy.  Do not mutate."""
        self._sync()
        return self._keys

    def rank_right(self, key: int) -> int:
        """``bisect_right`` position of ``key`` in the synced column."""
        self._sync()
        if self.backend == "numpy":
            return int(_numpy.searchsorted(self._keys, key, side="right"))
        return bisect.bisect_right(self._keys, key)

    def successor_value(self, key: int, strict: bool = True) -> Optional[int]:
        """The next stored key clockwise from ``key`` (wrapping)."""
        self._sync()
        n = len(self._keys)
        if not n:
            return None
        if strict:
            index = self.rank_right(key)
        else:
            index = self._bisect_left(key)
        return int(self._keys[index % n])

    def predecessor_value(self, key: int, strict: bool = True) -> Optional[int]:
        """The previous stored key counter-clockwise from ``key``."""
        self._sync()
        n = len(self._keys)
        if not n:
            return None
        if strict:
            index = self._bisect_left(key) - 1
        else:
            index = self.rank_right(key) - 1
        return int(self._keys[index % n])

    def closest_not_past_value(self, current: int, dest: int) -> Optional[int]:
        """Greedy best match in the int domain (see
        :meth:`SortedRingMap.closest_not_past`)."""
        self._sync()
        keys = self._keys
        n = len(keys)
        if not n:
            return None
        candidate = int(keys[(self.rank_right(dest) - 1) % n])
        mask = self.space.mask
        advanced = (candidate - current) & mask
        if advanced and advanced <= ((dest - current) & mask):
            return candidate
        return None

    def iter_predecessor_values(self, key: int) -> Iterator[int]:
        """Yield stored keys counter-clockwise starting at ``key`` itself
        (if stored) or its predecessor, wrapping once around the ring."""
        self._sync()
        keys = self._keys
        n = len(keys)
        if not n:
            return
        start = (self.rank_right(key) - 1) % n
        for offset in range(n):
            yield int(keys[(start - offset) % n])

    def in_arc_values(self, low: int, high: int) -> List[int]:
        """All stored keys on the clockwise arc ``[low, high]`` inclusive."""
        self._sync()
        keys = self._keys
        if not len(keys):
            return []
        lo = self._bisect_left(low)
        hi = self.rank_right(high)
        if low <= high:
            return [int(key) for key in keys[lo:hi]]
        return [int(key) for key in keys[lo:]] + [int(key) for key in keys[:hi]]

    def __iter__(self) -> Iterator[int]:
        self._sync()
        return iter(self._keys)

    def __repr__(self) -> str:
        return "ColumnarRingIndex(n={}, backend={}, pending={})".format(
            len(self._payloads), self.backend, self.pending())
