"""Bloom filters, built from scratch (paper Sections 4.1, 4.2, 6.3).

ROFL uses Bloom filters in two places:

* border routers "may optionally maintain bloom filters that summarize the
  set of hosts in the subtree rooted at the AS", consulted when deciding
  whether a packet may cross a peering link;
* ASes that use interdomain pointer caches consult the same filters to
  avoid cache entries that would violate the isolation property.

The implementation uses the standard Kirsch–Mitzenmacher double-hashing
construction (two independent SHA-256-derived hashes combined as
``h1 + i*h2``), which preserves the asymptotic false-positive behaviour of
``k`` independent hash functions.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable, Iterable, List, Tuple


def optimal_parameters(capacity: int, fp_rate: float) -> Tuple[int, int]:
    """Return ``(n_bits, n_hashes)`` for a target capacity and FP rate."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if not 0.0 < fp_rate < 1.0:
        raise ValueError("fp_rate must be in (0, 1)")
    n_bits = max(8, int(math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))))
    n_hashes = max(1, int(round(n_bits / capacity * math.log(2))))
    return n_bits, n_hashes


def _hash_pair(item: Hashable) -> Tuple[int, int]:
    """Two independent 64-bit hashes of ``item`` via SHA-256."""
    if isinstance(item, bytes):
        data = b"B" + item
    elif isinstance(item, str):
        data = b"S" + item.encode("utf-8")
    elif isinstance(item, int):
        data = b"I" + item.to_bytes((item.bit_length() + 8) // 8 + 1, "big", signed=True)
    else:
        # Fall back to repr for structured items (e.g. FlatId), which have
        # deterministic reprs in this codebase.
        data = b"R" + repr(item).encode("utf-8")
    digest = hashlib.sha256(data).digest()
    h1 = int.from_bytes(digest[:8], "big")
    h2 = int.from_bytes(digest[8:16], "big") | 1  # odd => full period
    return h1, h2


class BloomFilter:
    """A plain Bloom filter over arbitrary hashable items."""

    def __init__(self, capacity: int = 1024, fp_rate: float = 0.01,
                 n_bits: int = None, n_hashes: int = None):
        if n_bits is None or n_hashes is None:
            n_bits, n_hashes = optimal_parameters(capacity, fp_rate)
        if n_bits <= 0 or n_hashes <= 0:
            raise ValueError("n_bits and n_hashes must be positive")
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self._bits = 0  # arbitrary-precision int as a bit vector
        self.n_items = 0

    def _positions(self, item: Hashable) -> Iterable[int]:
        h1, h2 = _hash_pair(item)
        for i in range(self.n_hashes):
            yield (h1 + i * h2) % self.n_bits

    def add(self, item: Hashable) -> None:
        for pos in self._positions(item):
            self._bits |= 1 << pos
        self.n_items += 1

    def update(self, items: Iterable[Hashable]) -> None:
        for item in items:
            self.add(item)

    def __contains__(self, item: Hashable) -> bool:
        return all(self._bits >> pos & 1 for pos in self._positions(item))

    def false_positive_rate(self) -> float:
        """The expected FP rate at the current load."""
        if self.n_items == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.n_hashes * self.n_items / self.n_bits)
        return fill ** self.n_hashes

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise union; both filters must share parameters."""
        if (self.n_bits, self.n_hashes) != (other.n_bits, other.n_hashes):
            raise ValueError("cannot union filters with different parameters")
        merged = BloomFilter(n_bits=self.n_bits, n_hashes=self.n_hashes)
        merged._bits = self._bits | other._bits
        merged.n_items = self.n_items + other.n_items
        return merged

    @property
    def size_bits(self) -> int:
        """State size in bits — the unit the paper reports (e.g. 74 Mbit/AS)."""
        return self.n_bits

    def fill_ratio(self) -> float:
        return bin(self._bits).count("1") / self.n_bits

    def __repr__(self) -> str:
        return "BloomFilter(bits={}, hashes={}, items={})".format(
            self.n_bits, self.n_hashes, self.n_items)


class CountingBloomFilter(BloomFilter):
    """A Bloom filter supporting removal, used where host churn must be
    reflected in the subtree summaries (hosts leave as well as join)."""

    def __init__(self, capacity: int = 1024, fp_rate: float = 0.01,
                 n_bits: int = None, n_hashes: int = None):
        super().__init__(capacity, fp_rate, n_bits, n_hashes)
        self._counts: List[int] = [0] * self.n_bits

    def add(self, item: Hashable) -> None:
        for pos in self._positions(item):
            self._counts[pos] += 1
            self._bits |= 1 << pos
        self.n_items += 1

    def remove(self, item: Hashable) -> bool:
        """Remove ``item`` if (apparently) present; returns success."""
        positions = list(self._positions(item))
        if not all(self._counts[pos] > 0 for pos in positions):
            return False
        for pos in positions:
            self._counts[pos] -= 1
            if self._counts[pos] == 0:
                self._bits &= ~(1 << pos)
        self.n_items = max(0, self.n_items - 1)
        return True

    @property
    def size_bits(self) -> int:
        # 4-bit counters, the classical counting-bloom sizing.
        return self.n_bits * 4
