"""Deterministic randomness helpers.

Every experiment in the harness is seeded; sub-seeds are derived with
:func:`derive_rng` so that adding a new consumer of randomness never
perturbs the streams of existing ones (no shared global RNG state).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Sequence, Tuple


def stable_hash(*parts) -> int:
    """A process-independent 64-bit hash (unlike builtin ``hash``)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest()[:8], "big")


def derive_rng(seed, *scope) -> random.Random:
    """A fresh :class:`random.Random` keyed on ``(seed, *scope)``.

    ``scope`` labels the consumer (e.g. ``("topology", isp_name)``) so each
    subsystem gets an independent stream from one experiment seed.
    """
    return random.Random(stable_hash(seed, *scope))


class RngRegistry:
    """All derived streams of one seeded simulation, enumerable by scope.

    ``derive(*scope)`` returns the cached stream for that scope (creating
    it via :func:`derive_rng` on first use), so every consumer that holds
    randomness long-term gets it from here and the registry can later
    enumerate *every* live stream — which is what lets
    :mod:`repro.snapshot` capture and restore each stream's exact
    position (``random.Random.getstate()``) instead of silently resetting
    the tapes on load.

    Registries pickle with their streams, so a snapshotted network
    resumes every stream mid-tape.  Scope elements must be hashable and
    ``repr``-stable (strings, ints, tuples — the same contract
    :func:`stable_hash` already imposes).
    """

    def __init__(self, seed) -> None:
        self.seed = seed
        self._streams: Dict[Tuple, random.Random] = {}

    def derive(self, *scope) -> random.Random:
        """The cached stream for ``scope`` (seeded on first use)."""
        stream = self._streams.get(scope)
        if stream is None:
            stream = self._streams[scope] = derive_rng(self.seed, *scope)
        return stream

    def scopes(self) -> List[Tuple]:
        """Every registered scope, in a deterministic (sorted) order."""
        return sorted(self._streams, key=repr)

    def capture(self) -> Dict[Tuple, tuple]:
        """``scope → getstate()`` for every registered stream."""
        return {scope: stream.getstate()
                for scope, stream in self._streams.items()}

    def restore(self, states: Dict[Tuple, tuple]) -> None:
        """Re-derive each captured scope and rewind it to its position."""
        for scope, state in states.items():
            self.derive(*scope).setstate(state)

    def __len__(self) -> int:
        return len(self._streams)

    def __contains__(self, scope: Tuple) -> bool:
        return scope in self._streams

    def __repr__(self) -> str:
        return "RngRegistry(seed={!r}, streams={})".format(self.seed,
                                                           len(self._streams))


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Normalised Zipf weights ``w_k ∝ 1/k^exponent`` for ranks 1..n.

    Used to spread hosts over ASes/ISPs: the paper observes "a highly
    uneven distribution of hosts across ASes in the Internet" and uses
    skitter traces to estimate it; a Zipf law is the standard synthetic
    stand-in.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    raw = [1.0 / (k ** exponent) for k in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_choice(rng: random.Random, items: Sequence, weights: Sequence[float]):
    """Pick one item according to ``weights`` (need not be normalised)."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    return rng.choices(list(items), weights=list(weights), k=1)[0]


def sample_zipf_counts(rng: random.Random, n_bins: int, total: int,
                       exponent: float = 1.0) -> List[int]:
    """Split ``total`` items over ``n_bins`` bins with Zipf popularity.

    Bin order is shuffled so that bin index does not correlate with size.
    Every bin receives at least zero; the counts always sum to ``total``.
    """
    weights = zipf_weights(n_bins, exponent)
    rng.shuffle(weights)
    counts = [int(w * total) for w in weights]
    # Distribute the rounding remainder one by one to random bins.
    shortfall = total - sum(counts)
    for _ in range(shortfall):
        counts[rng.randrange(n_bins)] += 1
    return counts
