"""Deterministic randomness helpers.

Every experiment in the harness is seeded; sub-seeds are derived with
:func:`derive_rng` so that adding a new consumer of randomness never
perturbs the streams of existing ones (no shared global RNG state).
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence


def stable_hash(*parts) -> int:
    """A process-independent 64-bit hash (unlike builtin ``hash``)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest()[:8], "big")


def derive_rng(seed, *scope) -> random.Random:
    """A fresh :class:`random.Random` keyed on ``(seed, *scope)``.

    ``scope`` labels the consumer (e.g. ``("topology", isp_name)``) so each
    subsystem gets an independent stream from one experiment seed.
    """
    return random.Random(stable_hash(seed, *scope))


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Normalised Zipf weights ``w_k ∝ 1/k^exponent`` for ranks 1..n.

    Used to spread hosts over ASes/ISPs: the paper observes "a highly
    uneven distribution of hosts across ASes in the Internet" and uses
    skitter traces to estimate it; a Zipf law is the standard synthetic
    stand-in.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    raw = [1.0 / (k ** exponent) for k in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_choice(rng: random.Random, items: Sequence, weights: Sequence[float]):
    """Pick one item according to ``weights`` (need not be normalised)."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    return rng.choices(list(items), weights=list(weights), k=1)[0]


def sample_zipf_counts(rng: random.Random, n_bins: int, total: int,
                       exponent: float = 1.0) -> List[int]:
    """Split ``total`` items over ``n_bins`` bins with Zipf popularity.

    Bin order is shuffled so that bin index does not correlate with size.
    Every bin receives at least zero; the counts always sum to ``total``.
    """
    weights = zipf_weights(n_bins, exponent)
    rng.shuffle(weights)
    counts = [int(w * total) for w in weights]
    # Distribute the rounding remainder one by one to random bins.
    shortfall = total - sum(counts)
    for _ in range(shortfall):
        counts[rng.randrange(n_bins)] += 1
    return counts
