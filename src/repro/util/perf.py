"""Lightweight performance counters and wall-clock timers.

Every hot subsystem increments named counters (``perf.counter("fwd.hops",
n)``) and brackets rebuild-style work in timers (``with
perf.timed("spf.hop_tree"): ...``).  The global registry is deliberately
dumb — a dict update per event, no locks, no sampling — so leaving the
instrumentation on costs well under a microsecond per call and the
benchmarks can report counter dumps alongside wall-clock numbers.

The harness attaches ``PERF.snapshot()`` to every experiment result (see
:mod:`repro.harness.experiments`), and ``benchmarks/perf_trajectory.py``
persists the dump into ``BENCH_scaling.json`` so the repo's performance
trajectory is machine-checkable across PRs.
"""

from __future__ import annotations

import time
from typing import Dict, List


class _Timer:
    """Context manager recording one wall-clock interval into a registry."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "PerfRegistry", name: str):
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        timers = self._registry.timers
        cell = timers.get(self._name)
        if cell is None:
            timers[self._name] = [1, elapsed, elapsed]
        else:
            cell[0] += 1
            cell[1] += elapsed
            if elapsed > cell[2]:
                cell[2] = elapsed


class Histogram:
    """A value-distribution recorder (latencies, queue depths, stretch).

    Values are kept verbatim — simulation-scale sample counts (thousands
    to low millions) fit comfortably, and exact percentiles beat bucketed
    approximations when the workload engine asserts determinism (two runs
    with one seed must snapshot identically).
    """

    __slots__ = ("_values", "_sorted")

    def __init__(self) -> None:
        self._values: List[float] = []
        self._sorted = True

    def record(self, value: float) -> None:
        values = self._values
        if self._sorted and values and value < values[-1]:
            self._sorted = False
        values.append(value)

    def _ordered(self) -> List[float]:
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        return self._values

    def percentile(self, fraction: float) -> float:
        """Nearest-rank quantile; raises ``ValueError`` when empty."""
        ordered = self._ordered()
        if not ordered:
            raise ValueError("empty histogram")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        index = min(len(ordered) - 1,
                    max(0, int(round(fraction * (len(ordered) - 1)))))
        return ordered[index]

    def snapshot(self) -> Dict[str, float]:
        """JSON-ready summary: count/min/max/mean plus p50/p90/p95/p99."""
        ordered = self._ordered()
        if not ordered:
            return {"count": 0}
        return {
            "count": len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / len(ordered),
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def reset(self) -> None:
        self._values.clear()
        self._sorted = True

    def __len__(self) -> int:
        return len(self._values)


class PerfRegistry:
    """A named-counter / named-timer / named-gauge / histogram registry.

    ``counters`` maps name → running total; ``timers`` maps name →
    ``[calls, total_seconds, max_seconds]``; ``gauges`` maps name →
    last-set value;
    ``histograms`` maps name → :class:`Histogram`.  Registries are cheap
    enough to keep one global (:data:`PERF`) plus ad-hoc private ones in
    tests.
    """

    __slots__ = ("counters", "timers", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.timers: Dict[str, List[float]] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, n: float = 1) -> None:
        """Add ``n`` to the named counter (creating it at zero)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def timed(self, name: str) -> _Timer:
        """``with perf.timed("spf.rebuild"): ...`` wall-clock bracket."""
        return _Timer(self, name)

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest observed value."""
        self.gauges[name] = value

    def histogram(self, name: str) -> Histogram:
        """The named :class:`Histogram`, created empty on first use."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        self.histogram(name).record(value)

    def value(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-ready dump: counters verbatim, timers as
        calls/seconds/mean/max, gauges verbatim, histograms as summary
        stats."""
        out = {
            "counters": dict(self.counters),
            "timers": {name: {"calls": cell[0],
                              "seconds": round(cell[1], 6),
                              "mean": round(cell[1] / cell[0], 9)
                              if cell[0] else 0.0,
                              "max": round(cell[2], 6)}
                       for name, cell in self.timers.items()},
        }
        if self.gauges:
            out["gauges"] = dict(self.gauges)
        if self.histograms:
            out["histograms"] = {name: hist.snapshot()
                                 for name, hist in self.histograms.items()}
        return out

    def merge(self, other: "PerfRegistry") -> None:
        """Fold another registry into this one (sharded-run reporting).

        Counters add; timer cells (``[calls, seconds, max]``) add their
        calls and seconds and keep the larger max; histograms concatenate
        their raw samples; gauges are last-write-wins, so a merged gauge
        reflects whichever registry was folded in last — shard-specific
        gauges should carry the shard id in their name.  Used by
        :mod:`repro.sim.shard` to fold per-worker registries into one
        report after a multiprocess run.
        """
        for name, total in other.counters.items():
            self.counter(name, total)
        for name, their in other.timers.items():
            # Tolerate two-element [calls, seconds] cells (registries
            # pickled before max tracking existed).
            their_max = their[2] if len(their) > 2 else 0.0
            cell = self.timers.get(name)
            if cell is None:
                self.timers[name] = [their[0], their[1], their_max]
            else:
                cell[0] += their[0]
                cell[1] += their[1]
                if their_max > cell[2]:
                    cell[2] = their_max
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histogram(name)
            for value in hist._values:
                mine.record(value)

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __repr__(self) -> str:
        return "PerfRegistry(counters={}, timers={}, gauges={}, histograms={})".format(
            len(self.counters), len(self.timers), len(self.gauges),
            len(self.histograms))


#: The process-global registry the runtime instrumentation reports into.
PERF = PerfRegistry()

#: Module-level conveniences bound to the global registry so hot paths can
#: do ``from repro.util import perf; perf.counter(...)``.
counter = PERF.counter
timed = PERF.timed
gauge = PERF.gauge
histogram = PERF.histogram
observe = PERF.observe
snapshot = PERF.snapshot
reset = PERF.reset
value = PERF.value
merge = PERF.merge
