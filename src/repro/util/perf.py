"""Lightweight performance counters and wall-clock timers.

Every hot subsystem increments named counters (``perf.counter("fwd.hops",
n)``) and brackets rebuild-style work in timers (``with
perf.timed("spf.hop_tree"): ...``).  The global registry is deliberately
dumb — a dict update per event, no locks, no sampling — so leaving the
instrumentation on costs well under a microsecond per call and the
benchmarks can report counter dumps alongside wall-clock numbers.

The harness attaches ``PERF.snapshot()`` to every experiment result (see
:mod:`repro.harness.experiments`), and ``benchmarks/perf_trajectory.py``
persists the dump into ``BENCH_scaling.json`` so the repo's performance
trajectory is machine-checkable across PRs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class _Timer:
    """Context manager recording one wall-clock interval into a registry."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "PerfRegistry", name: str):
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        timers = self._registry.timers
        cell = timers.get(self._name)
        if cell is None:
            timers[self._name] = [1, elapsed]
        else:
            cell[0] += 1
            cell[1] += elapsed


class PerfRegistry:
    """A named-counter / named-timer registry.

    ``counters`` maps name → running total; ``timers`` maps name →
    ``[calls, total_seconds]``.  Registries are cheap enough to keep one
    global (:data:`PERF`) plus ad-hoc private ones in tests.
    """

    __slots__ = ("counters", "timers")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.timers: Dict[str, List[float]] = {}

    def counter(self, name: str, n: float = 1) -> None:
        """Add ``n`` to the named counter (creating it at zero)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def timed(self, name: str) -> _Timer:
        """``with perf.timed("spf.rebuild"): ...`` wall-clock bracket."""
        return _Timer(self, name)

    def value(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-ready dump: counters verbatim, timers as calls/seconds."""
        return {
            "counters": dict(self.counters),
            "timers": {name: {"calls": calls, "seconds": round(secs, 6)}
                       for name, (calls, secs) in self.timers.items()},
        }

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()

    def __repr__(self) -> str:
        return "PerfRegistry(counters={}, timers={})".format(
            len(self.counters), len(self.timers))


#: The process-global registry the runtime instrumentation reports into.
PERF = PerfRegistry()

#: Module-level conveniences bound to the global registry so hot paths can
#: do ``from repro.util import perf; perf.counter(...)``.
counter = PERF.counter
timed = PERF.timed
snapshot = PERF.snapshot
reset = PERF.reset
value = PERF.value
