"""Scheduled fault injectors.

Each injector is built from a :class:`repro.workload.scenario.FaultSpec`
and, when its virtual time arrives, drives the *existing* recovery
machinery — :mod:`repro.intra.failure`, :mod:`repro.intra.partition`,
:meth:`repro.inter.network.InterDomainNetwork.fail_as` — through the
driver.  Victim selection is deterministic: each injector draws from its
own ``derive_rng`` scope keyed on ``(seed, "faults", kind, at)``.

Every injection appends a JSON-ready record to the driver's fault log
(kind, time, victims, repair cost), which is how the Figure 7 experiment
rewrites read their measurements back out.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.workload.scenario import FaultSpec, ScenarioError

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.driver import WorkloadDriver


class FaultInjector:
    """One scheduled injection; subclasses implement :meth:`inject`."""

    kind = "abstract"

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.at = spec.at
        self.params = spec.params

    def rng(self, driver: "WorkloadDriver"):
        return driver.rng("faults", self.kind, self.at)

    def inject(self, driver: "WorkloadDriver") -> Dict:  # pragma: no cover
        raise NotImplementedError

    def fire(self, driver: "WorkloadDriver") -> None:
        record = self.inject(driver)
        record.setdefault("kind", self.kind)
        record.setdefault("at", driver.loop.now)
        driver.fault_log.append(record)


class LinkCut(FaultInjector):
    """Cut ``count`` live links (or the explicit ``links`` list); with
    ``restore_after`` the same links come back later."""

    kind = "link_cut"

    def _pick_links(self, driver: "WorkloadDriver") -> List[tuple]:
        explicit = self.params.get("links")
        if explicit:
            return [tuple(link) for link in explicit]
        net = driver.net
        live = sorted((a, b) for a, b in net.topology.links()
                      if net.lsmap.is_link_up(a, b))
        count = min(int(self.params.get("count", 1)), len(live))
        return self.rng(driver).sample(live, count) if count else []

    def inject(self, driver: "WorkloadDriver") -> Dict:
        net = driver.net
        victims = self._pick_links(driver)
        dropped = sum(net.fail_link(a, b) for a, b in victims)
        restore_after = self.params.get("restore_after")
        if restore_after is not None:
            def restore():
                for a, b in victims:
                    net.restore_link(a, b)
                driver.fault_log.append({
                    "kind": "link_restore", "at": driver.loop.now,
                    "links": [list(v) for v in victims]})
            driver.loop.schedule(float(restore_after), restore)
        return {"links": [list(v) for v in victims],
                "cache_entries_dropped": dropped}


class LinkRestore(FaultInjector):
    """Restore explicitly named links."""

    kind = "link_restore"

    def inject(self, driver: "WorkloadDriver") -> Dict:
        links = [tuple(link) for link in self.params.get("links", [])]
        for a, b in links:
            driver.net.restore_link(a, b)
        return {"links": [list(v) for v in links]}


class RouterCrash(FaultInjector):
    """Crash ``count`` live routers (or the explicit ``routers`` list);
    resident hosts re-home and rejoin via the failover protocol."""

    kind = "router_crash"

    def inject(self, driver: "WorkloadDriver") -> Dict:
        net = driver.net
        explicit = self.params.get("routers")
        if explicit:
            victims = list(explicit)
        else:
            live = sorted(net.lsmap.live_routers())
            count = min(int(self.params.get("count", 1)), max(0, len(live) - 1))
            victims = self.rng(driver).sample(live, count) if count else []
        messages = 0
        for router in victims:
            if net.lsmap.is_router_up(router):
                messages += net.fail_router(router)
        return {"routers": victims, "repair_messages": messages}


class PopPartition(FaultInjector):
    """Run the full Fig 7 disconnect/heal/reconnect/merge cycle for one
    PoP (``pop`` explicit, otherwise a seeded random choice)."""

    kind = "pop_partition"

    def inject(self, driver: "WorkloadDriver") -> Dict:
        net = driver.net
        pop = self.params.get("pop")
        if pop is None:
            pop = self.rng(driver).choice(sorted(net.topology.pops))
        report = net.partition_pop(pop)
        return {"pop": str(report.pop),
                "ids_in_pop": report.ids_in_pop,
                "cut_links": len(report.cut_links),
                "disconnect_messages": report.disconnect_messages,
                "reconnect_messages": report.reconnect_messages,
                "repair_messages": report.total_messages}


class HostCrash(FaultInjector):
    """Crash ``count`` live hosts (session-timeout teardown, not a
    graceful leave)."""

    kind = "host_crash"

    def inject(self, driver: "WorkloadDriver") -> Dict:
        net = driver.net
        live = sorted(net.hosts)
        count = min(int(self.params.get("count", 1)), len(live))
        victims = self.rng(driver).sample(live, count) if count else []
        messages = 0
        for host in victims:
            if host in net.hosts:
                messages += net.fail_host(host)
                driver.note_departure(host)
        return {"hosts": victims, "repair_messages": messages}


class ASDepeer(FaultInjector):
    """De-peer (fail) one AS — a host-bearing stub by default — and
    optionally restore it ``restore_after`` later."""

    kind = "as_depeer"

    def inject(self, driver: "WorkloadDriver") -> Dict:
        net = driver.net
        asn = self.params.get("asn")
        if asn is None:
            stub_only = bool(self.params.get("stub_only", True))
            pool = net.asg.stubs() if stub_only else net.asg.ases()
            candidates = sorted((a for a in pool
                                 if net.as_is_up(a) and net.ases[a].hosted),
                                key=str)
            if not candidates:
                return {"asn": None, "repair_messages": 0}
            asn = self.rng(driver).choice(candidates)
        ids = len(net.ases[asn].hosted)
        for vn in net.ases[asn].hosted.values():
            if vn.host_name is not None:
                driver.note_departure(vn.host_name)
        messages = net.fail_as(asn)
        restore_after = self.params.get("restore_after")
        if restore_after is not None:
            def restore():
                net.restore_as(asn)
                driver.fault_log.append({"kind": "as_restore",
                                         "at": driver.loop.now,
                                         "asn": str(asn)})
            driver.loop.schedule(float(restore_after), restore)
        return {"asn": str(asn), "ids": ids, "repair_messages": messages}


class ASRestore(FaultInjector):
    """Restore an explicitly named AS."""

    kind = "as_restore"

    def inject(self, driver: "WorkloadDriver") -> Dict:
        asn = self.params.get("asn")
        if asn is None:
            raise ScenarioError("as_restore fault needs an 'asn'")
        driver.net.restore_as(asn)
        return {"asn": str(asn)}


_INJECTORS = {cls.kind: cls for cls in (LinkCut, LinkRestore, RouterCrash,
                                        PopPartition, HostCrash, ASDepeer,
                                        ASRestore)}


def injector_from_spec(spec: FaultSpec) -> FaultInjector:
    cls = _INJECTORS.get(spec.kind)
    if cls is None:
        raise ScenarioError("unknown fault kind {!r}".format(spec.kind))
    return cls(spec)
