"""Periodic time-series sampling for workload runs.

The recorder owns a *private* :class:`repro.util.perf.PerfRegistry` (so
runs never pollute the process-global registry the harness snapshots)
and uses its histogram/gauge primitives for the distributions the
serving-stack framing cares about: packet stretch, join latency, and
repair cost.  Every ``sample_interval`` of virtual time it appends one
JSON-ready row with windowed delivery rate, stretch, control-message
overhead, routing-state size, and churn counts.

All sampled quantities are functions of simulation state only — no wall
clock — so the time series is byte-for-byte reproducible from one seed
(the determinism contract the test-suite asserts).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.stats import PathResult, StatsCollector, percentile
from repro.util.perf import PerfRegistry


class MetricsRecorder:
    """Accumulates per-window counts and emits periodic samples."""

    def __init__(self, stats: StatsCollector,
                 state_entries_fn: Callable[[], int],
                 registry: Optional[PerfRegistry] = None):
        self.stats = stats
        self.state_entries_fn = state_entries_fn
        self.perf = registry or PerfRegistry()
        self.samples: List[Dict] = []

        # Run totals.
        self.total_sent = 0
        self.total_delivered = 0
        self.total_joins = 0
        self.total_departures = 0
        self.total_join_messages = 0

        # Current-window accumulators (reset at each sample).
        self._win_sent = 0
        self._win_delivered = 0
        self._win_stretches: List[float] = []
        self._win_joins = 0
        self._win_departures = 0
        self._last_total_messages = 0
        self._last_data_messages = 0

    # -- event hooks --------------------------------------------------------

    def record_packet(self, result: PathResult) -> None:
        self.total_sent += 1
        self._win_sent += 1
        if result.delivered:
            self.total_delivered += 1
            self._win_delivered += 1
            if result.optimal_hops > 0:
                stretch = result.stretch
                self._win_stretches.append(stretch)
                self.perf.observe("packet.stretch", stretch)

    def record_join(self, messages: int,
                    latency_ms: Optional[float] = None) -> None:
        self.total_joins += 1
        self._win_joins += 1
        self.total_join_messages += messages
        self.perf.observe("join.messages", messages)
        if latency_ms is not None:
            self.perf.observe("join.latency_ms", latency_ms)

    def record_departure(self, messages: int = 0) -> None:
        self.total_departures += 1
        self._win_departures += 1
        if messages:
            self.perf.observe("departure.messages", messages)

    # -- sampling -----------------------------------------------------------

    def sample(self, now: float, live_hosts: int,
               pending_events: int = 0) -> Dict:
        """Close the current window and append one time-series row."""
        total_messages = self.stats.total_messages()
        data_messages = self.stats.messages.get("data", 0)
        control_delta = ((total_messages - data_messages)
                         - (self._last_total_messages
                            - self._last_data_messages))
        state_entries = self.state_entries_fn()

        row = {
            "t": round(now, 6),
            "live_hosts": live_hosts,
            "sent": self._win_sent,
            "delivered": self._win_delivered,
            "delivery_rate": (self._win_delivered / self._win_sent
                              if self._win_sent else None),
            "mean_stretch": (sum(self._win_stretches)
                             / len(self._win_stretches)
                             if self._win_stretches else None),
            "p95_stretch": (percentile(self._win_stretches, 0.95)
                            if self._win_stretches else None),
            "control_messages": control_delta,
            "state_entries": state_entries,
            "joins": self._win_joins,
            "departures": self._win_departures,
            "queue_depth": pending_events,
        }
        self.samples.append(row)

        self.perf.gauge("live_hosts", live_hosts)
        self.perf.gauge("state_entries", state_entries)
        self.perf.observe("sample.queue_depth", pending_events)

        self._last_total_messages = total_messages
        self._last_data_messages = data_messages
        self._win_sent = 0
        self._win_delivered = 0
        self._win_stretches = []
        self._win_joins = 0
        self._win_departures = 0
        return row

    # -- summaries ----------------------------------------------------------

    def summary(self) -> Dict:
        """Whole-run roll-up with percentile summaries."""
        rates = [s["delivery_rate"] for s in self.samples
                 if s["delivery_rate"] is not None]
        stretch_hist = self.perf.histograms.get("packet.stretch")
        join_hist = self.perf.histograms.get("join.messages")
        out: Dict = {
            "delivery_rate": (self.total_delivered / self.total_sent
                              if self.total_sent else None),
            "min_window_delivery_rate": min(rates) if rates else None,
            "total_sent": self.total_sent,
            "total_delivered": self.total_delivered,
            "total_joins": self.total_joins,
            "total_departures": self.total_departures,
            "control_messages": (self.stats.total_messages()
                                 - self.stats.messages.get("data", 0)),
            "final_state_entries": (self.samples[-1]["state_entries"]
                                    if self.samples else None),
        }
        if stretch_hist is not None and len(stretch_hist):
            snap = stretch_hist.snapshot()
            out["stretch"] = {"mean": snap["mean"], "p50": snap["p50"],
                              "p95": stretch_hist.percentile(0.95),
                              "p99": snap["p99"]}
        if join_hist is not None and len(join_hist):
            out["join_messages"] = {"mean": join_hist.snapshot()["mean"],
                                    "p95": join_hist.percentile(0.95)}
        return out
