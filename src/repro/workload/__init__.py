"""``repro.workload`` — a declarative churn, traffic, and fault engine.

The paper's whole evaluation (Section 6) is about behaviour *under load
and churn*: join overhead under host arrivals, recovery after router and
link failures (Fig 7), stub de-peering (Fig 8d).  This package turns the
hand-rolled churn loops of ``repro.harness.experiments`` into a reusable
load-generator + chaos harness:

* :mod:`repro.workload.processes` — seeded arrival / lifetime / traffic
  generators (Poisson, Pareto, Weibull, flash-crowd, diurnal, Zipf).
* :mod:`repro.workload.faults` — scheduled fault injectors (link cut,
  router crash, AS de-peering, PoP partition, host crash) driving the
  existing recovery machinery.
* :mod:`repro.workload.scenario` — the declarative, JSON-round-trippable
  :class:`Scenario` spec plus builtin example scenarios.
* :mod:`repro.workload.driver` — binds a scenario to an intra- or
  interdomain network on the :class:`repro.sim.engine.EventLoop`.
* :mod:`repro.workload.metrics` — periodic time-series sampling of
  delivery rate, stretch, control overhead, and routing-state size.

Determinism contract: every random draw flows through
:func:`repro.util.rng.derive_rng` scopes keyed on the scenario seed, so
two runs of the same scenario are byte-for-byte identical (same metric
time series, same fault victims, same packet endpoints).
"""

from repro.workload.driver import WorkloadDriver, WorkloadResult, run_scenario
from repro.workload.scenario import (BUILTIN_SCENARIOS, Scenario,
                                     ScenarioError, builtin_scenario)

__all__ = [
    "BUILTIN_SCENARIOS",
    "Scenario",
    "ScenarioError",
    "WorkloadDriver",
    "WorkloadResult",
    "builtin_scenario",
    "run_scenario",
]
