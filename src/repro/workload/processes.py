"""Stochastic processes for the workload engine (arrivals, lifetimes,
rate modulation, destination popularity).

Everything here is *declarative-friendly*: each process is built from a
plain ``{"kind": ..., ...}`` spec dict (what :mod:`repro.workload.scenario`
round-trips through JSON) and draws exclusively from an
externally-supplied :class:`random.Random`, so the driver controls the
:func:`repro.util.rng.derive_rng` scoping and determinism.

The distributions mirror the churn literature the paper sits in:
"Scalable Routing on Flat Names" (Singla et al.) drives exactly these
protocols with Poisson arrivals and Pareto session lifetimes; flash
crowds and diurnal load swings are the standard serving-stack stress
shapes.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.util.rng import zipf_weights


class SpecError(ValueError):
    """A malformed process spec (unknown kind / bad parameter)."""


def _require_positive(spec: Dict, key: str, default=None) -> float:
    value = spec.get(key, default)
    if value is None:
        raise SpecError("spec {!r} missing {!r}".format(spec, key))
    value = float(value)
    if value <= 0:
        raise SpecError("{!r} must be positive, got {!r}".format(key, value))
    return value


# ---------------------------------------------------------------------------
# Rate modulation — multiplies a base arrival/traffic rate over time.
# ---------------------------------------------------------------------------

class RateModulation:
    """Time-varying multiplier applied to a base event rate."""

    def factor(self, t: float) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def peak_factor(self) -> float:
        """An upper bound on :meth:`factor` (used for thinning)."""
        raise NotImplementedError


class FlatModulation(RateModulation):
    """No modulation: factor 1 at all times."""

    def factor(self, t: float) -> float:
        return 1.0

    def peak_factor(self) -> float:
        return 1.0


class FlashCrowd(RateModulation):
    """A transient spike: rate multiplies by ``peak`` inside a window,
    with linear ramps of ``ramp`` time units on each side."""

    def __init__(self, start: float, end: float, peak: float,
                 ramp: float = 0.0):
        if end <= start:
            raise SpecError("flash crowd end must follow start")
        if peak < 1.0:
            raise SpecError("flash crowd peak must be >= 1")
        if ramp < 0:
            raise SpecError("ramp must be non-negative")
        self.start, self.end, self.peak, self.ramp = start, end, peak, ramp

    def factor(self, t: float) -> float:
        if self.ramp > 0:
            if self.start - self.ramp <= t < self.start:
                frac = (t - (self.start - self.ramp)) / self.ramp
                return 1.0 + (self.peak - 1.0) * frac
            if self.end <= t < self.end + self.ramp:
                frac = 1.0 - (t - self.end) / self.ramp
                return 1.0 + (self.peak - 1.0) * frac
        if self.start <= t < self.end:
            return self.peak
        return 1.0

    def peak_factor(self) -> float:
        return self.peak


class DiurnalModulation(RateModulation):
    """A day/night sinusoid: factor swings between ``low`` and ``high``
    over one ``period`` (peak at ``period/4``)."""

    def __init__(self, period: float, low: float = 0.5, high: float = 1.5):
        if period <= 0:
            raise SpecError("period must be positive")
        if not 0 <= low <= high:
            raise SpecError("need 0 <= low <= high")
        self.period, self.low, self.high = period, low, high

    def factor(self, t: float) -> float:
        mid = (self.high + self.low) / 2.0
        amp = (self.high - self.low) / 2.0
        return mid + amp * math.sin(2.0 * math.pi * t / self.period)

    def peak_factor(self) -> float:
        return self.high


def modulation_from_spec(spec: Optional[Dict]) -> RateModulation:
    if spec is None:
        return FlatModulation()
    kind = spec.get("kind", "flat")
    if kind == "flat":
        return FlatModulation()
    if kind == "flash_crowd":
        return FlashCrowd(start=float(spec.get("start", 0.0)),
                          end=float(spec.get("end", 0.0)),
                          peak=_require_positive(spec, "peak", 2.0),
                          ramp=float(spec.get("ramp", 0.0)))
    if kind == "diurnal":
        return DiurnalModulation(period=_require_positive(spec, "period"),
                                 low=float(spec.get("low", 0.5)),
                                 high=float(spec.get("high", 1.5)))
    raise SpecError("unknown modulation kind {!r}".format(kind))


# ---------------------------------------------------------------------------
# Arrival processes — sequences of inter-event delays.
# ---------------------------------------------------------------------------

class PoissonProcess:
    """A (possibly modulated) Poisson arrival process.

    Modulation is implemented by thinning: candidate arrivals are drawn
    at the peak rate and accepted with probability
    ``factor(t) / peak_factor`` — the textbook non-homogeneous Poisson
    construction, and deterministic given one RNG stream.
    """

    def __init__(self, rate: float,
                 modulation: Optional[RateModulation] = None):
        if rate <= 0:
            raise SpecError("rate must be positive")
        self.rate = rate
        self.modulation = modulation or FlatModulation()

    def next_arrival(self, rng: random.Random, now: float) -> float:
        """Delay from ``now`` until the next accepted arrival."""
        peak = self.rate * self.modulation.peak_factor()
        t = now
        while True:
            t += rng.expovariate(peak)
            accept = (self.rate * self.modulation.factor(t)) / peak
            if rng.random() < accept:
                return t - now


# ---------------------------------------------------------------------------
# Session lifetimes.
# ---------------------------------------------------------------------------

class LifetimeDistribution:
    """Samples how long a joined host stays before departing."""

    def sample(self, rng: random.Random) -> float:  # pragma: no cover
        raise NotImplementedError


class ParetoLifetime(LifetimeDistribution):
    """Heavy-tailed session lifetime ``scale * Pareto(shape)``.

    ``shape`` near 1 gives the infinite-variance churn the DHT literature
    measures for peer sessions; ``scale`` is the minimum lifetime.
    """

    def __init__(self, shape: float, scale: float):
        if shape <= 0 or scale <= 0:
            raise SpecError("pareto shape and scale must be positive")
        self.shape, self.scale = shape, scale

    def sample(self, rng: random.Random) -> float:
        return self.scale * rng.paretovariate(self.shape)


class WeibullLifetime(LifetimeDistribution):
    """Weibull lifetime (shape < 1: bursty departures; > 1: aging)."""

    def __init__(self, shape: float, scale: float):
        if shape <= 0 or scale <= 0:
            raise SpecError("weibull shape and scale must be positive")
        self.shape, self.scale = shape, scale

    def sample(self, rng: random.Random) -> float:
        return rng.weibullvariate(self.scale, self.shape)


class ExponentialLifetime(LifetimeDistribution):
    """Memoryless lifetime with the given mean."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise SpecError("mean lifetime must be positive")
        self.mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)


class FixedLifetime(LifetimeDistribution):
    """Deterministic lifetime (useful in tests)."""

    def __init__(self, value: float):
        if value <= 0:
            raise SpecError("fixed lifetime must be positive")
        self.value = value

    def sample(self, rng: random.Random) -> float:
        return self.value


def lifetime_from_spec(spec: Optional[Dict]) -> Optional[LifetimeDistribution]:
    if spec is None:
        return None
    kind = spec.get("kind")
    if kind == "pareto":
        return ParetoLifetime(shape=_require_positive(spec, "shape"),
                              scale=_require_positive(spec, "scale"))
    if kind == "weibull":
        return WeibullLifetime(shape=_require_positive(spec, "shape"),
                               scale=_require_positive(spec, "scale"))
    if kind == "exponential":
        return ExponentialLifetime(mean=_require_positive(spec, "mean"))
    if kind == "fixed":
        return FixedLifetime(value=_require_positive(spec, "value"))
    raise SpecError("unknown lifetime kind {!r}".format(kind))


# ---------------------------------------------------------------------------
# Destination popularity.
# ---------------------------------------------------------------------------

class ZipfPopularity:
    """Zipf destination popularity over an ordered live population.

    Rank is join order (oldest host = rank 1), matching the observation
    that long-lived members accumulate the most inbound traffic.  Weight
    vectors are cached per population size — churn changes the size by
    one at a time, so the cache stays small across a run.
    """

    def __init__(self, exponent: float = 1.0):
        if exponent < 0:
            raise SpecError("zipf exponent must be non-negative")
        self.exponent = exponent
        self._weights_cache: Dict[int, List[float]] = {}

    def _weights(self, n: int) -> List[float]:
        weights = self._weights_cache.get(n)
        if weights is None:
            weights = self._weights_cache[n] = zipf_weights(n, self.exponent)
        return weights

    def pick(self, rng: random.Random, population: Sequence[str]) -> str:
        if not population:
            raise ValueError("empty population")
        weights = self._weights(len(population))
        return rng.choices(list(population), weights=weights, k=1)[0]


class UniformPopularity:
    """Every live destination equally likely."""

    def pick(self, rng: random.Random, population: Sequence[str]) -> str:
        if not population:
            raise ValueError("empty population")
        return rng.choice(list(population))


def popularity_from_spec(spec: Optional[Dict]):
    if spec is None:
        return UniformPopularity()
    kind = spec.get("kind", "uniform")
    if kind == "uniform":
        return UniformPopularity()
    if kind == "zipf":
        return ZipfPopularity(exponent=float(spec.get("exponent", 1.0)))
    raise SpecError("unknown popularity kind {!r}".format(kind))
