"""The declarative :class:`Scenario` spec (JSON-round-trippable).

A scenario composes three ingredient streams over a bounded run of
virtual time:

* **churn** — per-phase host arrival processes plus session-lifetime
  distributions (hosts depart when their lifetime expires);
* **traffic** — per-phase open-loop packet generators with a destination
  popularity model;
* **faults** — absolutely-timed injections (link cuts, router crashes,
  AS de-peering, PoP partition cycles, host crashes) that drive the
  existing recovery machinery.

``Scenario.to_dict()`` / ``Scenario.from_dict()`` round-trip through
plain JSON types; :data:`BUILTIN_SCENARIOS` names ready-made examples
used by the CLI, the test-suite, and the benchmark sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.workload.processes import (SpecError, lifetime_from_spec,
                                      modulation_from_spec,
                                      popularity_from_spec)


class ScenarioError(ValueError):
    """A malformed or inconsistent scenario description."""


VALID_FAULT_KINDS = ("link_cut", "link_restore", "router_crash",
                     "as_depeer", "as_restore", "pop_partition",
                     "host_crash")

VALID_DEPARTURES = ("leave", "fail")


def _as_mapping(value, what: str) -> Dict:
    if not isinstance(value, dict):
        raise ScenarioError("{} must be a mapping, got {!r}".format(
            what, type(value).__name__))
    return value


@dataclass
class NetworkSpec:
    """What network the scenario runs against.

    ``kind`` is ``"intra"`` (one ISP, router-level) or ``"inter"``
    (AS-level Internet).  Sizing knobs map straight onto
    :func:`repro.topology.isp.synthetic_isp` /
    :func:`repro.topology.asgraph.synthetic_as_graph` and the network
    constructors.
    """

    kind: str = "intra"
    n_routers: int = 40
    n_ases: int = 60
    name: str = "workload"
    cache_entries: Optional[int] = None
    n_fingers: int = 8

    def validate(self) -> None:
        if self.kind not in ("intra", "inter"):
            raise ScenarioError("network kind must be 'intra' or 'inter', "
                                "got {!r}".format(self.kind))
        if self.kind == "intra" and self.n_routers < 2:
            raise ScenarioError("need at least 2 routers")
        if self.kind == "inter" and self.n_ases < 2:
            raise ScenarioError("need at least 2 ASes")

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind, "name": self.name,
                     "n_fingers": self.n_fingers}
        if self.kind == "intra":
            out["n_routers"] = self.n_routers
        else:
            out["n_ases"] = self.n_ases
        if self.cache_entries is not None:
            out["cache_entries"] = self.cache_entries
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "NetworkSpec":
        data = _as_mapping(data, "network")
        spec = cls(kind=data.get("kind", "intra"),
                   n_routers=int(data.get("n_routers", 40)),
                   n_ases=int(data.get("n_ases", 60)),
                   name=data.get("name", "workload"),
                   cache_entries=data.get("cache_entries"),
                   n_fingers=int(data.get("n_fingers", 8)))
        spec.validate()
        return spec


@dataclass
class ChurnSpec:
    """Host arrivals (rate per time unit) and optional session lifetimes."""

    arrival_rate: float
    lifetime: Optional[Dict] = None      # processes.lifetime_from_spec spec
    modulation: Optional[Dict] = None    # processes.modulation_from_spec spec
    departure: str = "leave"             # graceful "leave" or crash "fail"

    def validate(self) -> None:
        if self.arrival_rate < 0:
            raise ScenarioError("arrival_rate must be non-negative")
        if self.departure not in VALID_DEPARTURES:
            raise ScenarioError("departure must be one of {}, got {!r}".format(
                VALID_DEPARTURES, self.departure))
        try:  # fail fast on bad sub-specs rather than mid-run
            lifetime_from_spec(self.lifetime)
            modulation_from_spec(self.modulation)
        except SpecError as exc:
            raise ScenarioError(str(exc)) from exc

    def to_dict(self) -> Dict:
        out: Dict = {"arrival_rate": self.arrival_rate,
                     "departure": self.departure}
        if self.lifetime is not None:
            out["lifetime"] = dict(self.lifetime)
        if self.modulation is not None:
            out["modulation"] = dict(self.modulation)
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "ChurnSpec":
        data = _as_mapping(data, "churn")
        if "arrival_rate" not in data:
            raise ScenarioError("churn spec missing 'arrival_rate'")
        spec = cls(arrival_rate=float(data["arrival_rate"]),
                   lifetime=data.get("lifetime"),
                   modulation=data.get("modulation"),
                   departure=data.get("departure", "leave"))
        spec.validate()
        return spec


@dataclass
class TrafficSpec:
    """Open-loop packet generation (rate per time unit) and popularity."""

    rate: float
    popularity: Optional[Dict] = None    # processes.popularity_from_spec spec
    modulation: Optional[Dict] = None

    def validate(self) -> None:
        if self.rate < 0:
            raise ScenarioError("traffic rate must be non-negative")
        try:
            popularity_from_spec(self.popularity)
            modulation_from_spec(self.modulation)
        except SpecError as exc:
            raise ScenarioError(str(exc)) from exc

    def to_dict(self) -> Dict:
        out: Dict = {"rate": self.rate}
        if self.popularity is not None:
            out["popularity"] = dict(self.popularity)
        if self.modulation is not None:
            out["modulation"] = dict(self.modulation)
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "TrafficSpec":
        data = _as_mapping(data, "traffic")
        if "rate" not in data:
            raise ScenarioError("traffic spec missing 'rate'")
        spec = cls(rate=float(data["rate"]),
                   popularity=data.get("popularity"),
                   modulation=data.get("modulation"))
        spec.validate()
        return spec


@dataclass
class Phase:
    """One contiguous stretch of the run with its own churn + traffic."""

    name: str
    start: float
    end: float
    churn: Optional[ChurnSpec] = None
    traffic: Optional[TrafficSpec] = None

    def validate(self) -> None:
        if self.end <= self.start:
            raise ScenarioError("phase {!r}: end {} must follow start {}".format(
                self.name, self.end, self.start))
        if self.start < 0:
            raise ScenarioError("phase {!r}: negative start".format(self.name))

    def to_dict(self) -> Dict:
        out: Dict = {"name": self.name, "start": self.start, "end": self.end}
        if self.churn is not None:
            out["churn"] = self.churn.to_dict()
        if self.traffic is not None:
            out["traffic"] = self.traffic.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "Phase":
        data = _as_mapping(data, "phase")
        for key in ("start", "end"):
            if key not in data:
                raise ScenarioError("phase spec missing {!r}".format(key))
        phase = cls(name=data.get("name", "phase"),
                    start=float(data["start"]), end=float(data["end"]),
                    churn=(ChurnSpec.from_dict(data["churn"])
                           if data.get("churn") is not None else None),
                    traffic=(TrafficSpec.from_dict(data["traffic"])
                             if data.get("traffic") is not None else None))
        phase.validate()
        return phase


@dataclass
class FaultSpec:
    """One scheduled injection.

    ``kind`` names the injector (see :data:`VALID_FAULT_KINDS` and
    :mod:`repro.workload.faults`); ``at`` is the absolute virtual time;
    ``params`` carries injector-specific knobs (``count``,
    ``restore_after``, ``pop``, ``stub_only``, explicit victims, ...).
    """

    kind: str
    at: float
    params: Dict = field(default_factory=dict)

    def validate(self) -> None:
        if self.kind not in VALID_FAULT_KINDS:
            raise ScenarioError("unknown fault kind {!r}; valid: {}".format(
                self.kind, ", ".join(VALID_FAULT_KINDS)))
        if self.at < 0:
            raise ScenarioError("fault {!r}: negative time".format(self.kind))

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind, "at": self.at}
        out.update(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSpec":
        data = _as_mapping(data, "fault")
        if "kind" not in data or "at" not in data:
            raise ScenarioError("fault spec needs 'kind' and 'at': "
                                "{!r}".format(data))
        params = {k: v for k, v in data.items() if k not in ("kind", "at")}
        spec = cls(kind=data["kind"], at=float(data["at"]), params=params)
        spec.validate()
        return spec


@dataclass
class Scenario:
    """A complete, reproducible workload description."""

    name: str
    seed: int = 0
    duration: float = 60.0
    warmup_hosts: int = 50
    sample_interval: float = 5.0
    network: NetworkSpec = field(default_factory=NetworkSpec)
    phases: List[Phase] = field(default_factory=list)
    faults: List[FaultSpec] = field(default_factory=list)

    def validate(self) -> None:
        if self.duration <= 0:
            raise ScenarioError("duration must be positive")
        if self.warmup_hosts < 0:
            raise ScenarioError("warmup_hosts must be non-negative")
        if self.sample_interval <= 0:
            raise ScenarioError("sample_interval must be positive")
        self.network.validate()
        for phase in self.phases:
            phase.validate()
            if phase.start >= self.duration:
                raise ScenarioError(
                    "phase {!r} starts at {} but the run ends at {}".format(
                        phase.name, phase.start, self.duration))
            if (self.network.kind == "inter" and phase.churn is not None
                    and phase.churn.lifetime is not None):
                raise ScenarioError(
                    "interdomain hosts have no graceful-departure protocol; "
                    "omit 'lifetime' in phase {!r}".format(phase.name))
        for fault in self.faults:
            fault.validate()
            if fault.at > self.duration:
                raise ScenarioError(
                    "fault {!r} at {} is past the run end {}".format(
                        fault.kind, fault.at, self.duration))
            if self.network.kind == "intra" and fault.kind in ("as_depeer",
                                                               "as_restore"):
                raise ScenarioError("{!r} faults need an interdomain "
                                    "network".format(fault.kind))
            if self.network.kind == "inter" and fault.kind in (
                    "link_cut", "link_restore", "router_crash",
                    "pop_partition", "host_crash"):
                raise ScenarioError("{!r} faults need an intradomain "
                                    "network".format(fault.kind))

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "duration": self.duration,
            "warmup_hosts": self.warmup_hosts,
            "sample_interval": self.sample_interval,
            "network": self.network.to_dict(),
            "phases": [p.to_dict() for p in self.phases],
            "faults": [f.to_dict() for f in self.faults],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "Scenario":
        data = _as_mapping(data, "scenario")
        if "name" not in data:
            raise ScenarioError("scenario missing 'name'")
        scenario = cls(
            name=data["name"],
            seed=int(data.get("seed", 0)),
            duration=float(data.get("duration", 60.0)),
            warmup_hosts=int(data.get("warmup_hosts", 50)),
            sample_interval=float(data.get("sample_interval", 5.0)),
            network=NetworkSpec.from_dict(data.get("network", {})),
            phases=[Phase.from_dict(p) for p in data.get("phases", [])],
            faults=[FaultSpec.from_dict(f) for f in data.get("faults", [])],
        )
        scenario.validate()
        return scenario

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError("invalid scenario JSON: {}".format(exc)) from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "Scenario":
        with open(path) as fh:
            return cls.from_json(fh.read())


# ---------------------------------------------------------------------------
# Builtin example scenarios.
# ---------------------------------------------------------------------------

def _steady_churn(seed: int = 0) -> Scenario:
    """Poisson joins at rate λ, Pareto lifetimes, a mid-run link-failure
    burst — the acceptance scenario, sized to run in a few seconds."""
    return Scenario(
        name="steady-churn",
        seed=seed,
        duration=60.0,
        warmup_hosts=120,
        sample_interval=5.0,
        network=NetworkSpec(kind="intra", n_routers=40, name="steady-churn"),
        phases=[Phase(
            name="steady", start=0.0, end=60.0,
            churn=ChurnSpec(arrival_rate=2.0,
                            lifetime={"kind": "pareto", "shape": 1.5,
                                      "scale": 12.0}),
            traffic=TrafficSpec(rate=8.0,
                                popularity={"kind": "zipf", "exponent": 0.9}),
        )],
        faults=[
            FaultSpec(kind="link_cut", at=30.0,
                      params={"count": 3, "restore_after": 15.0}),
        ],
    )


def _flash_crowd(seed: int = 0) -> Scenario:
    """A flash-crowd arrival spike over diurnal background traffic, with
    a router crash at the worst possible moment (mid-spike)."""
    return Scenario(
        name="flash-crowd",
        seed=seed,
        duration=90.0,
        warmup_hosts=80,
        sample_interval=5.0,
        network=NetworkSpec(kind="intra", n_routers=40, name="flash-crowd"),
        phases=[Phase(
            name="crowd", start=0.0, end=90.0,
            churn=ChurnSpec(arrival_rate=1.0,
                            lifetime={"kind": "weibull", "shape": 0.8,
                                      "scale": 25.0},
                            modulation={"kind": "flash_crowd", "start": 30.0,
                                        "end": 60.0, "peak": 5.0,
                                        "ramp": 5.0}),
            traffic=TrafficSpec(rate=6.0,
                                popularity={"kind": "zipf", "exponent": 1.1},
                                modulation={"kind": "diurnal", "period": 90.0,
                                            "low": 0.5, "high": 1.5}),
        )],
        faults=[FaultSpec(kind="router_crash", at=45.0, params={"count": 1})],
    )


def _depeering(seed: int = 0) -> Scenario:
    """Interdomain join-only churn with stub-AS de-peering mid-run (the
    Fig 8d failure mode as a standing workload)."""
    return Scenario(
        name="depeering",
        seed=seed,
        duration=60.0,
        warmup_hosts=120,
        sample_interval=5.0,
        network=NetworkSpec(kind="inter", n_ases=60, name="depeering"),
        phases=[Phase(
            name="grow", start=0.0, end=60.0,
            churn=ChurnSpec(arrival_rate=1.5),
            traffic=TrafficSpec(rate=6.0,
                                popularity={"kind": "zipf", "exponent": 0.8}),
        )],
        faults=[
            FaultSpec(kind="as_depeer", at=25.0,
                      params={"stub_only": True, "restore_after": 20.0}),
            FaultSpec(kind="as_depeer", at=40.0, params={"stub_only": True}),
        ],
    )


BUILTIN_SCENARIOS = {
    "steady-churn": _steady_churn,
    "flash-crowd": _flash_crowd,
    "depeering": _depeering,
}


def builtin_scenario(name: str, seed: int = 0) -> Scenario:
    """Instantiate a builtin scenario by name (seed overridable)."""
    factory = BUILTIN_SCENARIOS.get(name)
    if factory is None:
        raise ScenarioError("unknown builtin scenario {!r}; choices: {}".format(
            name, ", ".join(sorted(BUILTIN_SCENARIOS))))
    return factory(seed=seed)
