"""Binds a :class:`Scenario` to a network on the discrete-event loop.

The driver owns one :class:`repro.sim.engine.EventLoop` and schedules
three event families against a churning membership:

* **arrivals** — per-phase Poisson (optionally modulated) host joins,
  each with an optional sampled session lifetime that schedules the
  departure (graceful leave or crash, per the churn spec);
* **traffic** — an open-loop packet generator picking a uniform source
  and a popularity-weighted destination among *currently live* hosts;
* **faults** — the scheduled injectors of :mod:`repro.workload.faults`.

Every random draw comes from a cached ``derive_rng`` stream keyed on
``(seed, "workload", *scope)``, so adding a new consumer never perturbs
existing streams and a scenario replays byte-for-byte from its seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import EventLoop
from repro.sim.stats import PathResult
from repro.util.rng import RngRegistry
from repro.workload.faults import injector_from_spec
from repro.workload.metrics import MetricsRecorder
from repro.workload.processes import (PoissonProcess, lifetime_from_spec,
                                      modulation_from_spec,
                                      popularity_from_spec)
from repro.workload.scenario import Phase, Scenario, ScenarioError


# ---------------------------------------------------------------------------
# Network adapters — one uniform surface over intra/inter networks.
# ---------------------------------------------------------------------------

class _IntraAdapter:
    """Drives an :class:`repro.intra.network.IntraDomainNetwork`."""

    kind = "intra"
    supports_departure = True

    def __init__(self, net):
        self.net = net

    def join_one(self) -> Optional[Tuple[str, int, Optional[float]]]:
        from repro.intra.ring import JoinError
        net = self.net
        host = net.next_planned_host()
        via = None
        if not net.lsmap.is_router_up(host.attach_at):
            via = net.failover_router(host.attach_at, host.name)
            if via is None:
                return None  # whole ISP down; nothing to join at
        try:
            receipt = net.join_host(host, via_router=via)
        except JoinError:
            # A join attempted while the substrate is partitioned can
            # fail its predecessor lookup; a real host would back off and
            # retry.  Count it and move on.
            return None
        return receipt.host_name, receipt.messages, receipt.latency_ms

    def depart(self, host_name: str, mode: str) -> int:
        if mode == "fail":
            return self.net.fail_host(host_name)
        return self.net.leave_host(host_name)

    def send(self, src: str, dst: str) -> PathResult:
        return self.net.send(src, dst)

    def state_entries(self) -> int:
        return sum(self.net.memory_entries_per_router().values())

    def check(self) -> None:
        self.net.check_ring()


class _InterAdapter:
    """Drives an :class:`repro.inter.network.InterDomainNetwork`."""

    kind = "inter"
    supports_departure = False

    def __init__(self, net):
        self.net = net

    def join_one(self) -> Optional[Tuple[str, int, Optional[float]]]:
        net = self.net
        host = net.next_planned_host()
        guard = 0
        while not net.as_is_up(host.attach_at) and guard < 64:
            host = net.next_planned_host()
            guard += 1
        if not net.as_is_up(host.attach_at):
            return None
        receipt = net.join_host(host)
        return receipt.host_name, receipt.messages, None

    def depart(self, host_name: str, mode: str) -> int:
        raise ScenarioError("interdomain hosts cannot depart")

    def send(self, src: str, dst: str) -> PathResult:
        return self.net.send(src, dst)

    def state_entries(self) -> int:
        return sum(self.net.state_entries_per_as().values())

    def check(self) -> None:
        self.net.check_rings()


def _build_network(scenario: Scenario):
    spec = scenario.network
    if spec.kind == "intra":
        from repro.intra.network import IntraDomainNetwork
        from repro.topology.isp import synthetic_isp
        topo = synthetic_isp(n_routers=spec.n_routers, seed=scenario.seed,
                             name=spec.name)
        kwargs = {}
        if spec.cache_entries is not None:
            kwargs["cache_entries"] = spec.cache_entries
        return IntraDomainNetwork(topo, seed=scenario.seed, **kwargs)
    from repro.inter.network import InterDomainNetwork
    from repro.topology.asgraph import synthetic_as_graph
    asg = synthetic_as_graph(n_ases=spec.n_ases, seed=scenario.seed)
    return InterDomainNetwork(asg, n_fingers=spec.n_fingers,
                              seed=scenario.seed,
                              cache_entries=spec.cache_entries or 0)


# ---------------------------------------------------------------------------
# Result.
# ---------------------------------------------------------------------------

@dataclass
class WorkloadResult:
    """Everything one run produced.

    ``samples``, ``summary``, ``totals``, and ``fault_log`` are pure
    functions of (scenario, seed) — the determinism contract.
    ``wall_seconds`` / ``events_per_sec`` are wall-clock throughput and
    vary run to run; they feed the benchmark sweep, never assertions.
    """

    scenario: Dict
    samples: List[Dict] = field(default_factory=list)
    summary: Dict = field(default_factory=dict)
    totals: Dict = field(default_factory=dict)
    fault_log: List[Dict] = field(default_factory=list)
    #: Structured invariant-probe violations (empty unless probes ran).
    violations: List[Dict] = field(default_factory=list)
    wall_seconds: float = 0.0
    events_per_sec: float = 0.0

    def deterministic_view(self) -> Dict:
        """The seed-reproducible portion, JSON-ready (for equality checks
        and for ``--json`` CLI output)."""
        return {
            "scenario": self.scenario,
            "samples": self.samples,
            "summary": self.summary,
            "totals": self.totals,
            "fault_log": self.fault_log,
            "violations": self.violations,
        }


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

class WorkloadDriver:
    """One scenario bound to one network on one event loop."""

    def __init__(self, scenario: Scenario, network=None, tracer=None,
                 probes: bool = False, metrics_out=None,
                 metrics_window: Optional[float] = None):
        scenario.validate()
        self.scenario = scenario
        self.net = network if network is not None else _build_network(scenario)
        kind = scenario.network.kind
        self.adapter = (_IntraAdapter(self.net) if kind == "intra"
                        else _InterAdapter(self.net))
        self.loop = EventLoop()
        self.fault_log: List[Dict] = []
        self.rngs = RngRegistry(scenario.seed)
        self._live: List[str] = []       # join-ordered live host names
        self._live_set = set()
        self._skipped_sends = 0
        self._failed_joins = 0
        self.metrics: Optional[MetricsRecorder] = None
        #: Streaming telemetry (``repro.obs.metrics``): when ``metrics_out``
        #: is a path or file object, the run emits one JSONL line of
        #: registry deltas per ``metrics_window`` of virtual time
        #: (default: the scenario's sample interval).  Deterministic —
        #: same seed, byte-identical stream.
        self.metrics_out = metrics_out
        self.metrics_window = metrics_window
        self.exporter = None
        #: Optional ``repro.obs`` wiring.  The tracer's clock is re-bound
        #: to this loop's virtual time so records replay byte-for-byte;
        #: probes tick on the sampling cadence and their violations land
        #: in the result's deterministic view.
        self.tracer = tracer
        self.probes = None
        if tracer is not None:
            tracer.clock = lambda: self.loop.now
            if tracer.loop_events:
                self.loop.on_event = tracer.on_loop_event
        if probes:
            from repro.obs.probes import ProbeSet
            self.probes = ProbeSet.for_network(self.net, tracer=tracer)

    # -- randomness ---------------------------------------------------------

    def rng(self, *scope):
        """The cached ``derive_rng`` stream for one consumer scope."""
        return self.rngs.derive("workload", *scope)

    # -- membership ---------------------------------------------------------

    def live_hosts(self) -> List[str]:
        """Join-ordered live hosts, pruned of crash/fault casualties."""
        hosts = self.net.hosts
        if len(self._live_set) != len(self._live) or any(
                name not in hosts for name in self._live):
            self._live = [name for name in self._live if name in hosts]
            self._live_set = set(self._live)
        return self._live

    def note_join(self, host_name: str) -> None:
        if host_name not in self._live_set:
            self._live.append(host_name)
            self._live_set.add(host_name)

    def note_departure(self, host_name: str) -> None:
        if host_name in self._live_set:
            self._live_set.discard(host_name)
            self._live.remove(host_name)
        if self.metrics is not None:
            self.metrics.record_departure()

    # -- event handlers -----------------------------------------------------

    def _arrival(self, phase: Phase, index: int, process: PoissonProcess,
                 lifetime) -> None:
        if self.loop.now >= phase.end:
            return
        joined = self.adapter.join_one()
        if joined is not None:
            name, messages, latency = joined
            self.note_join(name)
            self.metrics.record_join(messages, latency)
            if lifetime is not None and self.adapter.supports_departure:
                dt = lifetime.sample(self.rng("lifetime", index))
                mode = phase.churn.departure
                self.loop.schedule(dt, lambda: self._departure(name, mode))
        else:
            self._failed_joins += 1
        delay = process.next_arrival(self.rng("arrivals", index),
                                     self.loop.now)
        if self.loop.now + delay < phase.end:
            self.loop.schedule(delay,
                               lambda: self._arrival(phase, index, process,
                                                     lifetime))

    def _departure(self, host_name: str, mode: str) -> None:
        if host_name not in self.net.hosts:
            return  # already crashed or de-peered away
        messages = self.adapter.depart(host_name, mode)
        if host_name in self._live_set:
            self._live_set.discard(host_name)
            self._live.remove(host_name)
        self.metrics.record_departure(messages)

    def _packet(self, phase: Phase, index: int, process: PoissonProcess,
                popularity) -> None:
        if self.loop.now < phase.end:
            live = self.live_hosts()
            if len(live) >= 2:
                rng = self.rng("traffic", index)
                src = rng.choice(live)
                dst = popularity.pick(rng, live)
                for _ in range(8):
                    if dst != src:
                        break
                    dst = popularity.pick(rng, live)
                if dst != src:
                    self.metrics.record_packet(self.adapter.send(src, dst))
                else:
                    self._skipped_sends += 1
            else:
                self._skipped_sends += 1
            delay = process.next_arrival(self.rng("traffic-times", index),
                                         self.loop.now)
            if self.loop.now + delay < phase.end:
                self.loop.schedule(delay,
                                   lambda: self._packet(phase, index, process,
                                                        popularity))

    def _sample(self) -> None:
        self.metrics.sample(self.loop.now, len(self.live_hosts()),
                            pending_events=self.loop.pending)
        if self.probes is not None:
            self.probes.tick(self.loop.now)
        nxt = self.loop.now + self.scenario.sample_interval
        if nxt <= self.scenario.duration:
            self.loop.schedule_at(nxt, self._sample)

    # -- streaming metrics export -------------------------------------------

    def _exporter_counters(self) -> Dict[str, float]:
        """Cumulative counters the exporter diffs per window: the
        network's protocol message counters plus run totals.  All are
        functions of simulation state only (deterministic)."""
        out = {"messages." + name: value
               for name, value in self.net.stats.messages.items()}
        out["packets.sent"] = self.metrics.total_sent
        out["packets.delivered"] = self.metrics.total_delivered
        out["joins"] = self.metrics.total_joins
        out["departures"] = self.metrics.total_departures
        return out

    def _emit_metrics_window(self, interval: float) -> None:
        self.exporter.emit_window(
            self.loop.now, extra={"live_hosts": len(self.live_hosts())})
        nxt = self.loop.now + interval
        if nxt <= self.scenario.duration:
            self.loop.schedule_at(
                nxt, lambda: self._emit_metrics_window(interval))

    # -- setup & run --------------------------------------------------------

    def _schedule_phase(self, phase: Phase, index: int) -> None:
        # Bind loop-local objects as lambda defaults: the two branches
        # reuse names, and a late-binding closure would hand the arrival
        # chain the traffic process.
        if phase.churn is not None and phase.churn.arrival_rate > 0:
            arrivals = PoissonProcess(
                phase.churn.arrival_rate,
                modulation_from_spec(phase.churn.modulation))
            lifetime = lifetime_from_spec(phase.churn.lifetime)
            first = phase.start + arrivals.next_arrival(
                self.rng("arrivals", index), phase.start)
            if first < phase.end:
                self.loop.schedule_at(
                    first,
                    lambda p=arrivals, l=lifetime: self._arrival(
                        phase, index, p, l))
        if phase.traffic is not None and phase.traffic.rate > 0:
            packets = PoissonProcess(
                phase.traffic.rate,
                modulation_from_spec(phase.traffic.modulation))
            popularity = popularity_from_spec(phase.traffic.popularity)
            first = phase.start + packets.next_arrival(
                self.rng("traffic-times", index), phase.start)
            if first < phase.end:
                self.loop.schedule_at(
                    first,
                    lambda p=packets, pop=popularity: self._packet(
                        phase, index, p, pop))

    def _warmup(self) -> int:
        joined = 0
        for _ in range(self.scenario.warmup_hosts):
            result = self.adapter.join_one()
            if result is not None:
                self.note_join(result[0])
                joined += 1
        return joined

    def run(self) -> WorkloadResult:
        scenario = self.scenario
        started = time.perf_counter()

        warmed = self._warmup()
        # The recorder baselines its control-overhead window *after*
        # warmup so sample 1 reports churn-era overhead, not setup cost.
        self.metrics = MetricsRecorder(
            self.net.stats, self.adapter.state_entries)
        if self.metrics_out is not None:
            from repro.obs.metrics import MetricsExporter
            self.exporter = MetricsExporter(
                self.metrics.perf, self.metrics_out,
                counters_fn=self._exporter_counters,
                source=scenario.name)
            window = self.metrics_window or scenario.sample_interval
            self.loop.schedule_at(min(window, scenario.duration),
                                  lambda: self._emit_metrics_window(window))

        for index, phase in enumerate(scenario.phases):
            self._schedule_phase(phase, index)
        for spec in scenario.faults:
            injector = injector_from_spec(spec)
            self.loop.schedule_at(spec.at,
                                  lambda inj=injector: inj.fire(self))
        first_sample = min(scenario.sample_interval, scenario.duration)
        self.loop.schedule_at(first_sample, self._sample)

        self.loop.run(until=scenario.duration)
        if not self.metrics.samples or \
                self.metrics.samples[-1]["t"] < scenario.duration:
            self.metrics.sample(scenario.duration, len(self.live_hosts()),
                                pending_events=self.loop.pending)
        if self.exporter is not None:
            # Close the stream on a final window at the scenario horizon
            # so the tail of the run is never silently dropped.
            if self.exporter.last_t is None or \
                    self.exporter.last_t < scenario.duration:
                self.exporter.emit_window(
                    scenario.duration,
                    extra={"live_hosts": len(self.live_hosts())})
            self.exporter.close()

        wall = time.perf_counter() - started
        totals = {
            "warmup_hosts": warmed,
            "joins": self.metrics.total_joins,
            "departures": self.metrics.total_departures,
            "packets_sent": self.metrics.total_sent,
            "packets_delivered": self.metrics.total_delivered,
            "packets_skipped": self._skipped_sends,
            "failed_joins": self._failed_joins,
            "faults_fired": len(self.fault_log),
            "events_run": self.loop.events_run,
            "final_live_hosts": len(self.live_hosts()),
            "metrics_windows": (self.exporter.windows_emitted
                                if self.exporter is not None else 0),
        }
        return WorkloadResult(
            scenario=scenario.to_dict(),
            samples=list(self.metrics.samples),
            summary=self.metrics.summary(),
            totals=totals,
            fault_log=list(self.fault_log),
            violations=(self.probes.summary() if self.probes is not None
                        else []),
            wall_seconds=round(wall, 4),
            events_per_sec=round(self.loop.events_run / wall, 1) if wall > 0
            else 0.0,
        )


def run_scenario(scenario: Scenario, network=None, tracer=None,
                 probes: bool = False, metrics_out=None,
                 metrics_window: Optional[float] = None) -> WorkloadResult:
    """Convenience one-shot: build a driver, run it, return the result."""
    return WorkloadDriver(scenario, network=network, tracer=tracer,
                          probes=probes, metrics_out=metrics_out,
                          metrics_window=metrics_window).run()
