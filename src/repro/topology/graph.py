"""Router-level topology model.

A :class:`RouterTopology` is an undirected graph of routers with per-link
latencies and an optional PoP (Point of Presence) partition.  It is purely
static: the *live* view (failures, reachability) belongs to the link-state
substrate (:mod:`repro.linkstate`), which wraps one of these.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

import networkx as nx


class RouterTopology:
    """An ISP's physical router graph.

    Nodes are router names; edges carry a ``latency_ms`` attribute.  Each
    router may be tagged with a ``pop`` (used by the Fig 7 partition
    experiments, which disconnect whole PoPs) and a ``role`` of either
    ``"backbone"`` or ``"edge"`` (hosts attach at edge routers).
    """

    def __init__(self, name: str = "isp"):
        self.name = name
        self.graph = nx.Graph()
        self.pops: Dict[Hashable, List[str]] = {}

    # -- construction -------------------------------------------------------

    def add_router(self, router: str, pop: Hashable = None,
                   role: str = "edge") -> None:
        if router in self.graph:
            raise ValueError("duplicate router {!r}".format(router))
        self.graph.add_node(router, pop=pop, role=role)
        if pop is not None:
            self.pops.setdefault(pop, []).append(router)

    def add_link(self, a: str, b: str, latency_ms: float = 1.0) -> None:
        if a == b:
            raise ValueError("self-loop link")
        for router in (a, b):
            if router not in self.graph:
                raise KeyError("unknown router {!r}".format(router))
        self.graph.add_edge(a, b, latency_ms=latency_ms)

    # -- queries ------------------------------------------------------------

    @property
    def routers(self) -> List[str]:
        return list(self.graph.nodes)

    @property
    def n_routers(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_links(self) -> int:
        return self.graph.number_of_edges()

    def edge_routers(self) -> List[str]:
        return [r for r, data in self.graph.nodes(data=True)
                if data.get("role") == "edge"]

    def backbone_routers(self) -> List[str]:
        return [r for r, data in self.graph.nodes(data=True)
                if data.get("role") == "backbone"]

    def pop_of(self, router: str) -> Hashable:
        return self.graph.nodes[router].get("pop")

    def routers_in_pop(self, pop: Hashable) -> List[str]:
        return list(self.pops.get(pop, []))

    def neighbors(self, router: str) -> List[str]:
        return list(self.graph.neighbors(router))

    def latency(self, a: str, b: str) -> float:
        return self.graph.edges[a, b]["latency_ms"]

    def is_connected(self) -> bool:
        return self.n_routers > 0 and nx.is_connected(self.graph)

    def diameter(self) -> int:
        """Hop-count diameter (the paper relates join cost to this)."""
        return nx.diameter(self.graph)

    def links(self) -> Iterable[Tuple[str, str]]:
        return self.graph.edges()

    def copy(self) -> "RouterTopology":
        clone = RouterTopology(self.name)
        clone.graph = self.graph.copy()
        clone.pops = {pop: list(routers) for pop, routers in self.pops.items()}
        return clone

    def validate(self) -> None:
        """Raise if the topology violates basic invariants."""
        if self.n_routers == 0:
            raise ValueError("empty topology")
        if not self.is_connected():
            raise ValueError("topology is not connected")
        for _, _, data in self.graph.edges(data=True):
            if data["latency_ms"] <= 0:
                raise ValueError("non-positive link latency")

    def __repr__(self) -> str:
        return "RouterTopology({!r}, routers={}, links={}, pops={})".format(
            self.name, self.n_routers, self.n_links, len(self.pops))
