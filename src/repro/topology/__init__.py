"""Topology substrates.

* :mod:`repro.topology.graph` — the router-level topology model shared by
  the link-state substrate and intradomain ROFL.
* :mod:`repro.topology.isp` — synthetic Rocketfuel-like ISP generator
  (PoP-structured, matched to the paper's four ISP profiles).
* :mod:`repro.topology.asgraph` — synthetic Internet AS graph annotated
  with customer-provider / peering / backup relationships (Routeviews +
  relationship-inference substitute).
* :mod:`repro.topology.hierarchy` — up-hierarchy (G_X) and down-hierarchy
  computation, pruning, and subtree membership.
* :mod:`repro.topology.hosts` — Zipf host populations (skitter substitute).
"""

from repro.topology.graph import RouterTopology
from repro.topology.isp import synthetic_isp, ROCKETFUEL_PROFILES
from repro.topology.asgraph import ASGraph, synthetic_as_graph, Relationship
from repro.topology.hierarchy import up_hierarchy, down_hierarchy, subtree_hosts
from repro.topology.hosts import HostPlan

__all__ = [
    "RouterTopology",
    "synthetic_isp",
    "ROCKETFUEL_PROFILES",
    "ASGraph",
    "synthetic_as_graph",
    "Relationship",
    "up_hierarchy",
    "down_hierarchy",
    "subtree_hosts",
    "HostPlan",
]
