"""Host populations (the CAIDA-skitter substitute, DESIGN.md §3.2).

The paper estimates hosts per AS/ISP from skitter traces normalised to a
600 M-host Internet; we reproduce the *shape* (a highly uneven, Zipf-like
spread) with a configurable total, and provide deterministic host
generation: each planned host has a stable seed, so identical experiment
seeds give identical populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, List, Optional

from repro.idspace.crypto import KeyPair, SignatureAuthority
from repro.idspace.identifier import FlatId
from repro.util.rng import RngRegistry, derive_rng, sample_zipf_counts

#: The Internet size the paper normalises to (Section 6.1).
PAPER_INTERNET_HOSTS = 600_000_000


@dataclass(frozen=True)
class PlannedHost:
    """One host the experiment will join: where it attaches and its keys."""

    name: str
    attach_at: Hashable          # router (intradomain) or AS (interdomain)
    key_pair: KeyPair
    ephemeral: bool = False

    @property
    def flat_id(self) -> FlatId:
        return self.key_pair.flat_id


class HostTable(dict):
    """A ``name → virtual node`` dict with an incrementally maintained
    insertion-order name list.

    ``names`` is kept exactly equal to ``list(table)`` at all times, so
    hot paths that sample random live hosts (``random_host_pair``, every
    open-loop traffic generator) can draw from a ready list instead of
    materialising all N keys per packet — the O(N)-per-send term behind
    the 10k-host interdomain throughput cliff.  Keeping the *same* order
    as ``list(dict)`` (not swap-pop) preserves byte-for-byte same-seed
    replay: identical population, identical ``rng.sample`` draws.
    Removal is O(N) but only churn/failure paths remove hosts.
    """

    __slots__ = ("names",)

    def __init__(self) -> None:
        super().__init__()
        self.names: List[str] = []

    def __setitem__(self, key, value) -> None:
        if key not in self:
            self.names.append(key)
        super().__setitem__(key, value)

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self.names.remove(key)

    def pop(self, key, *default):
        present = key in self
        value = super().pop(key, *default)
        if present:
            self.names.remove(key)
        return value

    def popitem(self):
        key, value = super().popitem()
        self.names.remove(key)
        return key, value

    def clear(self) -> None:
        super().clear()
        self.names.clear()

    def setdefault(self, key, default=None):
        if key not in self:
            self[key] = default
            return default
        return self[key]

    def update(self, *args, **kwargs) -> None:
        for mapping in args:
            items = mapping.items() if hasattr(mapping, "items") else mapping
            for key, value in items:
                self[key] = value
        for key, value in kwargs.items():
            self[key] = value

    def __reduce__(self):
        # The default dict-subclass reduction replays items through
        # ``__setitem__`` *before* ``__setstate__`` assigns the ``names``
        # slot, which crashes on the ``self.names.append`` above.  Rebuild
        # from the item list instead; re-inserting in order reproduces
        # ``names`` exactly (it is always equal to ``list(self)``).
        return (_host_table_from_items, (list(self.items()),))


def _host_table_from_items(items) -> "HostTable":
    table = HostTable()
    for key, value in items:
        table[key] = value
    return table


class HostPlan:
    """Deterministic host population for one experiment.

    ``attachment_points`` is the list of places hosts can live (edge
    routers for intradomain, host-bearing ASes for interdomain) with an
    optional weight per point (e.g. the AS's skitter-style host count).
    """

    def __init__(
        self,
        attachment_points: List[Hashable],
        seed: int = 0,
        weights: Optional[List[float]] = None,
        ephemeral_fraction: float = 0.0,
        authority: Optional[SignatureAuthority] = None,
        registry: Optional[RngRegistry] = None,
    ):
        if not attachment_points:
            raise ValueError("no attachment points")
        if weights is not None and len(weights) != len(attachment_points):
            raise ValueError("weights length mismatch")
        if not 0.0 <= ephemeral_fraction <= 1.0:
            raise ValueError("ephemeral_fraction out of range")
        if registry is not None and registry.seed != seed:
            raise ValueError("registry seed {!r} != plan seed {!r}".format(
                registry.seed, seed))
        self.attachment_points = list(attachment_points)
        self.weights = list(weights) if weights is not None else None
        self.seed = seed
        self.ephemeral_fraction = ephemeral_fraction
        self.authority = authority or SignatureAuthority()
        # Same stream either way ("hostplan" scope under ``seed``); a
        # caller-supplied registry just makes the stream enumerable for
        # snapshot capture/restore.
        self._rng = (registry.derive("hostplan") if registry is not None
                     else derive_rng(seed, "hostplan"))
        self._made = 0

    def next_host(self) -> PlannedHost:
        """Mint the next host deterministically."""
        index = self._made
        self._made += 1
        if self.weights is not None:
            attach = self._rng.choices(self.attachment_points,
                                       weights=self.weights, k=1)[0]
        else:
            attach = self._rng.choice(self.attachment_points)
        name = "h{}".format(index)
        key = KeyPair.generate(
            seed="{}:{}".format(self.seed, name).encode("utf-8"),
            authority=self.authority)
        ephemeral = self._rng.random() < self.ephemeral_fraction
        return PlannedHost(name=name, attach_at=attach, key_pair=key,
                           ephemeral=ephemeral)

    def take(self, n: int) -> List[PlannedHost]:
        return [self.next_host() for _ in range(n)]

    def __iter__(self) -> Iterator[PlannedHost]:
        while True:
            yield self.next_host()


def scale_down(paper_count: int, paper_total: int = PAPER_INTERNET_HOSTS,
               sim_total: int = 10_000) -> int:
    """Scale a paper-reported host count to simulation size, keeping the
    per-AS/ISP proportions (at least 1 host for any nonzero count)."""
    if paper_count <= 0:
        return 0
    return max(1, round(paper_count * sim_total / paper_total))


def zipf_host_counts(n_bins: int, total: int, seed: int = 0,
                     exponent: float = 1.0) -> List[int]:
    """Zipf-distributed host counts for ``n_bins`` attachment points."""
    rng = derive_rng(seed, "zipf-hosts", n_bins, total)
    return sample_zipf_counts(rng, n_bins, total, exponent)
