"""Up-/down-hierarchy computation over the AS graph (Sections 2.3, 4.1).

Interdomain ROFL is built on each AS's view of its *up-hierarchy* G_X:
"all ASes 'above' X in the AS hierarchy (X's providers, its providers'
providers, and so on)".  Rings merge bottom-up along this hierarchy, the
isolation property is phrased in terms of subtrees, and bloom filters
summarise the hosts in a *down-hierarchy* (all transitive customers).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

import networkx as nx

from repro.topology.asgraph import ASGraph


def up_hierarchy(asg: ASGraph, asn: Hashable,
                 include_backup: bool = False,
                 prune: Optional[Set[Hashable]] = None) -> nx.DiGraph:
    """X's up-hierarchy graph G_X as a customer→provider DAG.

    Contains ``asn`` itself plus every AS reachable by repeatedly following
    (primary, and optionally backup) provider links.  ``prune`` removes the
    given ASes — the paper allows X to "prune G_X to reduce its join and
    maintenance overhead".
    """
    dag = nx.DiGraph()
    dag.add_node(asn)
    frontier = [asn]
    seen = {asn}
    while frontier:
        current = frontier.pop()
        uplinks = list(asg.providers(current))
        if include_backup:
            uplinks += asg.backup_providers(current)
        for provider in uplinks:
            if prune and provider in prune:
                continue
            dag.add_edge(current, provider)
            if provider not in seen:
                seen.add(provider)
                frontier.append(provider)
    return dag


def up_hierarchy_levels(asg: ASGraph, asn: Hashable,
                        include_backup: bool = False) -> List[Set[Hashable]]:
    """Levels of G_X by provider-hop distance: [ {X}, providers, … ]."""
    dag = up_hierarchy(asg, asn, include_backup=include_backup)
    levels: List[Set[Hashable]] = []
    current = {asn}
    seen: Set[Hashable] = set()
    while current:
        levels.append(current)
        seen |= current
        nxt: Set[Hashable] = set()
        for node in current:
            nxt |= set(dag.successors(node)) - seen
        current = nxt
    return levels


def down_hierarchy(asg: ASGraph, asn: Hashable,
                   _cache: Optional[Dict] = None,
                   include_backup: bool = False) -> Set[Hashable]:
    """The subtree rooted at ``asn``: itself plus all transitive customers.

    Backup links are excluded by default, mirroring the join side ("backup
    relationships are supported by directing join requests only over
    non-backup links"): an ID below a backup-only customer does not merge
    into this subtree's rings, so it must not count as subtree membership
    either.
    """
    if _cache is not None and asn in _cache:
        return _cache[asn]
    members = {asn}
    frontier = [asn]
    while frontier:
        current = frontier.pop()
        for customer in asg.customers(current, include_backup=include_backup):
            if customer not in members:
                members.add(customer)
                frontier.append(customer)
    if _cache is not None:
        _cache[asn] = members
    return members


class HierarchyIndex:
    """Memoised hierarchy queries for one AS graph.

    Precomputes up- and down-hierarchies for every AS so the hot loops of
    joining and routing (isolation checks, candidate pruning) are O(1)
    set operations.
    """

    def __init__(self, asg: ASGraph, include_backup: bool = False):
        self.asg = asg
        self.include_backup = include_backup
        self._down: Dict[Hashable, Set[Hashable]] = {}
        self._up: Dict[Hashable, List[Hashable]] = {}
        for asn in asg.ases():
            self._down[asn] = down_hierarchy(asg, asn)
        for asn in asg.ases():
            self._up[asn] = self._compute_up_chain(asn)

    def _compute_up_chain(self, asn: Hashable) -> List[Hashable]:
        """ASes of G_X ordered by provider-hop level (BFS order)."""
        order: List[Hashable] = []
        for level in up_hierarchy_levels(self.asg, asn,
                                         include_backup=self.include_backup):
            order.extend(sorted(level, key=str))
        return order

    def subtree(self, asn: Hashable) -> Set[Hashable]:
        return self._down[asn]

    def up_chain(self, asn: Hashable) -> List[Hashable]:
        """``asn`` first, then its providers level by level."""
        return list(self._up[asn])

    def in_subtree(self, member: Hashable, root: Hashable) -> bool:
        return member in self._down[root]

    def common_ancestors(self, a: Hashable, b: Hashable) -> Set[Hashable]:
        """ASes whose subtree contains both ``a`` and ``b``."""
        return set(self._up[a]) & set(self._up[b])

    def earliest_common_ancestors(self, a: Hashable, b: Hashable) -> Set[Hashable]:
        """Minimal common ancestors (no common ancestor strictly below).

        The isolation property says the data path "is guaranteed to stay
        within the subtree rooted at the earliest common ancestor" of the
        source and destination domains.
        """
        common = self.common_ancestors(a, b)
        earliest = set()
        for cand in common:
            below = self._down[cand] & common
            if below == {cand}:
                earliest.add(cand)
        return earliest

    def isolation_region(self, a: Hashable, b: Hashable) -> Set[Hashable]:
        """The union of subtrees of the earliest common ancestors: the set
        of ASes a policy-respecting ROFL path from ``a`` to ``b`` may touch.
        """
        region: Set[Hashable] = set()
        for anchor in self.earliest_common_ancestors(a, b):
            region |= self._down[anchor]
        return region


def subtree_hosts(asg: ASGraph, asn: Hashable) -> int:
    """Total endpoint hosts below ``asn`` (used to size bloom filters)."""
    return sum(asg.hosts(member) for member in down_hierarchy(asg, asn))
