"""Synthetic AS-level Internet graphs with policy relationships.

The paper's interdomain evaluation uses "the complete inter-AS topology
graph sampled from Routeviews" with customer/provider relationships
inferred by Subramanian et al.'s tool, and "leverages the fact that most
current policies can be modeled as arising out of a simple hierarchical AS
graph" (Section 2.3).  Offline, we generate tiered power-law AS graphs
with *explicit* relationship annotations:

* **customer-provider** — the customer pays the provider for transit;
* **peer** — settlement-free, traffic between the two ASes' customers only;
* **backup** — a provider link used only when the primary fails
  (Section 4.2: "We treat multi-homing links as backup links" option).

Multihoming arises naturally: any AS with more than one provider is
multihomed.  Host counts are assigned by :class:`repro.topology.hosts`.
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import networkx as nx

from repro.util.rng import derive_rng, sample_zipf_counts


class Relationship(enum.Enum):
    """Business relationship annotating one AS-level adjacency."""

    CUSTOMER_PROVIDER = "cp"
    PEER = "peer"
    BACKUP = "backup"


class ASGraph:
    """An annotated AS-level topology.

    Internally an undirected multigraph-free graph whose edges carry a
    :class:`Relationship` plus, for directional relationships, which
    endpoint is the provider.
    """

    def __init__(self) -> None:
        self.graph = nx.Graph()
        # Relationship queries are on the hot path of every policy-path
        # BFS and finger selection; the graph is static once built, so
        # neighbour lists are memoised (invalidated by the mutators).
        self._rel_cache: Dict[tuple, tuple] = {}

    def __getstate__(self):
        """Serialize without the neighbour-list memo (pure derived state;
        rebuild-on-load keeps snapshots lean and the canonical state hash
        independent of query history)."""
        state = self.__dict__.copy()
        state["_rel_cache"] = {}
        return state

    # -- construction -------------------------------------------------------

    def add_as(self, asn: Hashable, tier: int = 3, hosts: int = 0) -> None:
        if asn in self.graph:
            raise ValueError("duplicate AS {!r}".format(asn))
        self.graph.add_node(asn, tier=tier, hosts=hosts)
        self._rel_cache.clear()

    def add_customer_provider(self, customer: Hashable, provider: Hashable,
                              backup: bool = False,
                              latency: float = 1.0) -> None:
        """Add a transit link: ``customer`` buys transit from ``provider``."""
        self._check_nodes(customer, provider)
        self._check_latency(latency)
        rel = Relationship.BACKUP if backup else Relationship.CUSTOMER_PROVIDER
        self.graph.add_edge(customer, provider, rel=rel, provider=provider,
                            latency=latency)
        self._rel_cache.clear()

    def add_peering(self, a: Hashable, b: Hashable,
                    latency: float = 1.0) -> None:
        self._check_nodes(a, b)
        self._check_latency(latency)
        self.graph.add_edge(a, b, rel=Relationship.PEER, provider=None,
                            latency=latency)
        self._rel_cache.clear()

    @staticmethod
    def _check_latency(latency: float) -> None:
        if latency <= 0:
            raise ValueError(
                "link latency must be positive (it bounds the sharded "
                "simulator's conservative-sync lookahead), got "
                "{!r}".format(latency))

    def _check_nodes(self, *asns: Hashable) -> None:
        for asn in asns:
            if asn not in self.graph:
                raise KeyError("unknown AS {!r}".format(asn))
        if len(set(asns)) != len(asns):
            raise ValueError("self-relationship")

    def set_hosts(self, asn: Hashable, hosts: int) -> None:
        self.graph.nodes[asn]["hosts"] = hosts

    # -- relationship queries -------------------------------------------------

    def ases(self) -> List[Hashable]:
        return list(self.graph.nodes)

    @property
    def n_ases(self) -> int:
        return self.graph.number_of_nodes()

    def tier(self, asn: Hashable) -> int:
        return self.graph.nodes[asn]["tier"]

    def hosts(self, asn: Hashable) -> int:
        return self.graph.nodes[asn].get("hosts", 0)

    def _related(self, asn: Hashable, rel: Relationship,
                 as_provider: Optional[bool] = None) -> List[Hashable]:
        key = (asn, rel, as_provider)
        cached = self._rel_cache.get(key)
        if cached is None:
            out = []
            adj = self.graph.adj[asn]
            for nbr, data in adj.items():
                if data["rel"] is not rel:
                    continue
                if as_provider is True and data["provider"] != nbr:
                    continue
                if as_provider is False and data["provider"] != asn:
                    continue
                out.append(nbr)
            cached = self._rel_cache[key] = tuple(out)
        # Fresh list per call: callers are free to mutate their copy.
        return list(cached)

    def providers(self, asn: Hashable) -> List[Hashable]:
        """Primary (non-backup) providers of ``asn``."""
        return self._related(asn, Relationship.CUSTOMER_PROVIDER, as_provider=True)

    def backup_providers(self, asn: Hashable) -> List[Hashable]:
        return self._related(asn, Relationship.BACKUP, as_provider=True)

    def customers(self, asn: Hashable,
                  include_backup: bool = True) -> List[Hashable]:
        out = self._related(asn, Relationship.CUSTOMER_PROVIDER,
                            as_provider=False)
        if include_backup:
            out += self._related(asn, Relationship.BACKUP, as_provider=False)
        return out

    def peers(self, asn: Hashable) -> List[Hashable]:
        return self._related(asn, Relationship.PEER)

    def relationship(self, a: Hashable, b: Hashable) -> Optional[Relationship]:
        if not self.graph.has_edge(a, b):
            return None
        return self.graph.edges[a, b]["rel"]

    def is_provider_of(self, provider: Hashable, customer: Hashable) -> bool:
        if not self.graph.has_edge(provider, customer):
            return False
        data = self.graph.edges[provider, customer]
        return (data["rel"] in (Relationship.CUSTOMER_PROVIDER, Relationship.BACKUP)
                and data["provider"] == provider)

    def stubs(self) -> List[Hashable]:
        """ASes with no customers — the unstable edge of the Internet."""
        return [asn for asn in self.graph if not self.customers(asn)]

    def tier1(self) -> List[Hashable]:
        """ASes with no providers at all (primary or backup)."""
        return [asn for asn in self.graph
                if not self.providers(asn) and not self.backup_providers(asn)]

    def links(self) -> Iterable[Tuple[Hashable, Hashable, Relationship]]:
        for a, b, data in self.graph.edges(data=True):
            yield a, b, data["rel"]

    def link_latency(self, a: Hashable, b: Hashable) -> float:
        """Propagation latency of one AS link, in virtual time units.

        Graphs built before latencies existed (older snapshots) default
        every link to 1.0 — one virtual time unit per AS hop, matching
        how the message-charging simulation counts hops.
        """
        return self.graph.edges[a, b].get("latency", 1.0)

    def min_link_latency(self, edges: Optional[Iterable[Tuple[Hashable,
                                                              Hashable]]]
                         = None) -> float:
        """The smallest link latency over ``edges`` (default: all links).

        This is the conservative-synchronization *lookahead*: no message
        emitted at virtual time ``t`` can influence another AS before
        ``t + lookahead``, so shards may run ``lookahead`` of virtual
        time without hearing from each other.  Returns 1.0 for an edge
        set that is empty (a single-shard partition has no ghost edges).
        """
        if edges is None:
            edges = self.graph.edges
        latencies = [self.link_latency(a, b) for a, b in edges]
        return min(latencies) if latencies else 1.0

    def multihomed(self) -> List[Hashable]:
        return [asn for asn in self.graph
                if len(self.providers(asn)) + len(self.backup_providers(asn)) > 1]

    def validate(self) -> None:
        """Check the annotation invariants the routing layer relies on."""
        if self.n_ases == 0:
            raise ValueError("empty AS graph")
        if not nx.is_connected(self.graph):
            raise ValueError("AS graph is not connected")
        # The provider relation must be acyclic (it is a hierarchy).
        dag = nx.DiGraph()
        dag.add_nodes_from(self.graph.nodes)
        for a, b, data in self.graph.edges(data=True):
            if data["rel"] in (Relationship.CUSTOMER_PROVIDER, Relationship.BACKUP):
                customer = a if data["provider"] == b else b
                dag.add_edge(customer, data["provider"])
        if not nx.is_directed_acyclic_graph(dag):
            raise ValueError("customer-provider relation contains a cycle")
        # Every non-tier-1 AS must reach some tier-1 via provider links.
        tier1 = set(self.tier1())
        if not tier1:
            raise ValueError("no tier-1 ASes")

    def __repr__(self) -> str:
        return "ASGraph(ases={}, links={})".format(
            self.n_ases, self.graph.number_of_edges())


def synthetic_as_graph(
    n_ases: int = 100,
    seed: int = 0,
    tier1_count: Optional[int] = None,
    tier2_fraction: float = 0.22,
    multihome_prob: float = 0.35,
    second_provider_backup_prob: float = 0.3,
    tier2_peering_prob: float = 0.15,
    total_hosts: int = 100_000,
    zipf_exponent: float = 1.0,
) -> ASGraph:
    """Generate a tiered Internet-like AS graph.

    Structure: a tier-1 clique (full peering mesh), a tier-2 transit layer
    buying from tier-1 (peering among themselves with
    ``tier2_peering_prob``), and a stub layer buying from tier-2/tier-1.
    ``multihome_prob`` of non-tier-1 ASes take a second provider; a
    fraction of those second links are *backup* relationships.  Host
    counts follow a Zipf law over stubs and tier-2 ASes (DESIGN.md §3.2).
    """
    if n_ases < 4:
        raise ValueError("need at least 4 ASes")
    rng = derive_rng(seed, "asgraph", n_ases)
    asg = ASGraph()

    if tier1_count is None:
        tier1_count = max(3, n_ases // 25)
    n_tier2 = max(2, int(n_ases * tier2_fraction))
    n_stub = n_ases - tier1_count - n_tier2
    if n_stub < 1:
        raise ValueError("n_ases too small for the requested tier fractions")

    tier1 = ["T1-{}".format(i) for i in range(tier1_count)]
    tier2 = ["T2-{}".format(i) for i in range(n_tier2)]
    stubs = ["S-{}".format(i) for i in range(n_stub)]

    for asn in tier1:
        asg.add_as(asn, tier=1)
    for asn in tier2:
        asg.add_as(asn, tier=2)
    for asn in stubs:
        asg.add_as(asn, tier=3)

    # Tier-1 full peering mesh.
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            asg.add_peering(a, b)

    # Tier-2 buy transit from tier-1 (preferentially from low-index T1s,
    # mimicking the uneven size of real tier-1s).
    t1_weights = [1.0 / (i + 1) for i in range(tier1_count)]
    for asn in tier2:
        _attach_providers(asg, rng, asn, tier1, t1_weights,
                          multihome_prob, second_provider_backup_prob)

    # Stubs buy transit mostly from tier-2, occasionally directly tier-1.
    t2_weights = [1.0 / (i + 1) for i in range(n_tier2)]
    for asn in stubs:
        if rng.random() < 0.1:
            _attach_providers(asg, rng, asn, tier1, t1_weights,
                              multihome_prob, second_provider_backup_prob)
        else:
            _attach_providers(asg, rng, asn, tier2, t2_weights,
                              multihome_prob, second_provider_backup_prob)

    # Lateral tier-2 peering.
    for i, a in enumerate(tier2):
        for b in tier2[i + 1:]:
            if rng.random() < tier2_peering_prob:
                asg.add_peering(a, b)

    # Hosts: Zipf over stubs + tier-2 (transit cores host few endpoints).
    bearers = stubs + tier2
    counts = sample_zipf_counts(rng, len(bearers), total_hosts, zipf_exponent)
    for asn, count in zip(bearers, counts):
        asg.set_hosts(asn, count)

    asg.validate()
    return asg


def _attach_providers(asg: ASGraph, rng, asn, candidates, weights,
                      multihome_prob: float, backup_prob: float) -> None:
    primary = rng.choices(candidates, weights=weights, k=1)[0]
    asg.add_customer_provider(asn, primary)
    if rng.random() < multihome_prob and len(candidates) > 1:
        second = primary
        while second == primary:
            second = rng.choices(candidates, weights=weights, k=1)[0]
        asg.add_customer_provider(asn, second,
                                  backup=rng.random() < backup_prob)


def as_router_topology(asg: ASGraph, name: str = "as-graph"):
    """Flatten an AS graph into a :class:`RouterTopology` of one router
    per AS, so router-level protocols (the compact-routing baseline, the
    OSPF load series) can run over the interdomain topology and report
    AS-hop metrics directly comparable to ROFL's interdomain stretch
    denominators.

    Every AS becomes an edge-role router named ``str(asn)``; links keep
    their AS-level latencies (relationship annotations carry no meaning
    for shortest-path protocols and are dropped).
    """
    from repro.topology.graph import RouterTopology

    topo = RouterTopology(name)
    for asn in sorted(asg.ases(), key=repr):
        topo.add_router(str(asn), role="edge")
    for a, b, _rel in asg.links():
        topo.add_link(str(a), str(b), latency_ms=asg.link_latency(a, b))
    topo.validate()
    return topo
