"""Synthetic Rocketfuel-like ISP topologies.

The paper's intradomain experiments run over Rocketfuel maps of four ISPs:
AS 1221 (318 routers, 2.6 M hosts), AS 1239 (604, 10 M), AS 3257
(240, 0.5 M) and AS 3967 (201, 2.1 M).  Rocketfuel data is not available
offline, so we generate topologies with the structure Rocketfuel actually
observed (see DESIGN.md §3.1): routers are grouped into PoPs; each PoP is
a small dense cluster with one or two backbone routers; backbone routers
form the inter-PoP core (a connected, preferential-attachment mesh).  The
experiments exercise diameter, PoP granularity and path diversity, all of
which this shape reproduces.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.topology.graph import RouterTopology
from repro.util.rng import derive_rng

#: The four ISP profiles the paper evaluates on (Section 6.1).
ROCKETFUEL_PROFILES: Dict[str, Dict] = {
    "AS1221": {"routers": 318, "hosts": 2_600_000},
    "AS1239": {"routers": 604, "hosts": 10_000_000},
    "AS3257": {"routers": 240, "hosts": 500_000},
    "AS3967": {"routers": 201, "hosts": 2_100_000},
}

#: Modelled TCAM budget for intradomain forwarding state (Section 6.1):
#: "Transit routers are presumed to have 9Mbits of fast memory".
TCAM_BITS = 9 * 1024 * 1024
ID_BITS = 128
#: Entries that budget holds at 128 bits/entry — the paper's "roughly
#: 70,000 entries (corresponding to a 9Mbit cache of 128-bit IDs)".
TCAM_ENTRIES = TCAM_BITS // ID_BITS


def synthetic_isp(
    n_routers: int = 100,
    seed: int = 0,
    name: Optional[str] = None,
    pop_size: int = 8,
    extra_backbone_links: float = 0.6,
    intra_pop_latency_ms: float = 0.3,
    backbone_latency_ms: float = 4.0,
) -> RouterTopology:
    """Generate a PoP-structured ISP router graph.

    ``pop_size`` routers per PoP on average; each PoP elects
    ``max(1, pop_size // 4)`` backbone routers which join the core mesh.
    ``extra_backbone_links`` controls redundancy beyond the spanning tree
    (as a fraction of the number of PoPs), giving the path diversity real
    ISP cores have.
    """
    if n_routers < 2:
        raise ValueError("need at least 2 routers")
    if pop_size < 2:
        raise ValueError("pop_size must be >= 2")
    rng = derive_rng(seed, "isp", name or "anon", n_routers)
    topo = RouterTopology(name or "isp-{}r".format(n_routers))

    n_pops = max(2, round(n_routers / pop_size))
    # Spread routers over PoPs as evenly as possible.
    base, remainder = divmod(n_routers, n_pops)
    pop_sizes = [base + (1 if i < remainder else 0) for i in range(n_pops)]

    backbone_by_pop: Dict[int, list] = {}
    router_index = 0
    for pop in range(n_pops):
        members = []
        n_backbone = max(1, pop_sizes[pop] // 4)
        for i in range(pop_sizes[pop]):
            router = "r{}".format(router_index)
            router_index += 1
            role = "backbone" if i < n_backbone else "edge"
            topo.add_router(router, pop=pop, role=role)
            members.append(router)
        backbone_by_pop[pop] = members[:n_backbone]
        _wire_pop(topo, members, rng, intra_pop_latency_ms)

    _wire_backbone(topo, backbone_by_pop, rng, backbone_latency_ms,
                   extra_backbone_links)
    topo.validate()
    return topo


def _wire_pop(topo: RouterTopology, members: list, rng,
              latency_ms: float) -> None:
    """Wire one PoP: a ring plus a chord, dense enough to survive one
    router loss, sparse enough to stay realistic."""
    n = len(members)
    if n == 1:
        return
    for i in range(n):
        a, b = members[i], members[(i + 1) % n]
        if not topo.graph.has_edge(a, b) and a != b:
            topo.add_link(a, b, latency_ms=latency_ms)
    # One random chord for redundancy in PoPs of 4+.
    if n >= 4:
        a, b = rng.sample(members, 2)
        if not topo.graph.has_edge(a, b):
            topo.add_link(a, b, latency_ms=latency_ms)


def _wire_backbone(topo: RouterTopology, backbone_by_pop: Dict[int, list],
                   rng, latency_ms: float, extra_fraction: float) -> None:
    """Connect PoP backbones: random spanning tree + preferential extras."""
    pops = sorted(backbone_by_pop)
    attached = [pops[0]]
    degree = {pop: 1 for pop in pops}  # +1 smoothing for preferential pick
    for pop in pops[1:]:
        # Preferential attachment: PoPs with more links attract more.
        weights = [degree[p] for p in attached]
        target = rng.choices(attached, weights=weights, k=1)[0]
        _link_pops(topo, backbone_by_pop, pop, target, rng, latency_ms)
        degree[pop] += 1
        degree[target] += 1
        attached.append(pop)
    n_extra = int(math.ceil(extra_fraction * len(pops)))
    for _ in range(n_extra):
        a, b = rng.sample(pops, 2)
        _link_pops(topo, backbone_by_pop, a, b, rng, latency_ms)


def _link_pops(topo: RouterTopology, backbone_by_pop: Dict[int, list],
               pop_a: int, pop_b: int, rng, latency_ms: float) -> None:
    router_a = rng.choice(backbone_by_pop[pop_a])
    router_b = rng.choice(backbone_by_pop[pop_b])
    if router_a != router_b and not topo.graph.has_edge(router_a, router_b):
        # Jitter backbone latency ±50% so paths are not all equal cost.
        jitter = latency_ms * rng.uniform(0.5, 1.5)
        topo.add_link(router_a, router_b, latency_ms=jitter)


def rocketfuel_like(profile: str, seed: int = 0, **overrides) -> RouterTopology:
    """Build the synthetic stand-in for one of the paper's four ISPs."""
    if profile not in ROCKETFUEL_PROFILES:
        raise KeyError("unknown profile {!r}; choose from {}".format(
            profile, sorted(ROCKETFUEL_PROFILES)))
    params = ROCKETFUEL_PROFILES[profile]
    return synthetic_isp(n_routers=params["routers"], seed=seed,
                         name=profile, **overrides)
