"""The per-router pointer cache (paper Sections 2.2, 3.3, 6.2).

"Whenever a source route is established, the routers along the path can
cache the route … The pointer-cache of routers is limited in size, and
precedence is given to pointers [from resident IDs]."  Caches are sized in
*entries*; the paper's hardware framing is 9 Mbit of TCAM ≈ 70 000 entries
of 128-bit IDs (see :data:`repro.topology.isp.TCAM_ENTRIES`).

Eviction is LRU over cached pointers only — resident-ID state never lives
here, so the paper's precedence rule holds by construction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional

from repro.idspace.identifier import FlatId, RingSpace
from repro.intra.virtualnode import Pointer
from repro.util.ringmap import SortedRingMap


class PointerCache:
    """A fixed-capacity LRU cache of pointers with greedy lookup.

    Two indexes are kept in lock-step: an :class:`OrderedDict` for LRU
    recency and a :class:`SortedRingMap` for ``O(log n)`` closest-not-past
    queries (the paper's modified longest-prefix-match lookup).
    """

    def __init__(self, space: RingSpace, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.space = space
        self.capacity = capacity
        # LRU keyed by raw int ID value: native int hashing on the
        # per-hop lookup path instead of FlatId hashing.
        self._lru: "OrderedDict[int, Pointer]" = OrderedDict()
        self._ring = SortedRingMap(space)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, dest_id: FlatId) -> bool:
        return dest_id.value in self._lru

    def put(self, pointer: Pointer) -> None:
        """Insert/refresh a cached pointer, evicting LRU on overflow."""
        if self.capacity == 0:
            return
        dest = pointer.dest_id
        iv = dest.value
        if iv in self._lru:
            self._lru.pop(iv)
        elif len(self._lru) >= self.capacity:
            evicted_iv, _ = self._lru.popitem(last=False)
            self._ring.discard(evicted_iv)
            self.evictions += 1
        self._lru[iv] = pointer
        self._ring.insert(dest, pointer)

    def get(self, dest_id: FlatId) -> Optional[Pointer]:
        pointer = self._lru.get(dest_id.value)
        if pointer is not None:
            self._lru.move_to_end(dest_id.value)
        return pointer

    def best_match(self, dest: FlatId) -> Optional[Pointer]:
        """Algorithm 2's ``PC.best_match``: the cached pointer closest to
        ``dest`` without passing it — i.e. the entry minimising the
        clockwise distance to ``dest``.  Touches recency on a hit."""
        match = self._ring.predecessor(dest, strict=False)
        if match is None:
            self.misses += 1
            return None
        self.hits += 1
        self._lru.move_to_end(match.value)
        return self._lru[match.value]

    def invalidate_id(self, dest_id: FlatId) -> bool:
        """Drop the entry for a failed identifier (teardown handling)."""
        iv = dest_id.value
        if iv not in self._lru:
            return False
        self._lru.pop(iv)
        self._ring.discard(iv)
        return True

    def invalidate_where(self, predicate: Callable[[Pointer], bool]) -> int:
        """Drop every entry whose pointer matches ``predicate`` — e.g. all
        routes traversing a failed router or link.  Returns count dropped."""
        doomed = [iv for iv, ptr in self._lru.items() if predicate(ptr)]
        for iv in doomed:
            self._lru.pop(iv)
            self._ring.discard(iv)
        return len(doomed)

    def replace(self, pointer: Pointer) -> None:
        """Refresh an entry's source route in place (path repair)."""
        iv = pointer.dest_id.value
        if iv in self._lru:
            self._lru[iv] = pointer
            self._ring.insert(pointer.dest_id, pointer)

    def entries(self) -> List[Pointer]:
        return list(self._lru.values())

    def clear(self) -> None:
        self._lru.clear()
        self._ring = SortedRingMap(self.space)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return "PointerCache({}/{} entries, hit_rate={:.2f})".format(
            len(self._lru), self.capacity, self.hit_rate)
