"""Ring construction and maintenance — Algorithm 1 and Section 3.1.

A join is four conceptual message exchanges, each ~one network traversal
(the paper: "ROFL's join overhead is roughly four messages times the
diameter of the network since only successors need to be notified"):

1. the join request, greedily routed to the joining ID's predecessor;
2. the response carrying the predecessor's successor group back;
3. the path-setup to the new immediate successor;
4. the successor's acknowledgement (which installs its new predecessor
   pointer).

Routers along the response and setup paths cache pointers to the IDs the
messages name ("whenever a source route is established, the routers along
the path can cache the route"), and each cached location is recorded on
the target virtual node — the route record later used to direct
invalidation floods on host failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, TYPE_CHECKING

from repro.idspace.crypto import authenticate
from repro.idspace.identifier import FlatId
from repro.intra import forwarding
from repro.intra.virtualnode import Pointer, VirtualNode
from repro.topology.hosts import PlannedHost
from repro.util import perf

if TYPE_CHECKING:  # pragma: no cover
    from repro.intra.network import IntraDomainNetwork


class JoinError(Exception):
    """The join could not complete (unreachable ring, duplicate ID, …)."""


@dataclass
class JoinReceipt:
    """Everything the experiments measure about one completed join."""

    host_name: str
    flat_id: FlatId
    router: str
    messages: int
    latency_ms: float
    ephemeral: bool = False


def join_internal(net: "IntraDomainNetwork", host: PlannedHost,
                  via_router: Optional[str] = None) -> JoinReceipt:
    """Execute Algorithm 1 for ``host`` at its gateway router."""
    router_name = via_router or host.attach_at
    if not net.lsmap.is_router_up(router_name):
        raise JoinError("gateway router {} is down".format(router_name))
    router = net.routers[router_name]

    # Line 1: authenticate(id) — the host proves it holds the private key
    # whose public half hashes to the claimed identifier.
    challenge = "challenge:{}:{}".format(router_name, host.name).encode("utf-8")
    proof = host.key_pair.prove_ownership(challenge)
    flat_id = authenticate(proof, net.authority)
    if flat_id in net.vn_index:
        raise JoinError("ID {} already resident in this domain".format(flat_id))

    return join_with_id(net, flat_id, router_name, host.name,
                        ephemeral=host.ephemeral)


def join_with_id(net: "IntraDomainNetwork", flat_id: FlatId,
                 router_name: str, name: str,
                 ephemeral: bool = False) -> JoinReceipt:
    """Join an already-authenticated identifier at a gateway router.

    This is the entry point the Section 5 services use for group
    identifiers ``(G, x)``: "an ID can be held by multiple boxes (which is
    how we will implement anycast and multicast)" — members of a group
    authenticate with the group's shared key pair, so the per-host
    hash-of-public-key check of :func:`join_internal` does not apply.
    """
    if flat_id in net.vn_index:
        raise JoinError("ID {} already resident in this domain".format(flat_id))
    router = net.routers[router_name]
    vn = VirtualNode(id=flat_id, router=router_name, host_name=name,
                     ephemeral=ephemeral)

    with perf.timed("intra.join"), \
            net.stats.operation("join", host=name) as op:
        if ephemeral:
            latency = _join_ephemeral(net, router, vn)
        else:
            latency = _join_stable(net, router, vn)
        messages = op["messages"]

    net.vn_index[vn.id] = vn
    net.hosts[name] = vn
    return JoinReceipt(host_name=name, flat_id=vn.id, router=router_name,
                       messages=messages, latency_ms=latency,
                       ephemeral=ephemeral)


def _join_stable(net: "IntraDomainNetwork", router, vn: VirtualNode) -> float:
    """The stable-host join: splice ``vn`` between pred and pred's successor."""
    # (1) Join request: greedy control route toward the joining ID.
    lookup = forwarding.route(net, router.name, vn.id, mode="lookup",
                              category="join")
    if not lookup.delivered or lookup.final_vn is None:
        raise JoinError("predecessor lookup failed: " + lookup.reason)
    pred = lookup.final_vn
    latency = lookup.latency_ms

    # (2) Response: predecessor → joining router, carrying the successor
    # group (IDs + hosting routers).
    response_path = net.paths.hop_path(pred.router, router.name)
    if response_path is None:
        raise JoinError("predecessor unreachable for response")
    net.stats.charge_path(response_path, "join")
    latency += net.paths.path_latency_ms(response_path)
    _fill_caches(net, response_path,
                 [vn.id, pred.id] + pred.successor_ids())
    # The request travelled toward the predecessor greedily; routers it
    # crossed may cache the predecessor it resolved to.
    _fill_caches(net, lookup.path, [pred.id])

    # The new node inherits the predecessor's successor group; the
    # predecessor's group shifts down behind the new node (Section 2.2 /
    # Algorithm 1 lines 6–7, generalised to successor groups).
    inherited: List[Pointer] = []
    for ptr in pred.successors:
        if not net.id_is_live(ptr.dest_id):
            continue
        path = net.paths.hop_path(router.name, ptr.hosting_router)
        if path is None:
            continue
        inherited.append(Pointer(ptr.dest_id, tuple(path), "successor"))
    if not inherited:
        # Single-node ring: the predecessor becomes the successor too.
        back = net.paths.hop_path(router.name, pred.router)
        inherited = [Pointer(pred.id, tuple(back), "successor")]
    vn.set_successors(inherited, net.successor_group_size)

    # (3) Path setup to the immediate successor, and (4) its ack, which
    # installs the successor's new predecessor pointer.
    setup_latency = 0.0
    primary = vn.primary_successor()
    succ_vn = net.vn_index.get(primary.dest_id)
    setup_path = net.paths.hop_path(router.name, primary.hosting_router)
    if setup_path is not None:
        net.stats.charge_path(setup_path, "join")              # setup
        net.stats.charge_path(list(reversed(setup_path)), "join")  # ack
        setup_latency = 2 * net.paths.path_latency_ms(setup_path)
        _fill_caches(net, setup_path, [primary.dest_id])
        _fill_caches(net, list(reversed(setup_path)), [vn.id])
    if succ_vn is not None and not succ_vn.ephemeral:
        back = net.paths.hop_path(succ_vn.router, router.name)
        if back is not None:
            succ_vn.predecessor = Pointer(vn.id, tuple(back), "predecessor")
            net.routers[succ_vn.router].mark_dirty(succ_vn)

    # Predecessor-side state: pred already has the request in hand, so no
    # further messages — it installs its pointer to the new node.
    pred_path = net.paths.hop_path(pred.router, router.name)
    pred.push_successor(Pointer(vn.id, tuple(pred_path), "successor"),
                        net.successor_group_size)
    net.routers[pred.router].mark_dirty(pred)
    vn.predecessor = Pointer(
        pred.id, tuple(net.paths.hop_path(router.name, pred.router)),
        "predecessor")

    router.register_virtual_node(vn)
    # Request and response are sequential; the setup/ack exchange follows.
    return latency + setup_latency


def _join_ephemeral(net: "IntraDomainNetwork", router, vn: VirtualNode) -> float:
    """Section 2.2: ephemeral hosts "merely establish a path between
    themselves and their predecessor"; they never enter the ring."""
    lookup = forwarding.route(net, router.name, vn.id, mode="lookup",
                              category="join")
    if not lookup.delivered or lookup.final_vn is None:
        raise JoinError("predecessor lookup failed: " + lookup.reason)
    pred = lookup.final_vn
    latency = lookup.latency_ms

    back_path = net.paths.hop_path(pred.router, router.name)
    if back_path is None:
        raise JoinError("predecessor unreachable for ephemeral setup")
    net.stats.charge_path(back_path, "join")
    latency += net.paths.path_latency_ms(back_path)

    pred.ephemeral_children[vn.id] = Pointer(vn.id, tuple(back_path), "ephemeral")
    net.routers[pred.router].mark_dirty(pred)
    vn.predecessor = Pointer(
        pred.id, tuple(net.paths.hop_path(router.name, pred.router)),
        "predecessor")
    router.register_virtual_node(vn)
    return latency


def _fill_caches(net: "IntraDomainNetwork", path: Sequence[str],
                 ids: List[FlatId], force: bool = False) -> None:
    """Populate pointer caches along a control path.

    For each ID named by the control message, every router on the path
    caches a source route toward that ID's hosting router — using the
    suffix of the control path when the hosting router lies ahead, which
    is "contents available from control packets" only (Section 6.1).
    ``force`` bypasses the control-fill switch (used by the data-packet
    snooping option, which is governed separately).
    """
    if not net.cache_fill_enabled and not force:
        return
    for target in ids:
        vn = net.vn_index.get(target)
        if vn is None:
            continue
        for i, router_name in enumerate(path):
            if router_name == vn.router:
                continue
            suffix = _route_toward(net, path, i, vn.router)
            if suffix is None:
                continue
            net.routers[router_name].cache.put(
                Pointer(target, tuple(suffix), "cache"))
            vn.cached_at.add(router_name)


def _route_toward(net: "IntraDomainNetwork", path: Sequence[str], index: int,
                  hosting_router: str) -> Optional[List[str]]:
    """A source route from ``path[index]`` to ``hosting_router``: the path
    suffix when the hosting router lies further along the control path,
    otherwise the reversed prefix (the message came from there)."""
    for j in range(index + 1, len(path)):
        if path[j] == hosting_router:
            return list(path[index:j + 1])
    for j in range(index - 1, -1, -1):
        if path[j] == hosting_router:
            return list(reversed(path[j:index + 1]))
    return None


def bootstrap_router_ring(net: "IntraDomainNetwork") -> None:
    """Bring up every router's default virtual node as one consistent ring.

    The paper bootstraps the first resident ID of a router by flooding the
    router-ID (Section 3.1); we charge that flood per router under the
    ``bootstrap`` category and install the resulting ring pointers
    directly (sorted router-IDs with shortest-path source routes).
    """
    from repro.linkstate.protocol import flood_message_cost

    default_vns = sorted((r.default_vn for r in net.routers.values()),
                         key=lambda vn: vn.id)
    for vn in default_vns:
        net.vn_index[vn.id] = vn
        net.stats.charge_hops(flood_message_cost(net.lsmap, vn.router),
                              "bootstrap")
    refresh_ring_pointers(net, [vn.id for vn in default_vns])


def refresh_ring_pointers(net: "IntraDomainNetwork",
                          ids: Optional[List[FlatId]] = None) -> None:
    """(Re)install successor groups and predecessors from the live global
    membership — the steady state Chord-style stabilisation converges to.

    Used by bootstrap and by tests that need a known-consistent ring; the
    protocol paths (join/failure/partition) maintain the same state
    incrementally.
    """
    members = net.ring_members()
    if not members:
        return
    ordered = sorted(members, key=lambda vn: vn.id)
    n = len(ordered)
    targets = set(ids) if ids is not None else None
    for i, vn in enumerate(ordered):
        if targets is not None and vn.id not in targets:
            continue
        group: List[Pointer] = []
        for k in range(1, min(net.successor_group_size, n - 1) + 1):
            succ = ordered[(i + k) % n]
            path = net.paths.hop_path(vn.router, succ.router)
            if path is None:
                continue
            group.append(Pointer(succ.id, tuple(path), "successor"))
        vn.set_successors(group, net.successor_group_size)
        pred = ordered[(i - 1) % n]
        if pred.id != vn.id:
            path = net.paths.hop_path(vn.router, pred.router)
            if path is not None:
                vn.predecessor = Pointer(pred.id, tuple(path), "predecessor")
        net.routers[vn.router].mark_dirty(vn)
