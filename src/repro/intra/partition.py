"""Partition detection and ring-merge recovery (paper Section 3.2, Fig 7).

"Certain sequences of failure events could cause the successor ring to
partition into multiple pieces, even if the underlying network is
connected. To prevent this, routers continuously distribute routes to a
small set of stable identifiers [the zero-ID] … then execute a
partition-repair protocol that ensures network state converges correctly
into a single ring."

The Fig 7 workload disconnects a whole PoP (cutting every link between the
PoP and the rest of the ISP), lets each side's ring heal into a separate
consistent namespace, reconnects, and measures the zero-ID-driven merge.
Zero-ID advertisements themselves are piggybacked on link-state floods
("in practice, the zero node advertisements are piggybacked on link-state
advertisements") and therefore charged as zero additional messages; the
repair traffic (teardowns, gap-filling lookups, pointer setups) is charged
in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.idspace.identifier import FlatId
from repro.intra.virtualnode import Pointer, VirtualNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.intra.network import IntraDomainNetwork


@dataclass
class PartitionReport:
    """Measurements from one disconnect/reconnect cycle."""

    pop: Hashable
    cut_links: List[Tuple[str, str]]
    ids_in_pop: int
    disconnect_messages: int
    reconnect_messages: int

    @property
    def total_messages(self) -> int:
        return self.disconnect_messages + self.reconnect_messages


def zero_id(net: "IntraDomainNetwork", component: Set[str]) -> Optional[FlatId]:
    """The smallest live ring ID hosted inside ``component``.

    This is what the zero-ID advertisements converge to within one
    partition (the paper uses router-IDs "to reduce sensitivity to churn",
    and router default VNs are ring members here, so the minimum is taken
    over the same population).
    """
    ids = [vn.id for vn in net.ring_members() if vn.router in component]
    return min(ids) if ids else None


def pop_boundary_links(net: "IntraDomainNetwork",
                       pop: Hashable) -> List[Tuple[str, str]]:
    """Live links with exactly one endpoint inside the PoP."""
    members = set(net.topology.routers_in_pop(pop))
    if not members:
        raise KeyError("unknown or empty PoP {!r}".format(pop))
    cut = []
    for a, b in net.topology.links():
        if (a in members) != (b in members) and net.lsmap.is_link_up(a, b):
            cut.append((a, b))
    return cut


def heal_components(net: "IntraDomainNetwork") -> None:
    """Repair each connected component into its own consistent ring.

    Per component: cached pointers whose source routes are no longer live
    are invalidated (local, LSA-driven); successor groups are shifted down
    past unreachable members; remaining gaps are filled with charged
    lookup/setup exchanges.
    """
    components = net.lsmap.components()
    for component in components:
        _heal_one_component(net, component)


def _heal_one_component(net: "IntraDomainNetwork", component: Set[str]) -> None:
    members = sorted((vn for vn in net.ring_members()
                      if vn.router in component), key=lambda vn: vn.id)
    if not members:
        return
    member_ids = {vn.id for vn in members}
    n = len(members)

    for router_name in component:
        router = net.routers[router_name]
        router.cache.invalidate_where(
            lambda p: not net.lsmap.path_is_live(list(p.path)))

    for i, vn in enumerate(members):
        # Shift the successor group down past unreachable IDs (free: "it
        # knows no closer IDs may exist").
        before = len(vn.successors)
        vn.successors = [p for p in vn.successors if p.dest_id in member_ids
                         and net.lsmap.reachable(vn.router, p.hosting_router)]
        if len(vn.successors) != before:
            net.routers[vn.router].mark_dirty(vn)
        expected = members[(i + 1) % n]
        if n == 1:
            vn.successors = []
            vn.predecessor = None
            net.routers[vn.router].mark_dirty(vn)
            continue
        primary = vn.primary_successor()
        if primary is None or primary.dest_id != expected.id:
            # Charged gap-filling exchange (ask + answer).
            path = net.paths.hop_path(vn.router, expected.router)
            if path is None:
                continue
            net.stats.charge_path(path, "repair")
            net.stats.charge_path(list(reversed(path)), "repair")
            vn.push_successor(Pointer(expected.id, tuple(path), "successor"),
                              net.successor_group_size)
            net.routers[vn.router].mark_dirty(vn)
        prev = members[(i - 1) % n]
        if (vn.predecessor is None or vn.predecessor.dest_id not in member_ids
                or vn.predecessor.dest_id != prev.id):
            back = net.paths.hop_path(vn.router, prev.router)
            if back is not None:
                vn.predecessor = Pointer(prev.id, tuple(back), "predecessor")

        # Ephemeral children stranded outside the component detach.
        doomed = [eid for eid, p in vn.ephemeral_children.items()
                  if not net.lsmap.reachable(vn.router, p.hosting_router)]
        for eid in doomed:
            del vn.ephemeral_children[eid]
            net.routers[vn.router].mark_dirty(vn)

    from repro.intra.failure import refill_successor_group
    for vn in members:
        refill_successor_group(net, vn)


def merge_rings(net: "IntraDomainNetwork",
                rejoining_routers: Set[str]) -> None:
    """Zero-ID-driven merge after reconnection.

    The zero-ID advertisement reaches the (former) minority ring for free
    (piggybacked on LSAs); its members then rejoin the majority ring: each
    rejoin is a charged predecessor lookup routed greedily through the
    majority ring plus the usual setup/ack — the same cost profile as a
    host join, which is why the paper finds merge overhead "roughly on the
    same order of magnitude of rejoining all the hosts in the PoP".
    """
    from repro.intra import forwarding

    rejoiners = sorted((vn for vn in net.ring_members()
                        if vn.router in rejoining_routers),
                       key=lambda vn: vn.id)
    # The zero-ID advertisement gives every rejoining router a route to
    # the majority ring's smallest ID; rejoin requests are forwarded there
    # and then routed greedily around the majority ring.
    majority = [vn for vn in net.ring_members()
                if vn.router not in rejoining_routers]
    if not majority:
        _reconcile_ring(net)
        return
    zero_vn = min(majority, key=lambda vn: vn.id)
    for vn in rejoiners:
        to_zero = net.paths.hop_path(vn.router, zero_vn.router)
        if to_zero is None:
            continue
        net.stats.charge_path(to_zero, "repair")
        probe = forwarding.route(net, zero_vn.router, vn.id, mode="lookup",
                                 category="repair")
        pred = probe.final_vn if probe.delivered else None
        if pred is None or pred is vn:
            continue
        _splice(net, pred, vn)
    _reconcile_ring(net)


def _splice(net: "IntraDomainNetwork", pred: VirtualNode,
            vn: VirtualNode) -> None:
    """Insert ``vn`` after ``pred``, charging the setup/ack exchanges."""
    inherited: List[Pointer] = []
    for ptr in pred.successors:
        if ptr.dest_id == vn.id or not net.id_is_live(ptr.dest_id):
            continue
        path = net.paths.hop_path(vn.router, ptr.hosting_router)
        if path is not None:
            inherited.append(Pointer(ptr.dest_id, tuple(path), "successor"))
    response = net.paths.hop_path(pred.router, vn.router)
    if response is not None:
        net.stats.charge_path(response, "repair")
    if inherited:
        primary = inherited[0]
        setup = net.paths.hop_path(vn.router, primary.hosting_router)
        if setup is not None:
            net.stats.charge_path(setup, "repair")
            net.stats.charge_path(list(reversed(setup)), "repair")
        succ_vn = net.vn_index.get(primary.dest_id)
        if succ_vn is not None and not succ_vn.ephemeral:
            back = net.paths.hop_path(succ_vn.router, vn.router)
            if back is not None:
                succ_vn.predecessor = Pointer(vn.id, tuple(back), "predecessor")
                net.routers[succ_vn.router].mark_dirty(succ_vn)
        vn.set_successors(inherited, net.successor_group_size)
    if response is not None:
        pred.push_successor(
            Pointer(vn.id, tuple(net.paths.hop_path(pred.router, vn.router)),
                    "successor"),
            net.successor_group_size)
        vn.predecessor = Pointer(
            pred.id, tuple(net.paths.hop_path(vn.router, pred.router)),
            "predecessor")
    net.routers[pred.router].mark_dirty(pred)
    net.routers[vn.router].mark_dirty(vn)


def _reconcile_ring(net: "IntraDomainNetwork") -> None:
    """Final convergence sweep: any remaining primary-successor mismatch
    (interleaved IDs that a pairwise splice cannot see) is fixed with a
    charged exchange, mirroring the "loopy cycle" healing the paper's
    consistency checks enforce."""
    members = sorted(net.ring_members(), key=lambda vn: vn.id)
    n = len(members)
    if n == 0:
        return
    for i, vn in enumerate(members):
        expected = members[(i + 1) % n]
        primary = vn.primary_successor()
        if primary is not None and primary.dest_id == expected.id and n > 1:
            continue
        if n == 1:
            vn.successors = []
            vn.predecessor = None
            net.routers[vn.router].mark_dirty(vn)
            continue
        path = net.paths.hop_path(vn.router, expected.router)
        if path is None:
            continue
        net.stats.charge_path(path, "repair")
        net.stats.charge_path(list(reversed(path)), "repair")
        vn.push_successor(Pointer(expected.id, tuple(path), "successor"),
                          net.successor_group_size)
        back = net.paths.hop_path(expected.router, vn.router)
        if back is not None:
            expected.predecessor = Pointer(vn.id, tuple(back), "predecessor")
        net.routers[vn.router].mark_dirty(vn)
        net.routers[expected.router].mark_dirty(expected)


def disconnect_and_reconnect_pop(net: "IntraDomainNetwork",
                                 pop: Hashable) -> PartitionReport:
    """The full Fig 7 cycle for one PoP.  Verifies ring consistency after
    the merge (the simulator's misconvergence check)."""
    cut = pop_boundary_links(net, pop)
    pop_routers = set(net.topology.routers_in_pop(pop))
    ids_in_pop = sum(1 for vn in net.ring_members() if vn.router in pop_routers)

    with net.stats.operation("partition_disconnect", pop=pop) as op_down:
        for a, b in cut:
            net.lsmap.fail_link(a, b)
        heal_components(net)
        disconnect_messages = op_down["messages"]

    with net.stats.operation("partition_reconnect", pop=pop) as op_up:
        for a, b in cut:
            net.lsmap.restore_link(a, b)
        merge_rings(net, pop_routers)
        reconnect_messages = op_up["messages"]

    net.check_ring()
    return PartitionReport(pop=pop, cut_links=cut, ids_in_pop=ids_in_pop,
                           disconnect_messages=disconnect_messages,
                           reconnect_messages=reconnect_messages)
