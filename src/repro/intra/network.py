"""The intradomain ROFL network — the public entry point for Section 3.

Owns the substrate stack (static topology → link-state map → path cache),
the per-router ROFL state, and the global indexes the simulator uses for
verification (``vn_index`` is an *oracle*: routing never consults it to
make forwarding decisions, only state-update and checking code does).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.idspace.crypto import SignatureAuthority
from repro.idspace.identifier import FlatId, RingSpace
from repro.intra import failure as failure_mod
from repro.intra import forwarding, partition, ring
from repro.intra.router import RoflRouter
from repro.intra.virtualnode import (DEFAULT_SUCCESSOR_GROUP, Pointer,
                                     VirtualNode)
from repro.linkstate.lsdb import LinkStateMap
from repro.linkstate.spf import PathCache
from repro.sim.stats import PathResult, StatsCollector
from repro.topology.graph import RouterTopology
from repro.topology.hosts import HostPlan, HostTable, PlannedHost
from repro.topology.isp import TCAM_ENTRIES
from repro.util.rng import RngRegistry


class RingInconsistency(AssertionError):
    """Raised by :meth:`IntraDomainNetwork.check_ring` on misconvergence."""


class IntraDomainNetwork:
    """One ISP running intradomain ROFL.

    Parameters mirror the paper's experimental knobs: ``cache_entries``
    (the 9 Mbit TCAM default ≈ 70 k entries of Fig 6a), the successor
    group size (resilience ablation), and whether control traffic fills
    pointer caches (the paper's default; data-packet snooping is off).
    """

    def __init__(
        self,
        topology: RouterTopology,
        cache_entries: int = TCAM_ENTRIES,
        successor_group_size: int = DEFAULT_SUCCESSOR_GROUP,
        seed: int = 0,
        authority: Optional[SignatureAuthority] = None,
        cache_fill_enabled: bool = True,
        snoop_data_packets: bool = False,
        ephemeral_fraction: float = 0.0,
    ):
        if successor_group_size < 1:
            raise ValueError("successor group must hold at least one pointer")
        self.topology = topology
        self.lsmap = LinkStateMap(topology)
        self.paths = PathCache(self.lsmap)
        self.space = RingSpace()
        self.stats = StatsCollector()
        self.authority = authority or SignatureAuthority()
        self.successor_group_size = successor_group_size
        self.cache_fill_enabled = cache_fill_enabled
        #: Section 6.1: "we do not snoop on data packet headers for
        #: filling caches" is the paper's default; turning this on fills
        #: caches from delivered data paths as well.
        self.snoop_data_packets = snoop_data_packets
        self.seed = seed
        #: Every long-lived derived stream of this network, enumerable so
        #: :mod:`repro.snapshot` can capture/restore stream positions.
        self.rngs = RngRegistry(seed)
        self._rng = self.rngs.derive("intranet", topology.name)

        self.routers: Dict[str, RoflRouter] = {
            name: RoflRouter(name, self.space, cache_entries)
            for name in topology.routers
        }
        #: Oracle index over all live virtual nodes (verification only).
        self.vn_index: Dict[FlatId, VirtualNode] = {}
        self.hosts: HostTable = HostTable()
        self.host_records: Dict[str, PlannedHost] = {}
        self._plan = HostPlan(
            attachment_points=topology.edge_routers() or topology.routers,
            seed=seed,
            ephemeral_fraction=ephemeral_fraction,
            authority=self.authority,
            registry=self.rngs,
        )
        ring.bootstrap_router_ring(self)

    # -- joining -----------------------------------------------------------------

    def join_host(self, host: PlannedHost,
                  via_router: Optional[str] = None) -> ring.JoinReceipt:
        """Join one planned host; returns its measured :class:`JoinReceipt`."""
        receipt = ring.join_internal(self, host, via_router=via_router)
        self.host_records[host.name] = host
        return receipt

    def join_random_hosts(self, n: int) -> List[ring.JoinReceipt]:
        """Join ``n`` hosts drawn from the deterministic host plan."""
        return [self.join_host(host) for host in self._plan.take(n)]

    def next_planned_host(self) -> PlannedHost:
        return self._plan.next_host()

    # -- data plane ----------------------------------------------------------------

    def send(self, src_host: str, dst_host: str) -> PathResult:
        """Route one data packet between two joined hosts."""
        src_vn = self.hosts[src_host]
        dst_vn = self.hosts[dst_host]
        return self.send_to_id(src_vn.router, dst_vn.id)

    def send_to_id(self, src_router: str, dest_id: FlatId) -> PathResult:
        """Route one data packet from a router toward a flat identifier."""
        outcome = forwarding.route(self, src_router, dest_id,
                                   mode="data", category="data")
        optimal = 0
        if outcome.delivered and outcome.final_vn is not None:
            optimal = self.paths.hop_dist(src_router, outcome.final_vn.router) or 0
            if self.snoop_data_packets:
                ring._fill_caches(self, outcome.path, [dest_id], force=True)
        return PathResult(
            delivered=outcome.delivered,
            path=outcome.path,
            hops=outcome.hops,
            optimal_hops=optimal,
            pointer_hops=outcome.pointer_hops,
            used_cache=outcome.used_cache,
        )

    def random_host_pair(self) -> Tuple[str, str]:
        names = self.hosts.names
        if len(names) < 2:
            raise ValueError("need at least two joined hosts")
        a, b = self._rng.sample(names, 2)
        return a, b

    def flush_indexes(self) -> None:
        """Flush every router's pending candidate-index maintenance now.

        Index refresh is normally deferred to the next lookup; a join
        storm therefore dumps its flush work onto the first packets sent
        afterwards.  Benchmarks call this at a phase boundary so each
        phase's measurement covers the maintenance it caused.
        """
        for router in self.routers.values():
            router.flush_index()

    # -- pointer validation (used by the forwarding engine) ----------------------------

    def validate_pointer(self, router: RoflRouter, pointer: Pointer,
                         from_router: Optional[str] = None) -> Optional[Pointer]:
        """Check a pointer's source route against the live map; repair it
        (network map reroute) or tear it down (invariant (b))."""
        start = from_router or pointer.owner_router
        if pointer.path[0] == start and self.lsmap.path_is_live(list(pointer.path)):
            return pointer
        target_vn = self.vn_index.get(pointer.dest_id)
        hosting = target_vn.router if target_vn is not None else pointer.hosting_router
        alive = (target_vn is not None
                 and self.lsmap.is_router_up(hosting)
                 and self.routers[hosting].hosts_id(pointer.dest_id))
        if alive:
            new_path = self.paths.hop_path(start, hosting)
            if new_path is not None:
                repaired = pointer.rerouted(tuple(new_path))
                if start == pointer.owner_router:
                    router.reroute_pointer(pointer, repaired)
                return repaired
        owner = self.routers.get(pointer.owner_router)
        if owner is not None:
            owner.drop_pointer(pointer)
        if router is not owner:
            router.drop_pointer(pointer)
        return None

    def id_is_live(self, flat_id: FlatId) -> bool:
        """Is this identifier currently resident at a live router?

        State-update code uses this when copying successor entries between
        nodes: it models the hosting router NACKing a path setup addressed
        to an ID that no longer lives there (the setup itself is charged).
        """
        vn = self.vn_index.get(flat_id)
        return (vn is not None and self.lsmap.is_router_up(vn.router)
                and self.routers[vn.router].hosts_id(flat_id))

    # -- mobility ---------------------------------------------------------------------

    def leave_host(self, host_name: str) -> int:
        """Graceful departure (cheaper than failure recovery)."""
        from repro.intra import mobility
        return mobility.leave_host(self, host_name)

    def move_host(self, host_name: str, new_router: str):
        """Re-home a host (same flat identifier) at another gateway."""
        from repro.intra import mobility
        return mobility.move_host(self, host_name, new_router)

    # -- failure injection ----------------------------------------------------------

    def fail_host(self, host_name: str) -> int:
        return failure_mod.host_failure(self, host_name)

    def fail_router(self, router_name: str) -> int:
        return failure_mod.router_failure(self, router_name)

    def fail_link(self, a: str, b: str) -> int:
        return failure_mod.link_failure(self, a, b)

    def restore_link(self, a: str, b: str) -> None:
        self.lsmap.restore_link(a, b)

    def partition_pop(self, pop: Hashable) -> partition.PartitionReport:
        return partition.disconnect_and_reconnect_pop(self, pop)

    def failover_router(self, failed_router: str,
                        host_name: str) -> Optional[str]:
        """The pre-agreed deterministic failover target: the next live
        router in sorted order after the failed one (Section 3.2)."""
        ordered = sorted(self.routers)
        start = ordered.index(failed_router) if failed_router in ordered else 0
        for offset in range(1, len(ordered) + 1):
            candidate = ordered[(start + offset) % len(ordered)]
            if self.lsmap.is_router_up(candidate):
                return candidate
        return None

    # -- verification & accounting -----------------------------------------------------

    def ring_members(self) -> List[VirtualNode]:
        """All live, non-ephemeral virtual nodes (ring participants)."""
        return [vn for vn in self.vn_index.values()
                if not vn.ephemeral and self.lsmap.is_router_up(vn.router)]

    def check_ring(self) -> None:
        """The simulator's misconvergence check: live members must form a
        single sorted ring of primary successors (per live component)."""
        for component in self.lsmap.components():
            members = sorted((vn for vn in self.ring_members()
                              if vn.router in component),
                             key=lambda vn: vn.id)
            n = len(members)
            if n <= 1:
                continue
            for i, vn in enumerate(members):
                expected = members[(i + 1) % n]
                primary = vn.primary_successor()
                if primary is None:
                    raise RingInconsistency(
                        "{} has no successor (expected {})".format(
                            vn.id, expected.id))
                if primary.dest_id != expected.id:
                    raise RingInconsistency(
                        "{} points to {} but ring order expects {}".format(
                            vn.id, primary.dest_id, expected.id))

    def memory_entries_per_router(self,
                                  include_cache: bool = True) -> Dict[str, int]:
        """Per-router forwarding-state entry counts (Fig 6c)."""
        return {name: router.state_entries(include_cache=include_cache)
                for name, router in self.routers.items()}

    def cache_stats(self) -> Dict[str, float]:
        hits = sum(r.cache.hits for r in self.routers.values())
        misses = sum(r.cache.misses for r in self.routers.values())
        entries = sum(len(r.cache) for r in self.routers.values())
        return {
            "hits": hits,
            "misses": misses,
            "entries": entries,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    def __repr__(self) -> str:
        return "IntraDomainNetwork({!r}, routers={}, hosts={})".format(
            self.topology.name, len(self.routers), len(self.hosts))
