"""Greedy packet forwarding — Algorithm 2 of the paper.

"When a router forwards a packet, it selects the closest ID it knows
about to the destination ID … The router maintains a list of resident
virtual nodes (VN) … Before forwarding the packet, the router first
checks its pointer cache (PC) for an entry that is closer to the
destination than the value stored in next_hop_vn."

The same engine serves two modes:

* ``data`` — deliver to the destination ID's hosting router; fails only
  if the ID does not exist (or the ring is inconsistent).
* ``lookup`` — a control message routed toward an ID's *predecessor*
  (greedy toward ``id − 1``); this is the primitive joins are built on.

Packets move one physical hop at a time along the committed pointer's
source route; every router traversed re-evaluates Algorithm 2 and may
shortcut onto a numerically closer pointer from its own cache — the
mechanism behind Fig 6a's stretch-vs-cache-size curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.idspace.identifier import FlatId
from repro.intra.virtualnode import Pointer, VirtualNode
from repro.obs import trace
from repro.util import perf

if TYPE_CHECKING:  # pragma: no cover
    from repro.intra.network import IntraDomainNetwork

#: Safety valve: a correct ring routes in O(ring size) pointer hops; any
#: packet exceeding this many pointer commits indicates a protocol bug.
MAX_POINTER_HOPS = 4096


@dataclass
class ForwardingOutcome:
    """What happened to one routed packet (or control lookup)."""

    delivered: bool
    reason: str
    path: List[str] = field(default_factory=list)
    pointer_hops: int = 0
    used_cache: bool = False
    final_vn: Optional[VirtualNode] = None
    latency_ms: float = 0.0

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


def route(
    net: "IntraDomainNetwork",
    start_router: str,
    dest_id: FlatId,
    mode: str = "data",
    category: str = "data",
    max_pointer_hops: int = MAX_POINTER_HOPS,
) -> ForwardingOutcome:
    """Route a packet (or control lookup) greedily from ``start_router``.

    Returns a :class:`ForwardingOutcome`; in ``lookup`` mode a *delivered*
    outcome carries the predecessor virtual node in ``final_vn``.
    """
    if mode not in ("data", "lookup"):
        raise ValueError("unknown mode {!r}".format(mode))
    perf.counter("fwd.packets")
    with perf.timed("intra.route." + mode):
        return _route(net, start_router, dest_id, mode, category,
                      max_pointer_hops)


def _route(net, start_router, dest_id, mode, category, max_pointer_hops):
    tr = trace.packet_span("intra.packet", start=start_router,
                           dest=dest_id.to_hex(),
                           mode=mode) if trace.ENABLED else None
    space = net.space
    include_ephemeral = mode == "data"
    # Lookups aim at the spot just before the target so greedy routing
    # converges on the target's predecessor even if the target exists.
    greedy_dest = dest_id if mode == "data" else space.make(dest_id.value - 1)

    current = start_router
    outcome = ForwardingOutcome(delivered=False, reason="in-flight",
                                path=[start_router])
    committed: Optional[Pointer] = None
    committed_step = 0
    committed_dist = space.size  # +infinity: any real candidate beats it

    while outcome.pointer_hops <= max_pointer_hops:
        router = net.routers[current]

        if mode == "data" and router.hosts_id(dest_id):
            outcome.delivered = True
            outcome.reason = "delivered"
            outcome.final_vn = router.vn_table[dest_id]
            net.stats.charge_path(outcome.path, category)
            if tr is not None:
                tr.end(delivered=True, reason="delivered", router=current)
                trace.close_span(tr)
            return outcome

        if committed is not None and current == committed.hosting_router \
                and not router.hosts_id(committed.dest_id):
            # NACK: the source route was live but its target ID is not
            # here — a stale pointer beyond the teardown/move notification
            # window.  Invariant (b) is enforced lazily: if the ID now
            # lives elsewhere (host moved), the owner re-routes its
            # pointer; if it is gone, the owner deletes it.  Either way,
            # routing restarts from this router.
            owner = net.routers.get(committed.path[0])
            target_vn = net.vn_index.get(committed.dest_id)
            if (target_vn is not None
                    and net.lsmap.is_router_up(target_vn.router)
                    and net.routers[target_vn.router].hosts_id(committed.dest_id)):
                new_path = net.paths.hop_path(committed.path[0],
                                              target_vn.router)
                if owner is not None and new_path is not None:
                    owner.reroute_pointer(committed,
                                          committed.rerouted(tuple(new_path)))
                if tr is not None:
                    tr.event("nack", router=current, action="reroute",
                             target=committed.dest_id.to_hex())
            else:
                if owner is not None:
                    owner.drop_pointer(committed)
                router.cache.invalidate_id(committed.dest_id)
                if tr is not None:
                    tr.event("nack", router=current, action="teardown",
                             target=committed.dest_id.to_hex())
            committed = None
            committed_dist = space.size
            continue

        if committed is None or current == committed.hosting_router:
            # Decision point: (re-)run Algorithm 2 at this router.
            match = router.best_match(greedy_dest,
                                      include_ephemeral=include_ephemeral)
            if match is None:
                outcome.reason = "no routing state"
                break
            if match.distance >= committed_dist and match.is_local:
                # The closest ID we know is resident right here: this VN is
                # the destination's predecessor.
                if mode == "lookup":
                    outcome.delivered = True
                    outcome.reason = "predecessor found"
                    outcome.final_vn = match.resident_vn
                    net.stats.charge_path(outcome.path, category)
                    if tr is not None:
                        tr.end(delivered=True, reason="predecessor found",
                               router=current)
                        trace.close_span(tr)
                    return outcome
                outcome.reason = "destination ID not found"
                break
            if match.distance >= committed_dist:
                outcome.reason = "no progress available"
                break
            if match.is_local:
                # A resident ID strictly closer than anything committed:
                # adopt its position and re-evaluate (its successors are
                # now candidates).
                if mode == "lookup" and _overshoots_all(net, match.resident_vn,
                                                        greedy_dest):
                    outcome.delivered = True
                    outcome.reason = "predecessor found"
                    outcome.final_vn = match.resident_vn
                    net.stats.charge_path(outcome.path, category)
                    if tr is not None:
                        tr.end(delivered=True, reason="predecessor found",
                               router=current)
                        trace.close_span(tr)
                    return outcome
                if tr is not None:
                    tr.decision(router=current, rule="local-adopt",
                                target=match.resident_vn.id.to_hex(),
                                distance=match.distance)
                committed = None
                committed_dist = match.distance
                continue
            pointer = net.validate_pointer(router, match.pointer)
            if pointer is None:
                # Stale source route with unreachable target: the pointer
                # was torn down; re-evaluate with it gone.
                continue
            committed = pointer
            committed_step = 0
            committed_dist = match.distance
            outcome.pointer_hops += 1
            outcome.used_cache = outcome.used_cache or pointer.kind == "cache"
            if tr is not None:
                tr.decision(router=current, rule=pointer.kind,
                            target=pointer.dest_id.to_hex(),
                            distance=match.distance)
            if pointer.n_hops == 0:
                # Zero-hop pointer: the target ID is resident at this very
                # router — adopt its ring position and re-decide locally.
                committed = None
                continue
        else:
            # Mid-source-route routers may shortcut onto a strictly closer
            # cached pointer (Section 4.1, "shortcuts if it observes a
            # cached pointer is numerically closer").
            shortcut = router.best_match(greedy_dest,
                                         include_ephemeral=include_ephemeral)
            if shortcut is not None and shortcut.distance < committed_dist:
                if tr is not None:
                    tr.event("shortcut", router=current,
                             distance=shortcut.distance)
                committed = None
                continue

        # Take one physical hop along the committed source route.
        next_router = committed.path[committed_step + 1]
        if not net.lsmap.is_link_up(current, next_router):
            # The route broke under us; repair from here or tear down.
            pointer = net.validate_pointer(router, committed, from_router=current)
            if tr is not None:
                tr.event("repair", router=current,
                         target=committed.dest_id.to_hex(),
                         repaired=pointer is not None)
            if pointer is None:
                committed = None
                committed_dist = space.size
                continue
            committed = pointer
            committed_step = 0
            next_router = committed.path[1]
        perf.counter("fwd.hops")
        outcome.latency_ms += net.lsmap.live_graph.edges[current, next_router]["latency_ms"]
        outcome.path.append(next_router)
        if tr is not None:
            tr.hop(frm=current, to=next_router)
        current = next_router
        committed_step += 1

    else:
        outcome.reason = "pointer hop limit exceeded (routing loop?)"

    outcome.delivered = False
    net.stats.charge_path(outcome.path, category)
    if tr is not None:
        tr.end(delivered=False, reason=outcome.reason, router=current)
        trace.close_span(tr)
    return outcome


def _overshoots_all(net: "IntraDomainNetwork", vn: VirtualNode,
                    greedy_dest: FlatId) -> bool:
    """True when none of ``vn``'s own pointers make further progress —
    i.e. ``vn`` is the greedy destination's predecessor."""
    mask = net.space.mask
    dest_iv = greedy_dest.value
    here = (dest_iv - vn.id.value) & mask
    for ptr in vn.successors:
        if ((dest_iv - ptr.dest_id.value) & mask) < here:
            return False
    return True
