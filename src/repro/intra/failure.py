"""Failure handling (paper Section 3.2).

Invariants maintained (quoting the paper): "(a) if there is a working
network-path between a pair of nodes (A, B), then ROFL ensures that A and
B are reachable from each other (b) if A has a pointer to B, and if either
B or the path to B fails, then A will delete its pointer."

* **Host failure** — the gateway detects a session timeout, sends
  teardowns to the ID's successors and predecessor, and a *directed
  flood* over the constrained set of routers that may hold cached state
  (the route record accumulated at join time).
* **Router failure** — hosts re-home via the pre-agreed failover list and
  rejoin; remote routers monitoring link-state advertisements delete
  pointers to IDs resident at unreachable routers.
* **Link failure without partition** — no ring changes: "the network map
  will find alternate paths"; cached routes over the link are invalidated.
"""

from __future__ import annotations

from typing import Iterable, List, Set, TYPE_CHECKING

from repro.idspace.identifier import FlatId
from repro.intra.virtualnode import Pointer, VirtualNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.intra.network import IntraDomainNetwork


def directed_flood_cost(net: "IntraDomainNetwork", origin: str,
                        targets: Iterable[str]) -> int:
    """Messages for a source-routed flood from ``origin`` covering
    ``targets``: the edge-union of shortest paths to each target (each
    tree edge carries the invalidation once)."""
    edges: Set[frozenset] = set()
    for target in targets:
        path = net.paths.hop_path(origin, target)
        if path is None:
            continue
        for a, b in zip(path, path[1:]):
            edges.add(frozenset((a, b)))
    return len(edges)


def host_failure(net: "IntraDomainNetwork", host_name: str) -> int:
    """Fail a host; returns the repair message count."""
    vn = net.hosts.pop(host_name, None)
    if vn is None:
        raise KeyError("unknown host {!r}".format(host_name))
    net.vn_index.pop(vn.id, None)
    net.host_records.pop(host_name, None)
    gateway = net.routers[vn.router]
    if gateway.hosts_id(vn.id):
        gateway.remove_virtual_node(vn.id)

    with net.stats.operation("host_failure", host=host_name) as op:
        if vn.ephemeral:
            _teardown_ephemeral(net, vn)
        else:
            _teardown_stable(net, vn)
        return op["messages"]


def _teardown_ephemeral(net: "IntraDomainNetwork", vn: VirtualNode) -> None:
    """An ephemeral ID only has state at its ring predecessor."""
    if vn.predecessor is None:
        return
    pred_vn = net.vn_index.get(vn.predecessor.dest_id)
    path = net.paths.hop_path(vn.router, vn.predecessor.hosting_router)
    if path is not None:
        net.stats.charge_path(path, "teardown")
    if pred_vn is not None and vn.id in pred_vn.ephemeral_children:
        del pred_vn.ephemeral_children[vn.id]
        net.routers[pred_vn.router].mark_dirty(pred_vn)


def _teardown_stable(net: "IntraDomainNetwork", vn: VirtualNode) -> None:
    # (1) Teardowns to every successor-group member and to the chain of
    # predecessors that may hold this ID in *their* successor groups (the
    # paper: "tear-down messages to each of the ID's successors and
    # predecessors" — up to group-size nodes counter-clockwise).
    notified: Set[str] = set()
    targets: List[Pointer] = list(vn.successors)
    predecessors: List[VirtualNode] = []
    walker = vn
    for _ in range(net.successor_group_size):
        if walker.predecessor is None:
            break
        prev = net.vn_index.get(walker.predecessor.dest_id)
        if prev is None or prev in predecessors or prev is vn:
            break
        predecessors.append(prev)
        walker = prev
    targets.extend(
        Pointer(prev.id, (vn.router,) if prev.router == vn.router
                else tuple(net.paths.hop_path(vn.router, prev.router)
                           or (vn.router,)), "teardown-target")
        for prev in predecessors)
    for ptr in targets:
        hosting = ptr.hosting_router
        if hosting in notified:
            continue
        notified.add(hosting)
        path = net.paths.hop_path(vn.router, hosting)
        if path is not None:
            net.stats.charge_path(path, "teardown")
    # Each notified predecessor drops the dead ID from its group.
    for prev in predecessors:
        if prev.drop_successor(vn.id):
            net.routers[prev.router].mark_dirty(prev)

    # (2) Directed flood invalidating cached pointers (constrained to the
    # route record + the shortest-path routers toward them).
    flood_targets = set(vn.cached_at) - {vn.router}
    cost = directed_flood_cost(net, vn.router, flood_targets)
    net.stats.charge_hops(cost, "teardown")
    for router_name in flood_targets:
        net.routers[router_name].cache.invalidate_id(vn.id)
    # Defensive sweep: caches the route record missed (e.g. seeded by
    # other hosts' control traffic) drop the dead ID too when the
    # link-state layer reports the hosting router's session gone.
    for router in net.routers.values():
        router.cache.invalidate_id(vn.id)

    # (3) Ring repair around the gap.
    pred_vn = (net.vn_index.get(vn.predecessor.dest_id)
               if vn.predecessor is not None else None)
    succ_ptr = vn.primary_successor()
    succ_vn = net.vn_index.get(succ_ptr.dest_id) if succ_ptr is not None else None

    if pred_vn is not None:
        if pred_vn.drop_successor(vn.id):
            net.routers[pred_vn.router].mark_dirty(pred_vn)
        # The teardown message carries the failed node's (accurate)
        # successor list; the predecessor merges it with its own group,
        # which may be stale — nodes that joined between the failed ID
        # and the predecessor's older entries are only known to the
        # failed node.  Then it sets up a route to its new primary.
        merged: List[Pointer] = [p for p in pred_vn.successors
                                 if net.id_is_live(p.dest_id)]
        for ptr in vn.successors:
            if ptr.dest_id == pred_vn.id or not net.id_is_live(ptr.dest_id):
                continue
            path = net.paths.hop_path(pred_vn.router, ptr.hosting_router)
            if path is None:
                continue
            merged.append(Pointer(ptr.dest_id, tuple(path), "successor"))
        merged.sort(key=lambda p: net.space.distance_cw(pred_vn.id, p.dest_id))
        pred_vn.set_successors(merged, net.successor_group_size)
        net.routers[pred_vn.router].mark_dirty(pred_vn)
        new_primary = pred_vn.primary_successor()
        if new_primary is not None:
            setup = net.paths.hop_path(pred_vn.router,
                                       new_primary.hosting_router)
            if setup is not None:
                net.stats.charge_path(setup, "repair")
                net.stats.charge_path(list(reversed(setup)), "repair")
        refill_successor_group(net, pred_vn)
        # Orphaned ephemeral children re-home to the predecessor.
        for eph_id, eph_ptr in vn.ephemeral_children.items():
            eph_vn = net.vn_index.get(eph_id)
            if eph_vn is None:
                continue
            path = net.paths.hop_path(pred_vn.router, eph_vn.router)
            if path is None:
                continue
            net.stats.charge_path(path, "teardown")
            pred_vn.ephemeral_children[eph_id] = Pointer(eph_id, tuple(path),
                                                         "ephemeral")
            back = net.paths.hop_path(eph_vn.router, pred_vn.router)
            if back is not None:
                eph_vn.predecessor = Pointer(pred_vn.id, tuple(back),
                                             "predecessor")
            net.routers[pred_vn.router].mark_dirty(pred_vn)

    if succ_vn is not None and pred_vn is not None and succ_vn is not pred_vn:
        if (succ_vn.predecessor is None
                or succ_vn.predecessor.dest_id == vn.id):
            path = net.paths.hop_path(succ_vn.router, pred_vn.router)
            if path is not None:
                succ_vn.predecessor = Pointer(pred_vn.id, tuple(path),
                                              "predecessor")
    elif succ_vn is not None and succ_vn is pred_vn:
        # Two-node ring collapsing to one.
        if succ_vn.predecessor is not None and succ_vn.predecessor.dest_id == vn.id:
            succ_vn.predecessor = None
        succ_vn.drop_successor(vn.id)
        net.routers[succ_vn.router].mark_dirty(succ_vn)


def refill_successor_group(net: "IntraDomainNetwork", vn: VirtualNode) -> None:
    """Extend a shrunken successor group from its tail.

    The paper (Section 3.2): the node "tries asking each of its successors
    S_i starting at the one furthest away to fill the gap at the end of
    its successor list".  Each ask/answer pair is charged.
    """
    guard = 0
    while len(vn.successors) < net.successor_group_size and guard < 16:
        guard += 1
        tail = vn.successors[-1] if vn.successors else None
        if tail is None:
            return
        tail_vn = net.vn_index.get(tail.dest_id)
        if tail_vn is None or tail_vn.ephemeral:
            return
        ask_path = net.paths.hop_path(vn.router, tail_vn.router)
        if ask_path is None:
            return
        net.stats.charge_path(ask_path, "repair")
        net.stats.charge_path(list(reversed(ask_path)), "repair")
        known = {p.dest_id for p in vn.successors} | {vn.id}
        grew = False
        for ptr in tail_vn.successors:
            if ptr.dest_id in known or not net.id_is_live(ptr.dest_id):
                continue
            path = net.paths.hop_path(vn.router, ptr.hosting_router)
            if path is None:
                continue
            vn.successors.append(Pointer(ptr.dest_id, tuple(path), "successor"))
            known.add(ptr.dest_id)
            grew = True
            if len(vn.successors) >= net.successor_group_size:
                break
        net.routers[vn.router].mark_dirty(vn)
        if not grew:
            return


def router_failure(net: "IntraDomainNetwork", router_name: str) -> int:
    """Fail a router: its resident hosts re-home and rejoin; the rest of
    the network deletes and repairs pointers through/to it.  Returns the
    total repair message count (rejoins included)."""
    if router_name not in net.routers:
        raise KeyError("unknown router {!r}".format(router_name))
    failed = net.routers[router_name]
    net.lsmap.fail_router(router_name)

    with net.stats.operation("router_failure", router=router_name) as op:
        # Remote state referencing the dead router goes first (LSA-driven,
        # no protocol messages: "routers also monitor link-state
        # advertisements and delete pointers to IDs residing at
        # unreachable routers").
        resident_ids = set(failed.vn_table.keys())
        net.vn_index.pop(failed.default_vn.id, None)
        purge_pointers_via(net, router_name, resident_ids)

        # Resident hosts re-home deterministically and rejoin.
        moved: List[VirtualNode] = [vn for vn in failed.vn_table.values()
                                    if not vn.is_default]
        for vn in moved:
            net.vn_index.pop(vn.id, None)
            if vn.host_name is not None:
                net.hosts.pop(vn.host_name, None)
        # Repair ring gaps left by the default VN and any hosts that
        # cannot rejoin, then rejoin hosts via their failover routers.
        repair_groups_everywhere(net)
        for vn in moved:
            record = net.host_records.get(vn.host_name)
            if record is None:
                continue
            target = net.failover_router(router_name, vn.host_name)
            if target is None:
                continue
            from repro.intra.ring import join_internal
            join_internal(net, record, via_router=target)
        return op["messages"]


def purge_pointers_via(net: "IntraDomainNetwork", dead_router: str,
                       dead_ids: Set[FlatId]) -> int:
    """Drop every pointer that traverses ``dead_router`` or targets an ID
    that was resident there.  Local operation (LSA-driven), free."""
    dropped = 0
    for router in net.routers.values():
        if router.name == dead_router:
            continue
        dropped += router.cache.invalidate_where(
            lambda p: p.traverses(dead_router) or p.dest_id in dead_ids)
        for vn in router.vn_table.values():
            before = len(vn.successors)
            vn.successors = [p for p in vn.successors
                             if not p.traverses(dead_router)
                             and p.dest_id not in dead_ids]
            if len(vn.successors) != before:
                router.mark_dirty(vn)
                dropped += before - len(vn.successors)
            doomed = [eid for eid, p in vn.ephemeral_children.items()
                      if p.traverses(dead_router) or eid in dead_ids]
            for eid in doomed:
                del vn.ephemeral_children[eid]
                router.mark_dirty(vn)
                dropped += 1
            if (vn.predecessor is not None
                    and (vn.predecessor.traverses(dead_router)
                         or vn.predecessor.dest_id in dead_ids)):
                vn.predecessor = None
                dropped += 1
    return dropped


def repair_groups_everywhere(net: "IntraDomainNetwork") -> None:
    """Re-splice the ring among live members after a router failure.

    A router failure may partition the physical network, in which case
    each connected component heals into its own consistent ring — the
    same machinery the partition experiments exercise, so this simply
    delegates to :func:`repro.intra.partition.heal_components` (which
    charges the gap-filling exchanges and refills shrunken groups)."""
    from repro.intra.partition import heal_components

    heal_components(net)


def link_failure(net: "IntraDomainNetwork", a: str, b: str) -> int:
    """Fail one link.  No ring changes — "the router need not make any
    changes on behalf of its resident IDs since the network map will find
    alternate paths" — but cached pointers over the link are invalidated.
    Returns the number of cache entries dropped."""
    net.lsmap.fail_link(a, b)
    dropped = 0
    for router in net.routers.values():
        dropped += router.cache.invalidate_where(lambda p: p.uses_link(a, b))
    return dropped
