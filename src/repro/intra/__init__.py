"""Intradomain ROFL (Section 3 of the paper).

Hosts' flat identifiers are *resident* at gateway routers, which maintain
virtual nodes on their behalf.  Resident IDs form a ring (successor /
predecessor pointers carrying router-level source routes); routing is
greedy on the identifier space; pointer caches cut stretch; failures are
repaired with teardowns, directed floods and — for partitions — a
zero-ID-driven ring-merge protocol.

Entry point: :class:`repro.intra.network.IntraDomainNetwork`.
"""

from repro.intra.network import IntraDomainNetwork
from repro.intra.virtualnode import VirtualNode, Pointer
from repro.intra.pointercache import PointerCache

__all__ = ["IntraDomainNetwork", "VirtualNode", "Pointer", "PointerCache"]
