"""Event-driven, message-level execution of the intradomain control plane.

The procedural paths in :mod:`repro.intra.ring` charge whole operations
synchronously; this module runs the *same protocol* as individual
messages over the discrete-event kernel — per-link latencies, in-flight
interleaving of concurrent joins, optional message loss with
gateway-side retransmission timers.  It exists to demonstrate (and test)
that the join protocol is correct as a dynamic distributed protocol, not
just as a sequence of atomic state updates:

* virtual nodes are registered *before* the predecessor lookup (Algorithm
  1 creates the VN first), so concurrent joiners are routable targets
  while their own state is still being assembled;
* predecessor-side splicing happens atomically when the join request is
  *processed* at the predecessor's router, serialising concurrent joins
  into the same ring gap by event order, exactly as a single-threaded
  router would;
* lost messages are recovered by retransmitting the whole exchange from
  the gateway ("the join request is idempotent": a re-run lookup finds
  the current predecessor, which may already include earlier splices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.intra.virtualnode import Pointer, VirtualNode
from repro.sim.engine import Event, EventLoop
from repro.topology.hosts import PlannedHost
from repro.util.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.intra.network import IntraDomainNetwork


@dataclass
class PendingJoin:
    """Book-keeping for one in-flight join."""

    host: PlannedHost
    vn: VirtualNode
    gateway: str
    started_at: float
    state: str = "lookup"           # lookup → setup → done | failed
    messages: int = 0
    retries: int = 0
    completed_at: Optional[float] = None
    timer: Optional[Event] = None
    on_done: Optional[Callable[["PendingJoin"], None]] = None

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed")

    @property
    def latency_ms(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


@dataclass
class _ControlPacket:
    """One control message moving hop by hop through the network."""

    kind: str                       # request | response | setup | ack
    pending: PendingJoin
    current: str
    target_router: Optional[str] = None     # for source-routed phases
    route: Optional[List[str]] = None
    step: int = 0
    committed: Optional[Pointer] = None
    committed_step: int = 0
    committed_dist: Optional[int] = None
    hops: int = 0
    payload: object = None


class ProtocolSimulator:
    """Runs message-level joins over an :class:`IntraDomainNetwork`."""

    def __init__(self, net: "IntraDomainNetwork", seed: int = 0,
                 loss_rate: float = 0.0, retransmit_ms: float = 250.0,
                 max_retries: int = 6):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.net = net
        self.loop = EventLoop()
        self.loss_rate = loss_rate
        self.retransmit_ms = retransmit_ms
        self.max_retries = max_retries
        self.rngs = RngRegistry(seed)
        self._rng = self.rngs.derive("protocol-sim")
        self.joins: List[PendingJoin] = []
        self.messages_sent = 0
        self.messages_lost = 0
        self.retransmissions = 0

    # -- public API ----------------------------------------------------------------

    def join_host(self, host: PlannedHost, via_router: Optional[str] = None,
                  on_done: Optional[Callable[[PendingJoin], None]] = None
                  ) -> PendingJoin:
        """Start one asynchronous join; completes as the loop runs."""
        from repro.idspace.crypto import authenticate
        gateway = via_router or host.attach_at
        if not self.net.lsmap.is_router_up(gateway):
            raise ValueError("gateway {} is down".format(gateway))
        challenge = "async:{}:{}".format(gateway, host.name).encode("utf-8")
        flat_id = authenticate(host.key_pair.prove_ownership(challenge),
                               self.net.authority)
        if flat_id in self.net.vn_index:
            raise ValueError("ID already joined")
        vn = VirtualNode(id=flat_id, router=gateway, host_name=host.name,
                         joining=True)
        # Algorithm 1 registers the virtual node before the lookup, so
        # concurrent joiners can be routed to mid-join; the ``joining``
        # flag keeps it out of other lookups' position candidates until
        # its own splice completes.
        self.net.routers[gateway].register_virtual_node(vn)
        self.net.vn_index[flat_id] = vn
        self.net.hosts[host.name] = vn
        self.net.host_records[host.name] = host

        pending = PendingJoin(host=host, vn=vn, gateway=gateway,
                              started_at=self.loop.now, on_done=on_done)
        self.joins.append(pending)
        self._launch_lookup(pending)
        return pending

    def run(self, until: Optional[float] = None) -> int:
        return self.loop.run(until=until)

    # -- message plumbing -------------------------------------------------------------

    #: Per-hop link-layer retransmissions before giving up on a hop and
    #: leaving recovery to the end-to-end timer.
    HOP_ARQ_RETRIES = 6

    def _hop(self, pkt: _ControlPacket, next_router: str,
             handler: Callable[[_ControlPacket], None],
             _attempt: int = 0) -> None:
        """Move ``pkt`` one physical hop, with latency and loss.

        Lost frames are retransmitted hop-by-hop (link-layer ARQ, as a
        real control plane would); only a hop that fails
        ``HOP_ARQ_RETRIES`` times in a row is abandoned to the
        end-to-end retransmission timer."""
        self.messages_sent += 1
        pkt.pending.messages += 1
        self.net.stats.charge_hops(1, "async-join")
        latency = self.net.lsmap.live_graph.edges[pkt.current,
                                                  next_router]["latency_ms"]
        if self._rng.random() < self.loss_rate:
            self.messages_lost += 1
            if _attempt >= self.HOP_ARQ_RETRIES:
                return  # hop abandoned; end-to-end timer recovers
            self.retransmissions += 1
            self.loop.schedule(3 * latency,
                               lambda: self._hop(pkt, next_router, handler,
                                                 _attempt + 1))
            return
        def arrive() -> None:
            pkt.current = next_router
            handler(pkt)
        self.loop.schedule(latency, arrive)

    # -- phase 1: greedy lookup --------------------------------------------------------

    def _launch_lookup(self, pending: PendingJoin) -> None:
        pkt = _ControlPacket(kind="request", pending=pending,
                             current=pending.gateway)
        pending.state = "lookup"
        self._arm_timer(pending)
        self._process_lookup(pkt)

    def _arm_timer(self, pending: PendingJoin) -> None:
        if pending.timer is not None:
            pending.timer.cancel()
        def fire() -> None:
            if pending.done:
                return
            pending.retries += 1
            if pending.retries > self.max_retries:
                pending.state = "failed"
                self._finish(pending)
                return
            # Phase-aware retransmission: if the response already arrived
            # (the successor group is built), only the setup/ack exchange
            # needs re-sending; otherwise re-run the idempotent lookup.
            if pending.state == "setup" and pending.vn.successors:
                self._arm_timer(pending)
                self._launch_setup(pending)
            else:
                self._launch_lookup(pending)
        pending.timer = self.loop.schedule(self.retransmit_ms, fire)

    def _process_lookup(self, pkt: _ControlPacket) -> None:
        """One greedy step of the join request at the current router.

        Mirrors :func:`repro.intra.forwarding.route`'s lookup mode, one
        event per physical hop: predecessors may only be declared at
        *decision points* (the start, or arrival at a committed pointer's
        hosting router); transit routers only shortcut when strictly
        closer.  Dead ends simply stall — the gateway's retransmission
        timer re-runs the idempotent lookup later, by which time blocking
        half-joined nodes have completed."""
        pending = pkt.pending
        if pending.done or pending.state != "lookup":
            return  # a retransmission already superseded this packet
        net = self.net
        space = net.space
        router = net.routers[pkt.current]
        greedy_dest = space.make(pending.vn.id.value - 1)

        match = router.best_match(greedy_dest, include_ephemeral=False)

        if pkt.committed is not None \
                and pkt.current == pkt.committed.hosting_router:
            # Arrived at the committed pointer's target.
            target_vn = router.vn_table.get(pkt.committed.dest_id)
            if target_vn is None or target_vn.joining or target_vn.ephemeral:
                return  # stale or mid-join: stall, timer will retry
            if match is not None and match.distance < pkt.committed_dist:
                pkt.committed = None  # something even closer is known here
            else:
                self._pred_found(pkt, target_vn)
                return

        if pkt.committed is None:
            # Decision point.
            if match is None:
                return  # no state here; timer will retry
            if pkt.committed_dist is not None \
                    and match.distance >= pkt.committed_dist:
                return  # stalled (e.g. the only progress was torn down)
            if match.is_local:
                # Closest known ID is resident right here and its own
                # pointers all overshoot: it is the predecessor.
                self._pred_found(pkt, match.resident_vn)
                return
            pointer = net.validate_pointer(router, match.pointer)
            if pointer is None:
                self.loop.schedule(0.0, lambda: self._process_lookup(pkt))
                return
            pkt.committed = pointer
            pkt.committed_step = 0
            pkt.committed_dist = match.distance
            if pointer.n_hops == 0:
                pkt.committed = None
                self.loop.schedule(0.0, lambda: self._process_lookup(pkt))
                return
        else:
            # Transit router: shortcut only onto strictly closer state.
            if match is not None and pkt.committed_dist is not None \
                    and match.distance < pkt.committed_dist:
                pkt.committed = None
                self.loop.schedule(0.0, lambda: self._process_lookup(pkt))
                return

        next_router = pkt.committed.path[pkt.committed_step + 1]
        pkt.committed_step += 1
        self._hop(pkt, next_router, self._process_lookup)

    # -- phase 2: splice + response ----------------------------------------------------

    def _merge_successor(self, owner: VirtualNode,
                         new_pointers: List[Pointer]) -> None:
        """Order-aware group merge.

        Concurrent joins into the same ring gap can be processed in
        either order, and a node may acquire "island" children while its
        own join is still in flight; a blind prepend would let the later
        splice shadow an earlier, closer one.  Merging and sorting by
        clockwise distance keeps the group correct under any event
        interleaving."""
        merged = [p for p in owner.successors
                  if self.net.id_is_live(p.dest_id)]
        merged.extend(p for p in new_pointers if p.dest_id != owner.id)
        merged.sort(key=lambda p: self.net.space.distance_cw(owner.id,
                                                             p.dest_id))
        owner.set_successors(merged, self.net.successor_group_size)
        self.net.routers[owner.router].mark_dirty(owner)

    def _pred_found(self, pkt: _ControlPacket, pred: VirtualNode) -> None:
        """The predecessor's router processes the request: it splices the
        new node in atomically and sends the response."""
        pending = pkt.pending
        net = self.net
        vn = pending.vn
        if pred.id == vn.id:
            # Routed back to ourselves (e.g. first host scenario handled
            # by the ring of default VNs, so this is a protocol error).
            pending.state = "failed"
            self._finish(pending)
            return

        inherited_targets = [(p.dest_id, p.hosting_router)
                             for p in pred.successors
                             if net.id_is_live(p.dest_id)]
        pred_path = net.paths.hop_path(pred.router, vn.router)
        if pred_path is None:
            return  # unreachable; retransmission will retry
        self._merge_successor(pred, [Pointer(vn.id, tuple(pred_path),
                                             "successor")])

        response = _ControlPacket(kind="response", pending=pending,
                                  current=pred.router,
                                  route=list(pred_path), step=0)
        pending.state = "setup"
        # Stash what the gateway needs to build its successor group.
        pending.vn.predecessor = Pointer(
            pred.id,
            tuple(net.paths.hop_path(vn.router, pred.router) or (vn.router,)),
            "predecessor")
        response.payload = (pred.id, inherited_targets)
        self._forward_source_routed(response, self._response_arrived)

    def _forward_source_routed(self, pkt: _ControlPacket,
                               handler: Callable[[_ControlPacket], None]) -> None:
        route = pkt.route or []
        if pkt.step >= len(route) - 1:
            handler(pkt)
            return
        next_router = route[pkt.step + 1]
        pkt.step += 1
        self._hop(pkt, next_router,
                  lambda p: self._forward_source_routed(p, handler))

    def _response_arrived(self, pkt: _ControlPacket) -> None:
        pending = pkt.pending
        if pending.done or pending.state != "setup":
            return
        net = self.net
        vn = pending.vn
        _, inherited_targets = pkt.payload
        group: List[Pointer] = []
        for dest_id, hosting in inherited_targets:
            if not net.id_is_live(dest_id):
                continue
            path = net.paths.hop_path(vn.router, hosting)
            if path is not None:
                group.append(Pointer(dest_id, tuple(path), "successor"))
        if not group and not vn.successors and vn.predecessor is not None:
            back = net.paths.hop_path(vn.router,
                                      vn.predecessor.hosting_router)
            if back is not None:
                group = [Pointer(vn.predecessor.dest_id, tuple(back),
                                 "successor")]
        # Merge rather than replace: children spliced onto this node while
        # its own join was in flight must survive.
        self._merge_successor(vn, group)

        self._launch_setup(pending)

    def _launch_setup(self, pending: PendingJoin) -> None:
        vn = pending.vn
        primary = vn.primary_successor()
        if primary is None:
            self._complete(pending)
            return
        setup = _ControlPacket(kind="setup", pending=pending,
                               current=vn.router,
                               route=list(primary.path), step=0)
        self._forward_source_routed(setup, self._setup_arrived)

    def _setup_arrived(self, pkt: _ControlPacket) -> None:
        pending = pkt.pending
        if pending.done:
            return
        net = self.net
        vn = pending.vn
        primary = vn.primary_successor()
        succ_vn = net.vn_index.get(primary.dest_id) if primary else None
        if succ_vn is not None and not succ_vn.ephemeral:
            back = net.paths.hop_path(succ_vn.router, vn.router)
            if back is not None:
                succ_vn.predecessor = Pointer(vn.id, tuple(back),
                                              "predecessor")
                net.routers[succ_vn.router].mark_dirty(succ_vn)
        ack = _ControlPacket(kind="ack", pending=pending, current=pkt.current,
                             route=list(reversed(pkt.route or [])), step=0)
        self._forward_source_routed(ack, lambda p: self._complete(p.pending))

    def _complete(self, pending: PendingJoin) -> None:
        if pending.done:
            return
        pending.state = "done"
        pending.completed_at = self.loop.now
        pending.vn.joining = False
        self.net.routers[pending.vn.router].mark_dirty(pending.vn)
        self._finish(pending)

    def _finish(self, pending: PendingJoin) -> None:
        if pending.timer is not None:
            pending.timer.cancel()
            pending.timer = None
        if pending.state == "failed":
            # Roll the half-joined state back out.
            net = self.net
            net.vn_index.pop(pending.vn.id, None)
            net.hosts.pop(pending.host.name, None)
            gateway = net.routers[pending.gateway]
            if gateway.hosts_id(pending.vn.id):
                gateway.remove_virtual_node(pending.vn.id)
        if pending.on_done is not None:
            pending.on_done(pending)
