"""Host mobility and graceful departure (paper Sections 1, 3.1, 6.2).

Mobility is the architectural motivation for routing on flat labels: a
host that moves keeps its identifier, and only routing state changes.
Two mechanisms from the paper:

* **Graceful leave/move** — unlike a failure (detected by timeout and
  repaired with teardown floods), a departing host's gateway router can
  hand the ring position over directly: the predecessor splices to the
  successor with one exchange, and cached state is left to expire via
  the lazy invariant-(b) teardown.  "Join overhead may be reduced
  further by … having the router maintain the virtual node when the
  host fails or moves temporarily" — the *parked* option below.
* **Move = leave + rejoin** — the measured cost the paper compares to
  join overhead ("the overhead triggered by host failure and mobility
  [is] comparable to join overhead").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.idspace.identifier import FlatId
from repro.intra import ring
from repro.intra.virtualnode import Pointer, VirtualNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.intra.network import IntraDomainNetwork


@dataclass
class MoveReceipt:
    """Measured cost of one host move."""

    host_name: str
    flat_id: FlatId
    old_router: str
    new_router: str
    leave_messages: int
    rejoin_messages: int
    parked: bool = False

    @property
    def total_messages(self) -> int:
        return self.leave_messages + self.rejoin_messages


def leave_host(net: "IntraDomainNetwork", host_name: str) -> int:
    """Graceful departure: splice predecessor → successor directly.

    Cheaper than failure recovery: the leaving node *tells* its
    neighbours (no timeout, no invalidation flood — caches expire lazily
    through the NACK teardown).  Returns the message cost.
    """
    vn = net.hosts.get(host_name)
    if vn is None:
        raise KeyError("unknown host {!r}".format(host_name))

    with net.stats.operation("leave", host=host_name) as op:
        if vn.ephemeral:
            _leave_ephemeral(net, vn)
        else:
            _leave_stable(net, vn)
        net.hosts.pop(host_name, None)
        net.vn_index.pop(vn.id, None)
        gateway = net.routers[vn.router]
        if gateway.hosts_id(vn.id):
            gateway.remove_virtual_node(vn.id)
        return op["messages"]


def _leave_ephemeral(net: "IntraDomainNetwork", vn: VirtualNode) -> None:
    if vn.predecessor is None:
        return
    pred_vn = net.vn_index.get(vn.predecessor.dest_id)
    path = net.paths.hop_path(vn.router, vn.predecessor.hosting_router)
    if path is not None:
        net.stats.charge_path(path, "leave")
    if pred_vn is not None and vn.id in pred_vn.ephemeral_children:
        del pred_vn.ephemeral_children[vn.id]
        net.routers[pred_vn.router].mark_dirty(pred_vn)


def _leave_stable(net: "IntraDomainNetwork", vn: VirtualNode) -> None:
    pred_vn = (net.vn_index.get(vn.predecessor.dest_id)
               if vn.predecessor is not None else None)
    succ_ptr = vn.primary_successor()
    succ_vn = net.vn_index.get(succ_ptr.dest_id) if succ_ptr else None

    # One goodbye message each way; the goodbye to the predecessor
    # carries the successor list so it can splice without a lookup.
    for target in (pred_vn, succ_vn):
        if target is None or target is vn:
            continue
        path = net.paths.hop_path(vn.router, target.router)
        if path is not None:
            net.stats.charge_path(path, "leave")

    if pred_vn is not None and pred_vn is not vn:
        if pred_vn.drop_successor(vn.id):
            net.routers[pred_vn.router].mark_dirty(pred_vn)
        merged = [p for p in pred_vn.successors if net.id_is_live(p.dest_id)]
        for ptr in vn.successors:
            if ptr.dest_id == pred_vn.id or not net.id_is_live(ptr.dest_id):
                continue
            path = net.paths.hop_path(pred_vn.router, ptr.hosting_router)
            if path is not None:
                merged.append(Pointer(ptr.dest_id, tuple(path), "successor"))
        merged.sort(key=lambda p: net.space.distance_cw(pred_vn.id, p.dest_id))
        pred_vn.set_successors(merged, net.successor_group_size)
        net.routers[pred_vn.router].mark_dirty(pred_vn)
        # Orphaned ephemeral children re-home to the predecessor.
        for eph_id in list(vn.ephemeral_children):
            eph_vn = net.vn_index.get(eph_id)
            if eph_vn is None:
                continue
            path = net.paths.hop_path(pred_vn.router, eph_vn.router)
            if path is None:
                continue
            net.stats.charge_path(path, "leave")
            pred_vn.ephemeral_children[eph_id] = Pointer(eph_id, tuple(path),
                                                         "ephemeral")
            back = net.paths.hop_path(eph_vn.router, pred_vn.router)
            if back is not None:
                eph_vn.predecessor = Pointer(pred_vn.id, tuple(back),
                                             "predecessor")
            net.routers[pred_vn.router].mark_dirty(pred_vn)

    if succ_vn is not None and pred_vn is not None and succ_vn is not vn \
            and succ_vn is not pred_vn:
        if succ_vn.predecessor is None or succ_vn.predecessor.dest_id == vn.id:
            path = net.paths.hop_path(succ_vn.router, pred_vn.router)
            if path is not None:
                succ_vn.predecessor = Pointer(pred_vn.id, tuple(path),
                                              "predecessor")
    elif succ_vn is pred_vn and succ_vn is not None:
        succ_vn.drop_successor(vn.id)
        if succ_vn.predecessor is not None and succ_vn.predecessor.dest_id == vn.id:
            succ_vn.predecessor = None
        net.routers[succ_vn.router].mark_dirty(succ_vn)


def move_host(net: "IntraDomainNetwork", host_name: str,
              new_router: str) -> MoveReceipt:
    """Move a host to a new gateway: graceful leave + rejoin.

    The identifier — and therefore every correspondent's notion of who
    the host *is* — never changes.
    """
    vn = net.hosts.get(host_name)
    if vn is None:
        raise KeyError("unknown host {!r}".format(host_name))
    if not net.lsmap.is_router_up(new_router):
        raise ValueError("target router {} is down".format(new_router))
    old_router = vn.router
    flat_id = vn.id
    ephemeral = vn.ephemeral

    leave_cost = leave_host(net, host_name)
    receipt = ring.join_with_id(net, flat_id, new_router, host_name,
                                ephemeral=ephemeral)
    record = net.host_records.get(host_name)
    if record is not None:
        # Keep the deterministic plan record pointing at the new home.
        from repro.topology.hosts import PlannedHost
        net.host_records[host_name] = PlannedHost(
            name=record.name, attach_at=new_router,
            key_pair=record.key_pair, ephemeral=record.ephemeral)
    return MoveReceipt(host_name=host_name, flat_id=flat_id,
                       old_router=old_router, new_router=new_router,
                       leave_messages=leave_cost,
                       rejoin_messages=receipt.messages)


def park_host(net: "IntraDomainNetwork", host_name: str) -> VirtualNode:
    """The paper's optimisation for temporary absence: "having the router
    maintain the virtual node when the host fails or moves temporarily".

    The virtual node stays in the ring (zero messages); only the local
    delivery leg is marked absent.  Returns the parked virtual node.
    """
    vn = net.hosts.get(host_name)
    if vn is None:
        raise KeyError("unknown host {!r}".format(host_name))
    vn.host_name = "(parked):" + host_name
    return vn


def unpark_host(net: "IntraDomainNetwork", host_name: str) -> VirtualNode:
    """Reattach a parked host at its maintained virtual node (free)."""
    vn = net.hosts.get(host_name)
    if vn is None or not (vn.host_name or "").startswith("(parked):"):
        raise KeyError("host {!r} is not parked".format(host_name))
    vn.host_name = host_name
    return vn
