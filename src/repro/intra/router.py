"""The ROFL hosting router (paper Sections 2.2, 3.1, 3.3).

Each router owns:

* a table of resident virtual nodes (``VN`` in Algorithm 2), always
  including the router's *default virtual node* whose ID is the router-ID
  — "its successors act as default routes if it has no other successors
  that it can use to make progress";
* a bounded :class:`PointerCache` (``PC`` in Algorithm 2);
* a lazily rebuilt sorted index over every ID the router knows (resident
  IDs, their successor groups, parked ephemeral IDs) so Algorithm 2's
  ``VN.best_match`` runs in ``O(log n)``.  The paper makes the matching
  observation for hardware: closest-ID match "can be implemented with
  minor modifications to routers that support longest-prefix match".

Callers that mutate virtual-node pointer state directly (the ring and
failure machinery) must call :meth:`RoflRouter.mark_dirty` afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.idspace.identifier import FlatId, RingSpace
from repro.intra.pointercache import PointerCache
from repro.intra.virtualnode import Pointer, VirtualNode
from repro.util.ringmap import SortedRingMap


@dataclass
class BestMatch:
    """Result of a router's local best-match evaluation."""

    dest_id: FlatId
    #: ``None`` when the match is a locally resident ID (no hop needed).
    pointer: Optional[Pointer]
    resident_vn: Optional[VirtualNode]
    distance: int

    @property
    def is_local(self) -> bool:
        return self.resident_vn is not None


@dataclass
class _Candidate:
    """One indexed ID the router can make greedy progress toward."""

    vn: Optional[VirtualNode] = None       # set when the ID is resident here
    pointer: Optional[Pointer] = None      # set when reached via a source route
    pointer_ephemeral: bool = False        # pointer parks an ephemeral child


class RoflRouter:
    """One hosting router: resident virtual nodes plus a pointer cache."""

    def __init__(self, name: str, space: RingSpace, cache_entries: int = 0):
        self.name = name
        self.space = space
        self.router_id = space.hash_of(("router:" + name).encode("utf-8"))
        self.vn_table: Dict[FlatId, VirtualNode] = {}
        self.cache = PointerCache(space, cache_entries)
        self.default_vn = VirtualNode(id=self.router_id, router=name)
        self.vn_table[self.router_id] = self.default_vn
        self._index: Optional[SortedRingMap] = None

    # -- virtual-node management ------------------------------------------------

    def register_virtual_node(self, vn: VirtualNode) -> None:
        """Line 3 of Algorithm 1."""
        if vn.id in self.vn_table:
            raise ValueError("ID {} already resident at {}".format(vn.id, self.name))
        if vn.router != self.name:
            raise ValueError("virtual node belongs to another router")
        self.vn_table[vn.id] = vn
        self.mark_dirty()

    def remove_virtual_node(self, vn_id: FlatId) -> VirtualNode:
        if vn_id == self.router_id:
            raise ValueError("cannot remove the default virtual node")
        vn = self.vn_table.pop(vn_id)
        self.mark_dirty()
        return vn

    def resident_vns(self, include_ephemeral: bool = True) -> List[VirtualNode]:
        return [vn for vn in self.vn_table.values()
                if include_ephemeral or not vn.ephemeral]

    def hosts_id(self, vn_id: FlatId) -> bool:
        return vn_id in self.vn_table

    # -- candidate index -----------------------------------------------------------

    def mark_dirty(self) -> None:
        """Invalidate the candidate index after any pointer-state change."""
        self._index = None

    def _ensure_index(self) -> SortedRingMap:
        if self._index is not None:
            return self._index
        index = SortedRingMap(self.space)

        def entry_for(flat_id: FlatId) -> _Candidate:
            cand = index.get(flat_id)
            if cand is None:
                cand = _Candidate()
                index.insert(flat_id, cand)
            return cand

        for vn in self.vn_table.values():
            entry_for(vn.id).vn = vn
        for vn in self.vn_table.values():
            if vn.ephemeral:
                continue
            for ptr in vn.successors:
                cand = entry_for(ptr.dest_id)
                if cand.pointer is None:
                    cand.pointer = ptr
            for eph_id, ptr in vn.ephemeral_children.items():
                cand = entry_for(eph_id)
                if cand.pointer is None:
                    cand.pointer = ptr
                    cand.pointer_ephemeral = True
        self._index = index
        return index

    # -- Algorithm 2 lookups -------------------------------------------------------

    def vn_best_match(self, dest: FlatId,
                      include_ephemeral: bool = True) -> Optional[BestMatch]:
        """``VN.best_match``: the closest ID to ``dest`` (not past it) among
        all resident IDs, their successor groups, and parked ephemeral IDs.

        "Closest, not past" on a circle is the candidate minimising the
        clockwise distance to the destination.
        """
        index = self._ensure_index()
        for cand_id in index.iter_predecessors(dest):
            cand = index[cand_id]
            dist = self.space.distance_cw(cand_id, dest)
            if cand.vn is not None and (include_ephemeral
                                        or not (cand.vn.ephemeral
                                                or cand.vn.joining)):
                return BestMatch(cand_id, None, cand.vn, dist)
            if cand.pointer is not None and (include_ephemeral
                                             or not cand.pointer_ephemeral):
                return BestMatch(cand_id, cand.pointer, None, dist)
        return None

    def vn_best_match_scan(self, dest: FlatId,
                           include_ephemeral: bool = True) -> Optional[BestMatch]:
        """Reference brute-force implementation of :meth:`vn_best_match`;
        the property tests cross-check the index against it."""
        best: Optional[BestMatch] = None

        def consider(cand_id: FlatId, pointer: Optional[Pointer],
                     vn: Optional[VirtualNode]) -> None:
            nonlocal best
            dist = self.space.distance_cw(cand_id, dest)
            if best is None or dist < best.distance or (
                    dist == best.distance and vn is not None):
                best = BestMatch(cand_id, pointer, vn, dist)

        for vn in self.vn_table.values():
            if include_ephemeral or not (vn.ephemeral or vn.joining):
                consider(vn.id, None, vn)
            if vn.ephemeral:
                continue
            for ptr in vn.successors:
                consider(ptr.dest_id, ptr, None)
            if include_ephemeral:
                for eph_id, ptr in vn.ephemeral_children.items():
                    consider(eph_id, ptr, None)
        return best

    def cache_best_match(self, dest: FlatId,
                         better_than: Optional[int] = None) -> Optional[BestMatch]:
        """``PC.best_match``, returned only if strictly better (closer to
        ``dest``) than ``better_than``."""
        ptr = self.cache.best_match(dest)
        if ptr is None:
            return None
        dist = self.space.distance_cw(ptr.dest_id, dest)
        if better_than is not None and dist >= better_than:
            return None
        return BestMatch(ptr.dest_id, ptr, None, dist)

    def best_match(self, dest: FlatId,
                   include_ephemeral: bool = True) -> Optional[BestMatch]:
        """Combined Algorithm 2 decision: VN state first, cache shortcut if
        it is numerically closer (lines 5–10)."""
        vn_match = self.vn_best_match(dest, include_ephemeral=include_ephemeral)
        threshold = vn_match.distance if vn_match is not None else None
        cache_match = self.cache_best_match(dest, better_than=threshold)
        return cache_match or vn_match

    # -- pointer upkeep ---------------------------------------------------------------

    def drop_pointer(self, pointer: Pointer) -> None:
        """Remove a dead pointer wherever this router holds it."""
        self.cache.invalidate_id(pointer.dest_id)
        for vn in self.vn_table.values():
            if vn.drop_successor(pointer.dest_id):
                self.mark_dirty()
            if pointer.dest_id in vn.ephemeral_children:
                del vn.ephemeral_children[pointer.dest_id]
                self.mark_dirty()

    def reroute_pointer(self, old: Pointer, new: Pointer) -> None:
        """Swap in a repaired source route for an existing pointer."""
        self.cache.replace(new)
        for vn in self.vn_table.values():
            for i, ptr in enumerate(vn.successors):
                if ptr is old or ptr.dest_id == new.dest_id:
                    vn.successors[i] = new
                    self.mark_dirty()
            if new.dest_id in vn.ephemeral_children:
                vn.ephemeral_children[new.dest_id] = new
                self.mark_dirty()
            if vn.predecessor is not None and vn.predecessor.dest_id == new.dest_id:
                vn.predecessor = new

    # -- state accounting (Fig 6c) ---------------------------------------------------

    def state_entries(self, include_cache: bool = True) -> int:
        total = sum(vn.state_entries() for vn in self.vn_table.values())
        if include_cache:
            total += len(self.cache)
        return total

    def __repr__(self) -> str:
        return "RoflRouter({!r}, resident={}, cache={})".format(
            self.name, len(self.vn_table), len(self.cache))
