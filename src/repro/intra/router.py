"""The ROFL hosting router (paper Sections 2.2, 3.1, 3.3).

Each router owns:

* a table of resident virtual nodes (``VN`` in Algorithm 2), always
  including the router's *default virtual node* whose ID is the router-ID
  — "its successors act as default routes if it has no other successors
  that it can use to make progress";
* a bounded :class:`PointerCache` (``PC`` in Algorithm 2);
* an *incrementally maintained* sorted index over every ID the router
  knows (resident IDs, their successor groups, parked ephemeral IDs) so
  Algorithm 2's ``VN.best_match`` runs in ``O(log n)``.  The paper makes
  the matching observation for hardware: closest-ID match "can be
  implemented with minor modifications to routers that support
  longest-prefix match".

Index maintenance: the index tracks, per resident virtual node, exactly
which keys that VN contributed (its own ID plus its pointer targets).
Callers that mutate one virtual node's pointer state directly (the ring
and failure machinery) call ``mark_dirty(vn)`` afterwards; only that
VN's contribution is diffed on the next lookup — an O(group size)
refresh instead of the full O(resident state) rebuild the seed
implementation performed.  ``mark_dirty()`` with no argument remains the
big hammer (full rebuild) for bulk mutations.
"""

from __future__ import annotations

import itertools
from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.idspace.identifier import FlatId, RingSpace
from repro.intra.pointercache import PointerCache
from repro.intra.virtualnode import Pointer, VirtualNode
from repro.obs import trace
from repro.util import perf
from repro.util.ringmap import ColumnarRingIndex


@dataclass
class BestMatch:
    """Result of a router's local best-match evaluation."""

    dest_id: FlatId
    #: ``None`` when the match is a locally resident ID (no hop needed).
    pointer: Optional[Pointer]
    resident_vn: Optional[VirtualNode]
    distance: int

    @property
    def is_local(self) -> bool:
        return self.resident_vn is not None


@dataclass
class _Candidate:
    """One indexed ID the router can make greedy progress toward.

    ``ptrs`` holds every pointer contribution targeting this key as
    ``(owner_seq, cand_seq, pointer, ephemeral)`` tuples kept sorted, so
    ``ptrs[0]`` is the same "first pointer wins" entry the seed's full
    rebuild produced (owners in registration order, each owner's
    candidates in successor-group order).
    """

    vn: Optional[VirtualNode] = None       # set when the ID is resident here
    ptrs: List[tuple] = field(default_factory=list)


class RoflRouter:
    """One hosting router: resident virtual nodes plus a pointer cache."""

    def __init__(self, name: str, space: RingSpace, cache_entries: int = 0):
        self.name = name
        self.space = space
        self.router_id = space.hash_of(("router:" + name).encode("utf-8"))
        self.vn_table: Dict[FlatId, VirtualNode] = {}
        self.cache = PointerCache(space, cache_entries)
        self.default_vn = VirtualNode(id=self.router_id, router=name)
        self.vn_table[self.router_id] = self.default_vn

        # -- incremental candidate index state --
        self._index = ColumnarRingIndex(space)
        self._seq = itertools.count()
        self._owner_seq: Dict[int, int] = {}    # vn.id.value -> registration seq
        self._iv_table: Dict[int, VirtualNode] = {}  # vn.id.value -> resident VN
        self._contrib: Dict[int, tuple] = {}    # vn.id.value -> (seq, [key values])
        self._dirty_owners: set = set()         # vn.id.values needing a re-diff
        self._dirty_all = True                  # full rebuild pending

        self._iv_table[self.router_id.value] = self.default_vn
        self._owner_seq[self.router_id.value] = next(self._seq)
        #: Monotonic flush-epoch counter (see :class:`RoflAS.flush_epoch`).
        self.flush_epoch = 0

    # -- serialization ------------------------------------------------------------

    #: Derived candidate-index state, rebuilt from ``vn_table`` on load
    #: (mirrors :class:`repro.inter.asnode.RoflAS`): dropping it keeps
    #: snapshots lean and the canonical state hash independent of lookup
    #: history (flush counts depend on read traffic, not routing state).
    _DERIVED_FIELDS = ("_index", "_seq", "_owner_seq", "_iv_table",
                       "_contrib", "_dirty_owners", "_dirty_all")

    def __getstate__(self):
        state = self.__dict__.copy()
        for name in self._DERIVED_FIELDS:
            state.pop(name, None)
        state["flush_epoch"] = 0
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._index = ColumnarRingIndex(self.space)
        self._seq = itertools.count()
        self._owner_seq = {}
        self._iv_table = {vn.id.value: vn for vn in self.vn_table.values()}
        self._contrib = {}
        self._dirty_owners = set()
        self._dirty_all = True
        self.flush_epoch = 0

    # -- virtual-node management ------------------------------------------------

    def register_virtual_node(self, vn: VirtualNode) -> None:
        """Line 3 of Algorithm 1."""
        if vn.id in self.vn_table:
            raise ValueError("ID {} already resident at {}".format(vn.id, self.name))
        if vn.router != self.name:
            raise ValueError("virtual node belongs to another router")
        self.vn_table[vn.id] = vn
        iv = vn.id.value
        self._iv_table[iv] = vn
        self._owner_seq[iv] = next(self._seq)
        self.mark_dirty(vn)

    def remove_virtual_node(self, vn_id: FlatId) -> VirtualNode:
        if vn_id == self.router_id:
            raise ValueError("cannot remove the default virtual node")
        vn = self.vn_table.pop(vn_id)
        iv = vn_id.value
        self._iv_table.pop(iv, None)
        self._owner_seq.pop(iv, None)
        if not self._dirty_all:
            self._dirty_owners.add(iv)
        return vn

    def resident_vns(self, include_ephemeral: bool = True) -> List[VirtualNode]:
        return [vn for vn in self.vn_table.values()
                if include_ephemeral or not vn.ephemeral]

    def hosts_id(self, vn_id: FlatId) -> bool:
        return vn_id in self.vn_table

    # -- candidate index -----------------------------------------------------------

    def mark_dirty(self, vn: Optional[VirtualNode] = None) -> None:
        """Note a pointer-state change so the index re-diffs lazily.

        With ``vn`` given, only that virtual node's contribution is
        refreshed on the next lookup; with no argument the whole index is
        rebuilt (bulk or unknown mutations).
        """
        if vn is None:
            self._dirty_all = True
            self._dirty_owners.clear()
        elif not self._dirty_all:
            perf.counter("router.index.marks")
            self._dirty_owners.add(vn.id.value)

    def _entry_for(self, key_iv: int) -> _Candidate:
        cand = self._index.get(key_iv)
        if cand is None:
            cand = _Candidate()
            self._index.set(key_iv, cand)
        return cand

    def _add_contrib(self, vn: VirtualNode) -> None:
        """Insert one VN's keys: its resident ID plus its pointer targets."""
        iv = vn.id.value
        seq = self._owner_seq[iv]
        keys = [iv]
        self._entry_for(iv).vn = vn
        if not vn.ephemeral:
            cand_seq = 0
            for ptr in vn.successors:
                dest_iv = ptr.dest_id.value
                insort(self._entry_for(dest_iv).ptrs,
                       (seq, cand_seq, ptr, False))
                keys.append(dest_iv)
                cand_seq += 1
            for eph_id, ptr in vn.ephemeral_children.items():
                eph_iv = eph_id.value
                insort(self._entry_for(eph_iv).ptrs,
                       (seq, cand_seq, ptr, True))
                keys.append(eph_iv)
                cand_seq += 1
        self._contrib[iv] = (seq, keys)

    def _remove_contrib(self, owner_iv: int) -> None:
        """Remove every key contribution a (possibly departed) VN made."""
        record = self._contrib.pop(owner_iv, None)
        if record is None:
            return
        seq, keys = record
        index = self._index
        for key_iv in keys:
            cand = index.get(key_iv)
            if cand is None:
                continue
            if key_iv == owner_iv and cand.vn is not None \
                    and cand.vn.id.value == owner_iv:
                cand.vn = None
            if cand.ptrs:
                cand.ptrs = [t for t in cand.ptrs if t[0] != seq]
            if cand.vn is None and not cand.ptrs:
                index.delete(key_iv)

    def _flush_index(self) -> None:
        if self._dirty_all:
            with perf.timed("router.index.flush"):
                perf.counter("router.index.rebuild")
                self.flush_epoch += 1
                self._index = ColumnarRingIndex(self.space)
                self._contrib = {}
                self._seq = itertools.count()
                self._owner_seq = {vn.id.value: next(self._seq)
                                   for vn in self.vn_table.values()}
                for vn in self.vn_table.values():
                    self._add_contrib(vn)
                self._dirty_all = False
                self._dirty_owners.clear()
        elif self._dirty_owners:
            with perf.timed("router.index.flush"):
                perf.counter("router.index.refresh.flushes")
                perf.counter("router.index.refresh.owners",
                             len(self._dirty_owners))
                self.flush_epoch += 1
                for owner_iv in self._dirty_owners:
                    self._remove_contrib(owner_iv)
                    vn = self._iv_table.get(owner_iv)
                    if vn is not None:
                        self._add_contrib(vn)
                self._dirty_owners.clear()

    def flush_index(self) -> None:
        """Apply any pending index maintenance now instead of lazily on
        the next lookup — benchmarks call this between their join and
        send phases so deferred flush storms are charged to the phase
        that caused them."""
        self._flush_index()

    # -- Algorithm 2 lookups -------------------------------------------------------

    def vn_best_match(self, dest: FlatId,
                      include_ephemeral: bool = True) -> Optional[BestMatch]:
        """``VN.best_match``: the closest ID to ``dest`` (not past it) among
        all resident IDs, their successor groups, and parked ephemeral IDs.

        "Closest, not past" on a circle is the candidate minimising the
        clockwise distance to the destination; the scan below runs
        entirely on raw int values (no ``FlatId`` allocation per hop).
        """
        self._flush_index()
        index = self._index
        ivalues, candidates = index.columns()
        n = len(ivalues)
        if not n:
            return None
        dest_iv = dest.value
        mask = self.space.mask
        start = (index.rank_right(dest_iv) - 1) % n
        for offset in range(n):
            position = (start - offset) % n
            iv = ivalues[position]
            cand = candidates[position]
            vn = cand.vn
            if vn is not None and (include_ephemeral
                                   or not (vn.ephemeral or vn.joining)):
                return BestMatch(vn.id, None, vn, (dest_iv - iv) & mask)
            if cand.ptrs:
                first = cand.ptrs[0]
                if include_ephemeral or not first[3]:
                    ptr = first[2]
                    return BestMatch(ptr.dest_id, ptr, None,
                                     (dest_iv - iv) & mask)
        return None

    def vn_best_match_scan(self, dest: FlatId,
                           include_ephemeral: bool = True) -> Optional[BestMatch]:
        """Reference brute-force implementation of :meth:`vn_best_match`;
        the property tests cross-check the index against it."""
        best: Optional[BestMatch] = None

        def consider(cand_id: FlatId, pointer: Optional[Pointer],
                     vn: Optional[VirtualNode]) -> None:
            nonlocal best
            dist = self.space.distance_cw(cand_id, dest)
            if best is None or dist < best.distance or (
                    dist == best.distance and vn is not None):
                best = BestMatch(cand_id, pointer, vn, dist)

        for vn in self.vn_table.values():
            if include_ephemeral or not (vn.ephemeral or vn.joining):
                consider(vn.id, None, vn)
            if vn.ephemeral:
                continue
            for ptr in vn.successors:
                consider(ptr.dest_id, ptr, None)
            if include_ephemeral:
                for eph_id, ptr in vn.ephemeral_children.items():
                    consider(eph_id, ptr, None)
        return best

    def cache_best_match(self, dest: FlatId,
                         better_than: Optional[int] = None) -> Optional[BestMatch]:
        """``PC.best_match``, returned only if strictly better (closer to
        ``dest``) than ``better_than``."""
        ptr = self.cache.best_match(dest)
        if ptr is None:
            if trace.ENABLED:
                trace.event_in_current("cache.miss", router=self.name,
                                       dest=dest.to_hex())
            return None
        dist = self.space.distance_cw_i(ptr.dest_id.value, dest.value)
        if better_than is not None and dist >= better_than:
            if trace.ENABLED:
                trace.event_in_current("cache.reject", router=self.name,
                                       dest=dest.to_hex(),
                                       target=ptr.dest_id.to_hex())
            return None
        if trace.ENABLED:
            trace.event_in_current("cache.hit", router=self.name,
                                   dest=dest.to_hex(),
                                   target=ptr.dest_id.to_hex())
        return BestMatch(ptr.dest_id, ptr, None, dist)

    def best_match(self, dest: FlatId,
                   include_ephemeral: bool = True) -> Optional[BestMatch]:
        """Combined Algorithm 2 decision: VN state first, cache shortcut if
        it is numerically closer (lines 5–10)."""
        vn_match = self.vn_best_match(dest, include_ephemeral=include_ephemeral)
        threshold = vn_match.distance if vn_match is not None else None
        cache_match = self.cache_best_match(dest, better_than=threshold)
        return cache_match or vn_match

    # -- pointer upkeep ---------------------------------------------------------------

    def drop_pointer(self, pointer: Pointer) -> None:
        """Remove a dead pointer wherever this router holds it."""
        self.cache.invalidate_id(pointer.dest_id)
        for vn in self.vn_table.values():
            changed = vn.drop_successor(pointer.dest_id)
            if pointer.dest_id in vn.ephemeral_children:
                del vn.ephemeral_children[pointer.dest_id]
                changed = True
            if changed:
                self.mark_dirty(vn)

    def reroute_pointer(self, old: Pointer, new: Pointer) -> None:
        """Swap in a repaired source route for an existing pointer."""
        self.cache.replace(new)
        for vn in self.vn_table.values():
            changed = False
            for i, ptr in enumerate(vn.successors):
                if ptr is old or ptr.dest_id == new.dest_id:
                    vn.successors[i] = new
                    changed = True
            if new.dest_id in vn.ephemeral_children:
                vn.ephemeral_children[new.dest_id] = new
                changed = True
            if changed:
                self.mark_dirty(vn)
            if vn.predecessor is not None and vn.predecessor.dest_id == new.dest_id:
                vn.predecessor = new

    # -- state accounting (Fig 6c) ---------------------------------------------------

    def state_entries(self, include_cache: bool = True) -> int:
        total = sum(vn.state_entries() for vn in self.vn_table.values())
        if include_cache:
            total += len(self.cache)
        return total

    def __repr__(self) -> str:
        return "RoflRouter({!r}, resident={}, cache={})".format(
            self.name, len(self.vn_table), len(self.cache))
