"""Virtual nodes and pointers (paper Sections 2.2 and 3.1).

A hosting router "spawns a virtual node vn(id_a) that will hold the
routing state with respect to this host's identifier".  A virtual node
owns:

* a *successor group* — ordered pointers to the next IDs clockwise, each
  carrying a router-level source route ("to increase resilience to ID
  failure, nodes can hold multiple successors");
* a predecessor pointer;
* for the consistency machinery, the set of routers known to cache state
  about this ID ("this list is stored by the router hosting the
  destination ID") and any ephemeral IDs parked on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.idspace.identifier import FlatId, RingSpace

#: Default successor-group size (successor + its successors).
DEFAULT_SUCCESSOR_GROUP = 4


@dataclass
class Pointer:
    """A directed edge in identifier space, realised as a source route.

    ``path`` is the hop-by-hop router route from the owner's hosting
    router (``path[0]``) to the target ID's hosting router (``path[-1]``).
    A host-local delivery pointer has a length-1 path.
    """

    dest_id: FlatId
    path: Tuple[str, ...]
    kind: str = "successor"  # "successor" | "predecessor" | "cache" | "ephemeral"

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("pointer needs a non-empty source route")

    @property
    def owner_router(self) -> str:
        return self.path[0]

    @property
    def hosting_router(self) -> str:
        return self.path[-1]

    @property
    def n_hops(self) -> int:
        return len(self.path) - 1

    def traverses(self, router: str) -> bool:
        return router in self.path

    def uses_link(self, a: str, b: str) -> bool:
        return any({x, y} == {a, b} for x, y in zip(self.path, self.path[1:]))

    def rerouted(self, new_path: Tuple[str, ...]) -> "Pointer":
        return Pointer(dest_id=self.dest_id, path=tuple(new_path), kind=self.kind)


@dataclass
class VirtualNode:
    """Routing state a hosting router keeps for one resident identifier."""

    id: FlatId
    router: str
    host_name: Optional[str] = None   # None for a router's default VN
    ephemeral: bool = False
    #: True while an (asynchronous) join is still in flight: the ID is
    #: already resident and deliverable, but may not yet serve as a ring
    #: position for control lookups (like ephemeral IDs, it "cannot serve
    #: as successor or predecessor" until fully joined).
    joining: bool = False
    successors: List[Pointer] = field(default_factory=list)
    predecessor: Optional[Pointer] = None
    #: Ephemeral IDs parked at this VN (we are their ring predecessor).
    ephemeral_children: Dict[FlatId, Pointer] = field(default_factory=dict)
    #: Routers that may hold cached pointers naming this ID — the route
    #: record used to direct the host-failure invalidation flood.
    cached_at: Set[str] = field(default_factory=set)

    @property
    def is_default(self) -> bool:
        """Is this the router's own default virtual node (Section 3.1)?"""
        return self.host_name is None and not self.ephemeral

    def primary_successor(self) -> Optional[Pointer]:
        return self.successors[0] if self.successors else None

    def successor_ids(self) -> List[FlatId]:
        return [ptr.dest_id for ptr in self.successors]

    def set_successors(self, pointers: List[Pointer], group_size: int) -> None:
        """Install a successor group, deduplicated, capped at ``group_size``."""
        seen: Set[FlatId] = {self.id}
        kept: List[Pointer] = []
        for ptr in pointers:
            if ptr.dest_id in seen:
                continue
            seen.add(ptr.dest_id)
            kept.append(ptr)
            if len(kept) >= group_size:
                break
        self.successors = kept

    def push_successor(self, pointer: Pointer, group_size: int) -> None:
        """Prepend a new immediate successor, shifting the group down."""
        self.set_successors([pointer] + self.successors, group_size)

    def drop_successor(self, dest_id: FlatId) -> bool:
        """Remove a failed ID from the group; True if it was present."""
        before = len(self.successors)
        self.successors = [p for p in self.successors if p.dest_id != dest_id]
        return len(self.successors) != before

    def knows(self, space: RingSpace) -> List[FlatId]:
        """All IDs this VN can make greedy progress toward: itself, its
        successor group and any parked ephemeral children."""
        ids = [self.id]
        ids.extend(self.successor_ids())
        ids.extend(self.ephemeral_children.keys())
        return ids

    def state_entries(self) -> int:
        """Forwarding-state entries this VN consumes (Fig 6c accounting)."""
        return (1  # the resident ID itself
                + len(self.successors)
                + (1 if self.predecessor is not None else 0)
                + len(self.ephemeral_children))

    def __repr__(self) -> str:
        return "VirtualNode({}@{}, succ={}, eph={})".format(
            self.id, self.router, len(self.successors), self.ephemeral)
