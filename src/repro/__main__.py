"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``figures [--full] [--only PREFIX]`` — regenerate the paper's
  evaluation figures (same as ``examples/reproduce_paper.py``).
* ``workload <scenario.json|builtin> [--seed N] [--json PATH]`` — run a
  declarative churn/traffic/fault scenario (``--list`` names builtins).
  ``--trace-out out.jsonl`` records a causal packet trace; ``--probes``
  runs live invariant probes; ``--metrics-out m.jsonl`` streams one
  JSONL line of perf-registry deltas per ``--metrics-window`` of
  virtual time (deterministic: same seed, byte-identical stream).
* ``trace`` — route packets under the ``repro.obs`` tracer and render
  each decision tree with per-hop stretch attribution; ``--scenario``
  replays a workload window instead.
* ``serve [--kind intra|inter] [--hosts N] [--snapshot PATH] [--tcp PORT]``
  — build (or warm-load) a network once and answer line-delimited JSON
  requests against it (``repro.serve``; ``--requests FILE`` scripts a
  session for tests and CI).
* ``snapshot {save,info,verify} PATH`` — checkpoint/restore of complete
  network state with canonical state hashing (``repro.snapshot``).
* ``compare-stretch [--profile ISP] [--hosts N] [--json PATH]`` — run
  the ROFL-vs-Disco (vs CMU-ETHERNET / OSPF) stretch head-to-head with
  the stretch-bound probe live; exits nonzero on any bound breach,
  probe violation, or attribution mismatch (the CI gate).
* ``report [--metrics m.jsonl] [--perf result.json] [--bench
  BENCH_scaling.json] [--compare compare_stretch.json] [--out
  report.html]`` — render telemetry artifacts into one self-contained
  HTML or markdown document (``repro.obs.report``).
* ``quickstart`` — a 30-second end-to-end tour of the intradomain system.
* ``info`` — package, paper, and inventory summary.

``--help`` lists every subcommand; an unknown subcommand exits with
status 2 and a usage message on stderr.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.harness import experiments as E
    from repro.harness import report as R
    from repro.topology.isp import TCAM_ENTRIES

    k = 3 if args.full else 1
    plan = {
        "fig5a": (lambda: E.fig5a_intra_join_overhead(
            host_counts=(10, 100, 1000 * k)), R.format_fig5a),
        "fig5b": (lambda: E.fig5b_join_overhead_cdf(n_hosts=500 * k),
                  R.format_fig5b),
        "fig5c": (lambda: E.fig5c_join_latency_cdf(n_hosts=300 * k),
                  R.format_fig5c),
        "fig6a": (lambda: E.fig6a_stretch_vs_cache(
            cache_sizes=(0, 64, 1024, TCAM_ENTRIES),
            n_hosts=800 * k, n_packets=400 * k), R.format_fig6a),
        "fig6b": (lambda: E.fig6b_load_balance(n_hosts=500 * k,
                                               n_packets=2000 * k),
                  R.format_fig6b),
        "fig6c": (lambda: E.fig6c_memory(host_counts=(10, 100, 1000 * k)),
                  R.format_fig6c),
        "fig7": (lambda: E.fig7_partition_repair(), R.format_fig7),
        "fig7b": (lambda: E.fig7b_host_failure(n_hosts=500 * k),
                  R.format_fig7b),
        "fig7c": (lambda: E.fig7c_router_recovery(n_hosts=300 * k,
                                                  n_failures=3 * k),
                  R.format_fig7c),
        "fig8a": (lambda: E.fig8a_inter_join(n_hosts=400 * k),
                  R.format_fig8a),
        "fig8b": (lambda: E.fig8b_inter_stretch(n_hosts=300 * k,
                                                n_packets=300 * k),
                  R.format_fig8b),
        "fig8c": (lambda: E.fig8c_inter_cache_stretch(n_hosts=300 * k,
                                                      n_packets=300 * k),
                  R.format_fig8c),
        "fig8d": (lambda: E.fig8d_stub_failure(n_hosts=400 * k),
                  R.format_fig8d),
        "fig8e": (lambda: E.fig8e_bloom_peering(n_hosts=300 * k,
                                                n_packets=300 * k),
                  R.format_fig8e),
        "headtohead": (lambda: E.headtohead_stretch(n_hosts=150 * k,
                                                    n_packets=300 * k),
                       R.format_headtohead),
    }
    selected = {name: entry for name, entry in plan.items()
                if args.only is None or name.startswith(args.only)}
    if not selected:
        print("no figure matches {!r}; choices: {}".format(
            args.only, ", ".join(plan)), file=sys.stderr)
        return 2
    tracer = None
    if args.trace_out is not None:
        from repro.obs import trace as obs_trace
        tracer = obs_trace.install(obs_trace.Tracer(
            sink=obs_trace.JsonlSink(args.trace_out),
            sample=args.trace_sample))
    start = time.time()
    try:
        for name, (build, render) in selected.items():
            step = time.time()
            print(render(build()))
            print("[{} took {:.1f}s]\n".format(name, time.time() - step))
    finally:
        if tracer is not None:
            from repro.obs import trace as obs_trace
            obs_trace.uninstall()
            tracer.close()
            print("trace: {} records -> {}".format(tracer.records_emitted,
                                                   args.trace_out),
                  file=sys.stderr)
    print("done in {:.1f}s".format(time.time() - start))
    return 0


def _cmd_quickstart(_args: argparse.Namespace) -> int:
    from repro import quick_intradomain

    net = quick_intradomain(n_routers=60, n_hosts=200, seed=1)
    net.check_ring()
    costs = net.stats.operation_costs("join")
    print("{} hosts joined; ring consistent; avg join {:.1f} msgs "
          "(diameter {})".format(net.n_hosts, sum(costs) / len(costs),
                                 net.topology.diameter()))
    delivered, stretches = 0, []
    for _ in range(200):
        a, b = net.random_host_pair()
        result = net.send(a, b)
        delivered += result.delivered
        if result.delivered and result.optimal_hops > 0:
            stretches.append(result.stretch)
    print("routed 200 packets: {} delivered, mean stretch {:.2f}".format(
        delivered, sum(stretches) / len(stretches)))
    report = net.partition_pop(0)
    print("PoP partition cycle: {} IDs, {} repair messages, ring "
          "reconverged".format(report.ids_in_pop, report.total_messages))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workload import (BUILTIN_SCENARIOS, Scenario, ScenarioError,
                                builtin_scenario, run_scenario)

    if args.list:
        for name in sorted(BUILTIN_SCENARIOS):
            scenario = builtin_scenario(name)
            print("{:<16} {:>5.0f}s  {}/{}  phases={} faults={}".format(
                name, scenario.duration, scenario.network.kind,
                scenario.network.n_routers if scenario.network.kind == "intra"
                else scenario.network.n_ases,
                len(scenario.phases), len(scenario.faults)))
        return 0
    if args.scenario is None:
        print("workload: need a scenario (builtin name or JSON file); "
              "--list shows builtins", file=sys.stderr)
        return 2

    try:
        if args.scenario in BUILTIN_SCENARIOS:
            scenario = builtin_scenario(args.scenario, seed=args.seed)
        elif os.path.exists(args.scenario):
            scenario = Scenario.load(args.scenario)
            if args.seed != 0:
                scenario.seed = args.seed
        else:
            raise ScenarioError(
                "no such builtin or file: {!r} (builtins: {})".format(
                    args.scenario, ", ".join(sorted(BUILTIN_SCENARIOS))))
    except ScenarioError as exc:
        print("workload: {}".format(exc), file=sys.stderr)
        return 2

    tracer = None
    if args.trace_out is not None or args.probes:
        from repro.obs import trace as obs_trace
        sink = (obs_trace.JsonlSink(args.trace_out)
                if args.trace_out is not None else obs_trace.NullSink())
        tracer = obs_trace.Tracer(sink=sink, sample=args.trace_sample)
        obs_trace.install(tracer)
    try:
        result = run_scenario(scenario, tracer=tracer, probes=args.probes,
                              metrics_out=args.metrics_out,
                              metrics_window=args.metrics_window)
    finally:
        if tracer is not None:
            from repro.obs import trace as obs_trace
            obs_trace.uninstall()
            tracer.close()
            if args.trace_out is not None:
                print("trace: {} records ({} spans, {} sampled out) -> {}"
                      .format(tracer.records_emitted, tracer.spans_started,
                              tracer.spans_dropped, args.trace_out),
                      file=sys.stderr)
    if result.violations:
        print("probes: {} violation(s)".format(len(result.violations)),
              file=sys.stderr)
    if args.metrics_out is not None:
        print("metrics: {} window(s) -> {}".format(
            result.totals["metrics_windows"], args.metrics_out),
            file=sys.stderr)

    if args.json is not None:
        payload = json.dumps(result.deterministic_view(), indent=2,
                             sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
            print("wrote {}".format(args.json))
        return 0

    print("scenario {!r} (seed {}): {} virtual time units, {} events "
          "({:.0f} events/sec wall)".format(
              scenario.name, scenario.seed, scenario.duration,
              result.totals["events_run"], result.events_per_sec))
    print("{:>8} {:>6} {:>6} {:>9} {:>8} {:>10} {:>7}".format(
        "t", "hosts", "sent", "delivery", "stretch", "ctrl msgs", "state"))
    for row in result.samples:
        print("{:>8.1f} {:>6} {:>6} {:>9} {:>8} {:>10} {:>7}".format(
            row["t"], row["live_hosts"], row["sent"],
            "-" if row["delivery_rate"] is None
            else "{:.3f}".format(row["delivery_rate"]),
            "-" if row["mean_stretch"] is None
            else "{:.2f}".format(row["mean_stretch"]),
            row["control_messages"], row["state_entries"]))
    for record in result.fault_log:
        print("fault @{:>6.1f}: {}".format(
            record["at"], {k: v for k, v in record.items() if k != "at"}))
    summary = result.summary
    print("joins {} (+{} warmup), departures {}, delivery {}, "
          "min-window delivery {}".format(
              result.totals["joins"], result.totals["warmup_hosts"],
              result.totals["departures"],
              "-" if summary["delivery_rate"] is None
              else "{:.4f}".format(summary["delivery_rate"]),
              "-" if summary["min_window_delivery_rate"] is None
              else "{:.4f}".format(summary["min_window_delivery_rate"])))
    if "stretch" in summary:
        print("stretch mean {:.2f} p95 {:.2f}; control messages {}".format(
            summary["stretch"]["mean"], summary["stretch"]["p95"],
            summary["control_messages"]))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Route packets under the tracer and explain each decision tree."""
    from repro.obs import explain
    from repro.obs import trace as obs_trace
    from repro.obs.probes import ProbeSet

    tracer = obs_trace.Tracer(sink=obs_trace.RingBufferSink(capacity=None),
                              sample=args.trace_sample)

    if args.scenario is not None:
        # Replay a scenario window with tracing + probes on, then explain
        # the last packets it routed.
        from repro.workload import (BUILTIN_SCENARIOS, Scenario,
                                    ScenarioError, builtin_scenario,
                                    run_scenario)
        try:
            if args.scenario in BUILTIN_SCENARIOS:
                scenario = builtin_scenario(args.scenario, seed=args.seed)
            elif os.path.exists(args.scenario):
                scenario = Scenario.load(args.scenario)
                if args.seed != 0:
                    scenario.seed = args.seed
            else:
                raise ScenarioError(
                    "no such builtin or file: {!r}".format(args.scenario))
        except ScenarioError as exc:
            print("trace: {}".format(exc), file=sys.stderr)
            return 2
        with obs_trace.tracing(tracer):
            result = run_scenario(scenario, tracer=tracer, probes=True)
        records = tracer.sink.records()
        packets = explain.explain_packets(records)
        print("scenario {!r}: {} trace records, {} packet spans, "
              "{} probe violation(s)".format(
                  scenario.name, len(records), len(packets),
                  len(result.violations)))
        for violation in result.violations:
            print("  violation[{}] @{:.1f}: {}".format(
                violation["probe"], violation["t"], violation["detail"]))
        for packet in packets[-args.packets:]:
            print()
            print(packet.render())
        if args.trace_out is not None:
            obs_trace.dump_jsonl(records, args.trace_out)
            print("\nwrote {} records to {}".format(len(records),
                                                    args.trace_out))
        return 0

    # Standalone: build a small network, route packets, explain each.
    if args.inter:
        from repro.inter.network import InterDomainNetwork
        from repro.topology.asgraph import synthetic_as_graph
        net = InterDomainNetwork(synthetic_as_graph(n_ases=args.ases,
                                                    seed=args.seed),
                                 seed=args.seed, cache_entries=256)
    else:
        from repro.intra.network import IntraDomainNetwork
        from repro.topology.isp import synthetic_isp
        net = IntraDomainNetwork(synthetic_isp(n_routers=args.routers,
                                               seed=args.seed),
                                 seed=args.seed)
    net.join_random_hosts(args.hosts)
    results = []
    with obs_trace.tracing(tracer):
        probes = ProbeSet.for_network(net, tracer=tracer)
        for _ in range(args.packets):
            a, b = net.random_host_pair()
            results.append((a, b, net.send(a, b)))
        probes.tick(0.0)

    records = tracer.sink.records()
    packets = explain.explain_packets(records)
    for (a, b, result), packet in zip(results, packets):
        print("{} -> {}:".format(a, b))
        print(packet.render(result.optimal_hops))
        attributed = packet.total_stretch(result.optimal_hops)
        print("  attribution: {} segment(s) summing to stretch {:.3f} "
              "(PathResult.stretch {:.3f})".format(
                  len(packet.segments), attributed, result.stretch))
        print()
    if probes.violations:
        print("probes: {} violation(s)".format(len(probes.violations)))
        for violation in probes.summary():
            print("  {}".format(violation))
    else:
        print("probes: ring/SPF/isolation invariants clean")
    if args.trace_out is not None:
        obs_trace.dump_jsonl(records, args.trace_out)
        print("wrote {} records to {}".format(len(records), args.trace_out))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ReproServer, ShardedReproServer, build_network

    sim = None
    if args.shards <= 1 and (args.trace_out is not None
                             or args.metrics_out is not None):
        print("serve: --trace-out/--metrics-out need --shards N (the "
              "sharded coordinator collects telemetry at window barriers); "
              "for unsharded runs use 'repro workload' with the same flags",
              file=sys.stderr)
        return 2
    if args.shards > 1:
        if args.kind != "inter":
            print("serve: --shards requires --kind inter", file=sys.stderr)
            return 2
        if args.snapshot is not None:
            print("serve: --shards cannot resume a --snapshot (replicas "
                  "rebuild from seed)", file=sys.stderr)
            return 2
        from repro.sim.shard import ShardCoordinator
        sim = ShardCoordinator({"n_ases": args.ases, "seed": args.seed,
                                "cache_entries": args.cache_entries or 0},
                               n_shards=args.shards,
                               trace_out=args.trace_out,
                               trace_sample=args.trace_sample,
                               metrics_out=args.metrics_out).start()
        if args.hosts:
            sim.join_hosts(args.hosts)
            sim.flush_indexes()
        print("serve: built sharded inter network ({} shards, seed {}, "
              "{} hosts)".format(args.shards, args.seed, args.hosts),
              file=sys.stderr)
        server: ReproServer = ShardedReproServer(sim)
    elif args.snapshot is not None:
        from repro import snapshot
        net = snapshot.load(args.snapshot, verify=args.verify)
        print("serve: loaded {} ({})".format(
            args.snapshot, snapshot.describe(args.snapshot)["counts"]),
            file=sys.stderr)
        server = ReproServer(net)
    else:
        net = build_network(kind=args.kind, seed=args.seed,
                            n_routers=args.routers, n_ases=args.ases,
                            hosts=args.hosts,
                            cache_entries=args.cache_entries)
        print("serve: built {} network (seed {}, {} hosts)".format(
            args.kind, args.seed, args.hosts), file=sys.stderr)
        server = ReproServer(net)

    try:
        if args.requests is not None:
            with open(args.requests) as fh:
                answered = server.serve_lines(fh, sys.stdout)
            print("serve: answered {} scripted request(s)".format(answered),
                  file=sys.stderr)
            return 0
        if args.tcp is not None:
            def ready(port: int) -> None:
                print("serve: listening on {}:{}".format(args.host, port),
                      file=sys.stderr)
            server.serve_tcp(host=args.host, port=args.tcp, ready=ready,
                             timeout=args.tcp_timeout)
            return 0
        print("serve: reading JSON requests from stdin "
              "(one per line; op 'shutdown' exits)", file=sys.stderr)
        server.serve_stdio()
        return 0
    finally:
        if sim is not None:
            sim.close()


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro import snapshot

    if args.action == "save":
        from repro.serve import build_network
        net = build_network(kind=args.kind, seed=args.seed,
                            n_routers=args.routers, n_ases=args.ases,
                            hosts=args.hosts,
                            cache_entries=args.cache_entries)
        digest = snapshot.save(net, args.path, meta={"source": "cli"})
        print("saved {} ({} hosts) state_hash={}".format(
            args.path, len(net.hosts), digest[:16]))
        return 0
    if args.action == "info":
        header = snapshot.describe(args.path)
        for key in ("kind", "schema", "state_hash"):
            print("{:<12} {}".format(key, header[key]))
        for name, count in sorted(header["counts"].items()):
            print("{:<12} {}".format(name, count))
        if header["meta"]:
            print("{:<12} {}".format("meta", json.dumps(header["meta"],
                                                        sort_keys=True)))
        return 0
    # verify: load, recompute the canonical hash, sweep invariant probes.
    net = snapshot.load(args.path, verify=True)
    violations = snapshot.validate_network(net)
    if violations:
        print("verify: hash OK but {} invariant violation(s):".format(
            len(violations)), file=sys.stderr)
        for violation in violations:
            print("  {}".format(violation), file=sys.stderr)
        return 1
    print("verify: {} OK (hash matches, invariants clean, {} hosts)".format(
        args.path, len(net.hosts)))
    return 0


def _cmd_compare_stretch(args: argparse.Namespace) -> int:
    """ROFL vs Disco (vs CMU/OSPF) head-to-head; nonzero exit on any
    stretch-bound breach, probe violation, or attribution mismatch."""
    from repro.harness.experiments import headtohead_stretch
    from repro.harness.report import format_headtohead

    result = headtohead_stretch(
        profile=args.profile, n_hosts=args.hosts, n_packets=args.packets,
        n_ases=args.ases, inter_hosts=args.inter_hosts,
        inter_packets=args.inter_packets, seed=args.seed,
        full_scale=args.full, landmark_factor=args.landmark_factor,
        all_pairs_hosts=args.all_pairs_hosts)
    print(format_headtohead(result))

    if args.json is not None:
        payload = json.dumps(result, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
            print("wrote {}".format(args.json))

    failures = []
    for scope in ("intra", "inter"):
        for label, row in result[scope].items():
            where = "{}/{}".format(scope, label)
            if row["bound_violations"]:
                failures.append("{}: {} stretch-bound violation(s)".format(
                    where, row["bound_violations"]))
            if row["probe_violations"]:
                failures.append("{}: {} probe violation(s)".format(
                    where, len(row["probe_violations"])))
            if row["attribution_mismatches"]:
                failures.append("{}: {} attribution mismatch(es)".format(
                    where, row["attribution_mismatches"]))
    sweep = result["disco_all_pairs"]
    if sweep["undelivered"]:
        failures.append("all-pairs: {} undelivered".format(
            sweep["undelivered"]))
    if sweep["violations"]:
        failures.append("all-pairs: {} probe violation(s)".format(
            len(sweep["violations"])))
    if failures:
        for failure in failures:
            print("compare-stretch: FAIL {}".format(failure),
                  file=sys.stderr)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import generate_report

    if (args.metrics is None and args.perf is None and args.bench is None
            and args.compare is None):
        print("report: nothing to render; pass --metrics, --perf, --bench, "
              "and/or --compare", file=sys.stderr)
        return 2
    fmt = "html" if args.out.endswith(".html") else "markdown"
    try:
        document = generate_report(args.title, metrics_path=args.metrics,
                                   perf_path=args.perf,
                                   bench_path=args.bench,
                                   compare_path=args.compare, fmt=fmt)
    except (OSError, json.JSONDecodeError) as exc:
        print("report: {}".format(exc), file=sys.stderr)
        return 2
    if args.out == "-":
        print(document, end="")
    else:
        with open(args.out, "w") as fh:
            fh.write(document)
        print("wrote {} ({} bytes, {})".format(args.out, len(document), fmt))
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro
    print("repro {} — ROFL: Routing on Flat Labels (SIGCOMM 2006)".format(
        repro.__version__))
    print("Caesar, Condie, Kannan, Lakshminarayanan, Stoica, Shenker.")
    print()
    print("Subsystems: idspace, util, sim, topology, linkstate, intra,")
    print("            inter, baselines, compact, services, harness")
    print("Docs: README.md (overview), DESIGN.md (inventory),")
    print("      EXPERIMENTS.md (paper-vs-measured)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate evaluation figures")
    figures.add_argument("--full", action="store_true",
                         help="larger (slower) workloads")
    figures.add_argument("--only", default=None,
                         help="run only figures whose id starts with this")
    figures.add_argument("--trace-out", default=None, metavar="PATH",
                         help="record a JSONL packet trace while figures run")
    figures.add_argument("--trace-sample", type=float, default=1.0,
                         metavar="F", help="fraction of packet spans to keep")
    figures.set_defaults(func=_cmd_figures)

    workload = sub.add_parser(
        "workload",
        help="run a declarative churn/traffic/fault scenario")
    workload.add_argument("scenario", nargs="?", default=None,
                          help="builtin scenario name or path to a "
                               "scenario JSON file")
    workload.add_argument("--seed", type=int, default=0,
                          help="override the scenario seed")
    workload.add_argument("--json", default=None, metavar="PATH",
                          help="write the deterministic result as JSON "
                               "('-' for stdout)")
    workload.add_argument("--list", action="store_true",
                          help="list builtin scenarios and exit")
    workload.add_argument("--trace-out", default=None, metavar="PATH",
                          help="record a JSONL packet trace of the run")
    workload.add_argument("--trace-sample", type=float, default=1.0,
                          metavar="F", help="fraction of packet spans to keep")
    workload.add_argument("--probes", action="store_true",
                          help="run live invariant probes during the run")
    workload.add_argument("--metrics-out", default=None, metavar="PATH",
                          help="stream windowed perf-registry deltas as "
                               "JSONL (deterministic per seed)")
    workload.add_argument("--metrics-window", type=float, default=None,
                          metavar="T",
                          help="virtual-time span of one metrics window "
                               "(default: the scenario's sample interval)")
    workload.set_defaults(func=_cmd_workload)

    tracecmd = sub.add_parser(
        "trace",
        help="route packets under the tracer and explain the decisions")
    tracecmd.add_argument("--inter", action="store_true",
                          help="interdomain network instead of intradomain")
    tracecmd.add_argument("--routers", type=int, default=24,
                          help="intra: router count (default 24)")
    tracecmd.add_argument("--ases", type=int, default=30,
                          help="inter: AS count (default 30)")
    tracecmd.add_argument("--hosts", type=int, default=60,
                          help="hosts to join before routing (default 60)")
    tracecmd.add_argument("--packets", type=int, default=1,
                          help="packets to route and explain (default 1)")
    tracecmd.add_argument("--seed", type=int, default=0)
    tracecmd.add_argument("--scenario", default=None,
                          help="replay this workload scenario under tracing "
                               "instead of routing standalone packets")
    tracecmd.add_argument("--trace-out", default=None, metavar="PATH",
                          help="also dump the records as JSONL")
    tracecmd.add_argument("--trace-sample", type=float, default=1.0,
                          metavar="F", help="fraction of packet spans to keep")
    tracecmd.set_defaults(func=_cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="hold a network resident and answer JSON-line requests")
    serve.add_argument("--kind", choices=("intra", "inter"), default="intra",
                       help="network kind to build (default intra)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--routers", type=int, default=40,
                       help="intra: router count (default 40)")
    serve.add_argument("--ases", type=int, default=60,
                       help="inter: AS count (default 60)")
    serve.add_argument("--hosts", type=int, default=200,
                       help="hosts to join before serving (default 200)")
    serve.add_argument("--cache-entries", type=int, default=None,
                       help="pointer-cache size override")
    serve.add_argument("--snapshot", default=None, metavar="PATH",
                       help="warm-load this snapshot instead of building")
    serve.add_argument("--verify", action="store_true",
                       help="verify the snapshot hash while loading")
    serve.add_argument("--shards", type=int, default=1, metavar="N",
                       help="run the interdomain network across N worker "
                            "processes (deterministic: same metrics and "
                            "state hash as --shards 1)")
    serve.add_argument("--tcp", type=int, default=None, metavar="PORT",
                       help="serve over TCP instead of stdio (0 = ephemeral)")
    serve.add_argument("--tcp-timeout", type=float, default=60.0,
                       metavar="SECONDS",
                       help="drop a TCP connection idle for this long "
                            "mid-session (default 60)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (default 127.0.0.1)")
    serve.add_argument("--requests", default=None, metavar="FILE",
                       help="answer the JSON-line requests in FILE and exit")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="sharded mode: write the merged cross-shard "
                            "packet trace as JSONL (byte-identical to the "
                            "1-shard run)")
    serve.add_argument("--trace-sample", type=float, default=1.0,
                       metavar="F",
                       help="fraction of operations to trace (decided from "
                            "the global op seq; shard-count invariant)")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="sharded mode: write one window-metrics JSONL "
                            "row per sync barrier")
    serve.set_defaults(func=_cmd_serve)

    snap = sub.add_parser(
        "snapshot",
        help="save, inspect, or verify a network state snapshot")
    snap.add_argument("action", choices=("save", "info", "verify"))
    snap.add_argument("path", help="snapshot file")
    snap.add_argument("--kind", choices=("intra", "inter"), default="intra",
                      help="save: network kind to build (default intra)")
    snap.add_argument("--seed", type=int, default=0)
    snap.add_argument("--routers", type=int, default=40)
    snap.add_argument("--ases", type=int, default=60)
    snap.add_argument("--hosts", type=int, default=200,
                      help="save: hosts to join before saving (default 200)")
    snap.add_argument("--cache-entries", type=int, default=None)
    snap.set_defaults(func=_cmd_snapshot)

    compare = sub.add_parser(
        "compare-stretch",
        help="ROFL vs compact-routing head-to-head with a stretch-bound "
             "gate (nonzero exit on any violation)")
    compare.add_argument("--profile", default="AS3967",
                         help="Rocketfuel ISP profile (default AS3967)")
    compare.add_argument("--hosts", type=int, default=200,
                         help="intra: hosts joined per baseline (default 200)")
    compare.add_argument("--packets", type=int, default=400,
                         help="intra: packets per baseline (default 400)")
    compare.add_argument("--ases", type=int, default=60,
                         help="inter: AS count (default 60)")
    compare.add_argument("--inter-hosts", type=int, default=150,
                         help="inter: hosts joined (default 150)")
    compare.add_argument("--inter-packets", type=int, default=200,
                         help="inter: packets routed (default 200)")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--full", action="store_true",
                         help="full-scale topology instead of the sample")
    compare.add_argument("--landmark-factor", type=float, default=1.0,
                         metavar="F",
                         help="landmarks = ceil(F * sqrt(routers))")
    compare.add_argument("--all-pairs-hosts", type=int, default=40,
                         metavar="N",
                         help="exhaustive bound sweep over the first N "
                              "hosts (default 40)")
    compare.add_argument("--json", default=None, metavar="PATH",
                         help="write the full result as JSON ('-' = stdout)")
    compare.set_defaults(func=_cmd_compare_stretch)

    report = sub.add_parser(
        "report",
        help="render telemetry artifacts into one HTML/markdown report")
    report.add_argument("--metrics", default=None, metavar="PATH",
                        help="window-metrics JSONL (from --metrics-out)")
    report.add_argument("--perf", default=None, metavar="PATH",
                        help="JSON result carrying a perf snapshot "
                             "(timer tree source)")
    report.add_argument("--bench", default=None, metavar="PATH",
                        help="BENCH_scaling.json scaling trajectory")
    report.add_argument("--compare", default=None, metavar="PATH",
                        help="compare_stretch.json head-to-head result "
                             "(from 'compare-stretch --json')")
    report.add_argument("--title", default="repro telemetry report")
    report.add_argument("--out", default="-", metavar="PATH",
                        help="output file; '.html' renders HTML, anything "
                             "else markdown ('-' = markdown to stdout)")
    report.set_defaults(func=_cmd_report)

    quick = sub.add_parser("quickstart", help="run the quickstart scenario")
    quick.set_defaults(func=_cmd_quickstart)

    info = sub.add_parser("info", help="package and paper summary")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
