"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``figures [--full] [--only PREFIX]`` — regenerate the paper's
  evaluation figures (same as ``examples/reproduce_paper.py``).
* ``quickstart`` — a 30-second end-to-end tour of the intradomain system.
* ``info`` — package, paper, and inventory summary.
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.harness import experiments as E
    from repro.harness import report as R
    from repro.topology.isp import TCAM_ENTRIES

    k = 3 if args.full else 1
    plan = {
        "fig5a": (lambda: E.fig5a_intra_join_overhead(
            host_counts=(10, 100, 1000 * k)), R.format_fig5a),
        "fig5b": (lambda: E.fig5b_join_overhead_cdf(n_hosts=500 * k),
                  R.format_fig5b),
        "fig5c": (lambda: E.fig5c_join_latency_cdf(n_hosts=300 * k),
                  R.format_fig5c),
        "fig6a": (lambda: E.fig6a_stretch_vs_cache(
            cache_sizes=(0, 64, 1024, TCAM_ENTRIES),
            n_hosts=800 * k, n_packets=400 * k), R.format_fig6a),
        "fig6b": (lambda: E.fig6b_load_balance(n_hosts=500 * k,
                                               n_packets=2000 * k),
                  R.format_fig6b),
        "fig6c": (lambda: E.fig6c_memory(host_counts=(10, 100, 1000 * k)),
                  R.format_fig6c),
        "fig7": (lambda: E.fig7_partition_repair(), R.format_fig7),
        "fig7b": (lambda: E.fig7b_host_failure(n_hosts=500 * k),
                  R.format_fig7b),
        "fig8a": (lambda: E.fig8a_inter_join(n_hosts=400 * k),
                  R.format_fig8a),
        "fig8b": (lambda: E.fig8b_inter_stretch(n_hosts=300 * k,
                                                n_packets=300 * k),
                  R.format_fig8b),
        "fig8c": (lambda: E.fig8c_inter_cache_stretch(n_hosts=300 * k,
                                                      n_packets=300 * k),
                  R.format_fig8c),
        "fig8d": (lambda: E.fig8d_stub_failure(n_hosts=400 * k),
                  R.format_fig8d),
        "fig8e": (lambda: E.fig8e_bloom_peering(n_hosts=300 * k,
                                                n_packets=300 * k),
                  R.format_fig8e),
    }
    selected = {name: entry for name, entry in plan.items()
                if args.only is None or name.startswith(args.only)}
    if not selected:
        print("no figure matches {!r}; choices: {}".format(
            args.only, ", ".join(plan)), file=sys.stderr)
        return 2
    start = time.time()
    for name, (build, render) in selected.items():
        step = time.time()
        print(render(build()))
        print("[{} took {:.1f}s]\n".format(name, time.time() - step))
    print("done in {:.1f}s".format(time.time() - start))
    return 0


def _cmd_quickstart(_args: argparse.Namespace) -> int:
    from repro import quick_intradomain

    net = quick_intradomain(n_routers=60, n_hosts=200, seed=1)
    net.check_ring()
    costs = net.stats.operation_costs("join")
    print("{} hosts joined; ring consistent; avg join {:.1f} msgs "
          "(diameter {})".format(net.n_hosts, sum(costs) / len(costs),
                                 net.topology.diameter()))
    delivered, stretches = 0, []
    for _ in range(200):
        a, b = net.random_host_pair()
        result = net.send(a, b)
        delivered += result.delivered
        if result.delivered and result.optimal_hops > 0:
            stretches.append(result.stretch)
    print("routed 200 packets: {} delivered, mean stretch {:.2f}".format(
        delivered, sum(stretches) / len(stretches)))
    report = net.partition_pop(0)
    print("PoP partition cycle: {} IDs, {} repair messages, ring "
          "reconverged".format(report.ids_in_pop, report.total_messages))
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro
    print("repro {} — ROFL: Routing on Flat Labels (SIGCOMM 2006)".format(
        repro.__version__))
    print("Caesar, Condie, Kannan, Lakshminarayanan, Stoica, Shenker.")
    print()
    print("Subsystems: idspace, util, sim, topology, linkstate, intra,")
    print("            inter, baselines, services, harness")
    print("Docs: README.md (overview), DESIGN.md (inventory),")
    print("      EXPERIMENTS.md (paper-vs-measured)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate evaluation figures")
    figures.add_argument("--full", action="store_true",
                         help="larger (slower) workloads")
    figures.add_argument("--only", default=None,
                         help="run only figures whose id starts with this")
    figures.set_defaults(func=_cmd_figures)

    quick = sub.add_parser("quickstart", help="run the quickstart scenario")
    quick.set_defaults(func=_cmd_quickstart)

    info = sub.add_parser("info", help="package and paper summary")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
