"""The interdomain ROFL network — public entry point for Section 4.

Each AS is modelled as a single node (exactly as the paper's interdomain
simulations do).  The network owns the policy view, the per-level ring
registry (the verification oracle the charged protocol walks are checked
against), the BGP baseline used as the stretch denominator, and failure
injection for the Section 6.3 experiments.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.idspace.crypto import SignatureAuthority
from repro.idspace.identifier import FlatId, RingSpace
from repro.inter import canon, routing
from repro.inter.asnode import RoflAS
from repro.inter.bgp import BgpBaseline
from repro.inter.pointers import ASPointer, InterVirtualNode
from repro.inter.policy import JoinStrategy, PolicyView
from repro.sim.stats import PathResult, StatsCollector
from repro.topology.asgraph import ASGraph
from repro.topology.hosts import HostPlan, HostTable, PlannedHost
from repro.util.ringmap import SortedRingMap
from repro.util.rng import RngRegistry


class InterRingInconsistency(AssertionError):
    """Raised by :meth:`InterDomainNetwork.check_rings` on misconvergence."""


class InterDomainNetwork:
    """Internet-scale ROFL over an annotated AS graph."""

    def __init__(
        self,
        asg: ASGraph,
        n_fingers: int = 16,
        cache_entries: int = 0,
        seed: int = 0,
        strategy: JoinStrategy = JoinStrategy.MULTIHOMED,
        peering_mode: str = "virtual_as",
        bloom_bits: int = 1 << 14,
        authority: Optional[SignatureAuthority] = None,
        cache_fill_enabled: bool = True,
    ):
        if peering_mode not in ("virtual_as", "bloom"):
            raise ValueError("peering_mode must be 'virtual_as' or 'bloom'")
        self.asg = asg
        self.policy = PolicyView(asg)
        self.bgp = BgpBaseline(asg)
        self.space = RingSpace()
        self.stats = StatsCollector()
        self.authority = authority or SignatureAuthority()
        self.n_fingers = n_fingers
        self.seed = seed
        self.default_strategy = strategy
        self.peering_mode = peering_mode
        self.cache_fill_enabled = cache_fill_enabled and cache_entries > 0
        self.lookup_mismatches = 0
        #: Every long-lived derived stream of this network, enumerable so
        #: :mod:`repro.snapshot` can capture/restore stream positions.
        self.rngs = RngRegistry(seed)
        self._rng = self.rngs.derive("internet")
        self._failed: Set[Hashable] = set()

        self.ases: Dict[Hashable, RoflAS] = {
            asn: RoflAS(asn, self.space, cache_entries=cache_entries,
                        bloom_bits=bloom_bits)
            for asn in asg.ases()
        }
        #: Per-level ring registry (level → SortedRingMap of member VNs).
        self.rings: Dict[Hashable, SortedRingMap] = {}
        #: Oracle over every joined identifier.
        self.id_owner_index: Dict[FlatId, InterVirtualNode] = {}
        self.hosts: HostTable = HostTable()
        self.host_records: Dict[str, PlannedHost] = {}

        bearers = [asn for asn in asg.ases() if asg.hosts(asn) > 0]
        weights = [float(asg.hosts(asn)) for asn in bearers]
        if not bearers:
            bearers, weights = asg.stubs(), None
        self._plan = HostPlan(attachment_points=bearers, seed=seed,
                              weights=weights, authority=self.authority,
                              registry=self.rngs)

    # -- rings -------------------------------------------------------------------

    def ring_at(self, level: Hashable) -> SortedRingMap:
        ring = self.rings.get(level)
        if ring is None:
            ring = SortedRingMap(self.space)
            self.rings[level] = ring
        return ring

    @property
    def global_ring(self) -> SortedRingMap:
        return self.ring_at(self.policy.root)

    # -- joining -----------------------------------------------------------------

    def join_host(self, host: PlannedHost,
                  strategy: Optional[JoinStrategy] = None,
                  n_fingers: Optional[int] = None,
                  via_provider: Optional[Hashable] = None,
                  flat_id_override: Optional[FlatId] = None,
                  prune: Optional[Set[Hashable]] = None,
                  walks=None) -> canon.InterJoinReceipt:
        strategy = strategy or self.default_strategy
        if self.peering_mode == "bloom" and strategy is JoinStrategy.PEERING:
            # Bloom-filter peering eliminates joins across peering links;
            # the remaining joins are exactly the multihomed set.
            strategy = JoinStrategy.MULTIHOMED
        return canon.join_inter(self, host, strategy, n_fingers=n_fingers,
                                via_provider=via_provider,
                                flat_id_override=flat_id_override,
                                prune=prune, walks=walks)

    def join_random_hosts(self, n: int,
                          strategy: Optional[JoinStrategy] = None
                          ) -> List[canon.InterJoinReceipt]:
        receipts = []
        for _ in range(n):
            host = self._plan.next_host()
            # A host whose home AS is currently down attaches elsewhere
            # (re-draw from the plan), mirroring real-world behaviour.
            guard = 0
            while not self.as_is_up(host.attach_at) and guard < 64:
                host = self._plan.next_host()
                guard += 1
            receipts.append(self.join_host(host, strategy=strategy))
        return receipts

    def next_planned_host(self) -> PlannedHost:
        return self._plan.next_host()

    # -- data plane ----------------------------------------------------------------

    def send(self, src_host: str, dst_host: str) -> PathResult:
        src_vn = self.hosts[src_host]
        dst_vn = self.hosts[dst_host]
        return self.send_to_id(src_vn.home_as, dst_vn.id)

    def send_to_id(self, src_as: Hashable, dest_id: FlatId) -> PathResult:
        if self.peering_mode == "bloom":
            outcome = routing.route_bloom_peering(self, src_as, dest_id)
        else:
            outcome = routing.route(self, src_as, dest_id, mode="data")
        optimal = 0
        if outcome.delivered and outcome.final_vn is not None:
            optimal = self.bgp.policy_distance(
                src_as, outcome.final_vn.home_as) or 0
        return PathResult(
            delivered=outcome.delivered,
            path=outcome.as_path,
            hops=outcome.hops,
            optimal_hops=optimal,
            pointer_hops=outcome.pointer_hops,
            used_cache=outcome.used_cache,
        )

    def random_host_pair(self) -> Tuple[str, str]:
        names = self.hosts.names
        if len(names) < 2:
            raise ValueError("need at least two joined hosts")
        a, b = self._rng.sample(names, 2)
        return a, b

    def partition_view(self, n_shards: int) -> "object":
        """A deterministic N-way partition of the AS set for sharded runs.

        Balances expected host load (the AS graph's Zipf host weights)
        greedily across shards, then enumerates the *ghost edges* — AS
        links whose endpoints land on different shards — whose minimum
        link latency is the conservative-synchronization lookahead (see
        :mod:`repro.sim.shard`).
        """
        from repro.sim.shard import ShardPlan
        return ShardPlan.from_graph(self.asg, n_shards)

    def flush_indexes(self) -> None:
        """Flush every AS's pending candidate-index maintenance now.

        Index refresh is normally deferred to the next lookup; a join
        storm therefore dumps its flush work onto the first packets sent
        afterwards.  Benchmarks call this at a phase boundary so each
        phase's measurement covers the maintenance it caused.
        """
        for node in self.ases.values():
            node.flush_index()

    # -- liveness & pointer validation ----------------------------------------------

    def as_is_up(self, asn: Hashable) -> bool:
        return asn not in self._failed

    def validate_pointer(self, node: RoflAS, pointer: ASPointer,
                         from_as: Optional[Hashable] = None
                         ) -> Optional[ASPointer]:
        start = from_as or pointer.owner_as
        route_ok = (pointer.as_route[0] == start
                    and all(self.as_is_up(asn) for asn in pointer.as_route))
        if route_ok:
            return pointer
        target = self.id_owner_index.get(pointer.dest_id)
        if target is not None and self.as_is_up(target.home_as):
            new_route = self.policy.policy_path(start, target.home_as,
                                                scope=pointer.level)
            if new_route is None:
                new_route = self.policy.policy_path(start, target.home_as)
            if new_route is not None:
                return ASPointer(pointer.dest_id, target.home_as,
                                 tuple(new_route), level=pointer.level,
                                 kind=pointer.kind)
        owner = self.ases.get(pointer.owner_as)
        if owner is not None:
            owner.drop_pointer(pointer)
        if node is not owner:
            node.cache.invalidate_id(pointer.dest_id)
        return None

    # -- failure injection (Section 6.3) ------------------------------------------------

    def fail_as(self, asn: Hashable) -> int:
        """Fail a (stub) AS: its IDs leave every ring; neighbours repair.
        Returns the repair message count."""
        if asn in self._failed:
            return 0
        self._failed.add(asn)
        self.bgp.invalidate()
        node = self.ases[asn]
        dead_vns = list(node.hosted.values())
        dead_ids = {vn.id for vn in dead_vns}

        with self.stats.operation("as_failure", asn=asn) as op:
            for vn in dead_vns:
                node.unhost(vn.id)
                self.id_owner_index.pop(vn.id, None)
                if vn.host_name is not None:
                    self.hosts.pop(vn.host_name, None)
                for level in vn.joined_levels:
                    self.ring_at(level).discard(vn.id)

            # Ring repair: at every level each dead ID participated in,
            # its predecessor re-points at the ID after the gap — one
            # teardown-triggered exchange per (ID, level), which is why
            # the paper sees repair cost "roughly … the number of
            # identifiers hosted in the failed stub AS".
            for vn in dead_vns:
                for level in vn.joined_levels:
                    self._repair_gap(vn, level)

            # Everyone else drops pointers naming dead IDs (LSA-driven).
            # One mark_dirty per VN however many dead targets it held, so
            # the next flush re-diffs each touched VN exactly once.
            for other in self.ases.values():
                other.cache.invalidate_where(
                    lambda p: p.dest_id in dead_ids or asn in p.as_route)
                for hosted in other.hosted.values():
                    dropped = 0
                    for dead in dead_ids:
                        dropped += hosted.drop_dead_target(dead)
                    if dropped:
                        other.mark_dirty(hosted)
            return op["messages"]

    def _repair_gap(self, dead_vn: InterVirtualNode, level: Hashable) -> None:
        ring = self.ring_at(level)
        if len(ring) == 0:
            return
        pred_id = ring.predecessor(dead_vn.id, strict=False)
        succ_id = ring.successor(dead_vn.id, strict=False)
        if pred_id is None or succ_id is None or pred_id == succ_id:
            return
        pred: InterVirtualNode = ring[pred_id]
        succ: InterVirtualNode = ring[succ_id]
        route = self.policy.policy_path(pred.home_as, succ.home_as,
                                        scope=level)
        if route is None:
            route = self.policy.policy_path(pred.home_as, succ.home_as)
        if route is None:
            return
        self.stats.charge_hops(2 * (len(route) - 1), "repair")
        pred.set_successor(level, ASPointer(succ.id, succ.home_as,
                                            tuple(route), level=level))
        back = self.policy.policy_path(succ.home_as, pred.home_as,
                                       scope=level)
        if back is not None:
            succ.pred_by_level[level] = ASPointer(pred.id, pred.home_as,
                                                  tuple(back), level=level,
                                                  kind="predecessor")
        self.ases[pred.home_as].mark_dirty(pred)
        self.ases[succ.home_as].mark_dirty(succ)

    def restore_as(self, asn: Hashable) -> None:
        self._failed.discard(asn)
        self.bgp.invalidate()

    # -- verification -----------------------------------------------------------------

    def check_rings(self, levels: Optional[List[Hashable]] = None) -> None:
        """Every level's members must form a consistent merged ring: each
        member's effective successor *among that ring's members* equals
        the next member clockwise.

        The membership filter matters when joining strategies are mixed:
        a pointer stored at an inner level may target an ID that joined
        the inner ring but not this one (e.g. an ephemeral neighbour);
        such pointers are legitimate routing state but not part of this
        level's merged ring."""
        targets = levels if levels is not None else list(self.rings)
        for level in targets:
            ring = self.rings.get(level)
            if ring is None or len(ring) < 2:
                continue
            members = ring.keys()
            for i, member_id in enumerate(members):
                vn: InterVirtualNode = ring[member_id]
                expected = members[(i + 1) % len(members)]
                eff = self._member_effective_successor(vn, level, ring)
                if eff is None or eff != expected:
                    raise InterRingInconsistency(
                        "level {}: {} effective successor {} != {}".format(
                            level, member_id, eff, expected))

    def _member_effective_successor(self, vn: InterVirtualNode,
                                    level: Hashable, ring) -> Optional[FlatId]:
        """Closest successor-pointer target at levels within ``level``
        whose target is a member of this level's ring."""
        best: Optional[FlatId] = None
        best_dist = None
        for lvl, ptr in vn.succ_by_level.items():
            if lvl is not None and not self.policy.level_contained_in(lvl,
                                                                      level):
                continue
            if ptr.dest_id not in ring:
                continue
            dist = self.space.distance_cw(vn.id, ptr.dest_id)
            if best_dist is None or dist < best_dist:
                best, best_dist = ptr.dest_id, dist
        return best

    def check_isolation(self, src_as: Hashable, dst_as: Hashable,
                        as_path: List[Hashable]) -> bool:
        """Did this path stay within the isolation region of its
        endpoints?  (Union of the earliest-common-ancestor subtrees,
        extended by any peering level both endpoints joined under.)"""
        region = set(self.policy.hierarchy.isolation_region(src_as, dst_as))
        for vas in self.policy.virtual_ases:
            members = self.policy.subtree(vas)
            if src_as in members and dst_as in members:
                candidates = [self.policy.subtree(a) for a in vas.members]
                if any(src_as in c for c in candidates) and \
                        any(dst_as in c for c in candidates):
                    region |= members
        return all(asn in region for asn in as_path)

    # -- accounting ----------------------------------------------------------------------

    def state_entries_per_as(self, include_cache: bool = True) -> Dict[Hashable, int]:
        return {asn: node.state_entries(include_cache=include_cache)
                for asn, node in self.ases.items()}

    def bloom_bits_total(self) -> int:
        return sum(node.subtree_bloom.size_bits for node in self.ases.values())

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    def __repr__(self) -> str:
        return "InterDomainNetwork(ases={}, hosts={}, strategy={})".format(
            self.asg.n_ases, len(self.hosts), self.default_strategy.value)
