"""The per-AS aggregated routing state (the paper models each AS as a
single node in its interdomain simulations; Section 6.1).

An AS node aggregates the pointer state of every identifier it hosts,
keeps the AS-level pointer cache with its bloom-filter isolation guard
(Section 4.1), and the bloom filter summarising the hosts in its subtree
(consulted by the peering machinery of Section 4.2).

The aggregated candidate index is maintained *incrementally*: each hosted
virtual node's contribution (its own ID plus its pointer targets) is
tracked, and ``mark_dirty(vn)`` re-diffs only that VN on the next lookup.
The seed implementation rebuilt the whole index — every hosted ID and
every pointer — after each mutation, which made index maintenance the
single hottest path of interdomain joins; see ``repro.util.perf``'s
``asnode.index.*`` counters.
"""

from __future__ import annotations

import itertools
from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, TYPE_CHECKING

from repro.idspace.identifier import FlatId, RingSpace
from repro.inter.pointers import ASPointer, InterVirtualNode
from repro.intra.pointercache import PointerCache
from repro.obs import trace
from repro.util import perf
from repro.util.bloom import BloomFilter
from repro.util.ringmap import ColumnarRingIndex

if TYPE_CHECKING:  # pragma: no cover
    from repro.inter.network import InterDomainNetwork


@dataclass
class ASBestMatch:
    """One greedy decision at an AS."""

    dest_id: FlatId
    pointer: Optional[ASPointer]
    resident_vn: Optional[InterVirtualNode]
    distance: int

    @property
    def is_local(self) -> bool:
        return self.resident_vn is not None


@dataclass
class _Entry:
    """``ptrs`` holds ``(owner_seq, cand_seq, pointer)`` tuples kept
    sorted, reproducing the seed rebuild's pointer order (hosted VNs in
    hosting order, each VN's candidates in table order)."""

    vn: Optional[InterVirtualNode] = None
    ptrs: List[tuple] = field(default_factory=list)


class RoflAS:
    """One AS running interdomain ROFL."""

    def __init__(self, asn: Hashable, space: RingSpace,
                 cache_entries: int = 0, bloom_bits: int = 1 << 14):
        self.asn = asn
        self.space = space
        self.hosted: Dict[FlatId, InterVirtualNode] = {}
        self.cache = PointerCache(space, cache_entries)
        #: Hosts joined at or below this AS ("bloom filters that summarize
        #: the set of hosts in the subtree rooted at the AS").
        self.subtree_bloom = BloomFilter(n_bits=bloom_bits, n_hashes=4)

        # -- incremental candidate index state (see module docstring) --
        self._index = ColumnarRingIndex(space)
        self._seq = itertools.count()
        self._owner_seq: Dict[int, int] = {}
        self._iv_hosted: Dict[int, InterVirtualNode] = {}
        self._contrib: Dict[int, tuple] = {}    # vn.id.value -> (seq, [key values])
        self._dirty_owners: set = set()
        self._dirty_all = True
        #: Monotonic flush-epoch counter: one increment per index flush
        #: that actually re-diffed or rebuilt state.  Mark-dirty storms
        #: between two lookups all land in the same epoch.
        self.flush_epoch = 0

    # -- serialization ------------------------------------------------------------

    #: Candidate-index fields that are pure derived state: every one is
    #: reconstructible from ``hosted`` by a full rebuild, so they are
    #: dropped on serialize (rebuild-on-load, like SPF/BGP caches).  This
    #: also keeps the canonical state hash independent of *lookup
    #: history* — which ASes happened to flush, and how often, depends on
    #: read traffic, not on routing state, and the sharded runtime
    #: (:mod:`repro.sim.shard`) relies on the hash not seeing it.
    _DERIVED_FIELDS = ("_index", "_seq", "_owner_seq", "_iv_hosted",
                       "_contrib", "_dirty_owners", "_dirty_all")

    def __getstate__(self):
        state = self.__dict__.copy()
        for name in self._DERIVED_FIELDS:
            state.pop(name, None)
        state["flush_epoch"] = 0
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._index = ColumnarRingIndex(self.space)
        self._seq = itertools.count()
        self._owner_seq = {}
        self._iv_hosted = {vn.id.value: vn for vn in self.hosted.values()}
        self._contrib = {}
        self._dirty_owners = set()
        self._dirty_all = True
        self.flush_epoch = 0

    # -- hosting -----------------------------------------------------------------

    def host(self, vn: InterVirtualNode) -> None:
        if vn.id in self.hosted:
            raise ValueError("ID {} already hosted at {}".format(vn.id, self.asn))
        if vn.home_as != self.asn:
            raise ValueError("virtual node belongs to another AS")
        self.hosted[vn.id] = vn
        iv = vn.id.value
        self._iv_hosted[iv] = vn
        self._owner_seq[iv] = next(self._seq)
        self.mark_dirty(vn)

    def unhost(self, vn_id: FlatId) -> InterVirtualNode:
        vn = self.hosted.pop(vn_id)
        iv = vn_id.value
        self._iv_hosted.pop(iv, None)
        self._owner_seq.pop(iv, None)
        if not self._dirty_all:
            self._dirty_owners.add(iv)
        return vn

    def hosts_id(self, vn_id: FlatId) -> bool:
        return vn_id in self.hosted

    # -- the aggregated candidate index ----------------------------------------------

    def mark_dirty(self, vn: Optional[InterVirtualNode] = None) -> None:
        """Note a pointer-state change; with ``vn`` given only that VN's
        contribution is re-diffed on the next lookup."""
        if vn is None:
            self._dirty_all = True
            self._dirty_owners.clear()
        elif not self._dirty_all:
            perf.counter("asnode.index.marks")
            self._dirty_owners.add(vn.id.value)

    def _entry_for(self, key_iv: int) -> _Entry:
        entry = self._index.get(key_iv)
        if entry is None:
            entry = _Entry()
            self._index.set(key_iv, entry)
        return entry

    def _add_contrib(self, vn: InterVirtualNode) -> None:
        iv = vn.id.value
        seq = self._owner_seq[iv]
        keys = [iv]
        self._entry_for(iv).vn = vn
        for cand_seq, ptr in enumerate(vn.candidate_pointers()):
            dest_iv = ptr.dest_id.value
            insort(self._entry_for(dest_iv).ptrs, (seq, cand_seq, ptr))
            keys.append(dest_iv)
        self._contrib[iv] = (seq, keys)

    def _remove_contrib(self, owner_iv: int) -> None:
        record = self._contrib.pop(owner_iv, None)
        if record is None:
            return
        seq, keys = record
        index = self._index
        for key_iv in keys:
            entry = index.get(key_iv)
            if entry is None:
                continue
            if key_iv == owner_iv and entry.vn is not None \
                    and entry.vn.id.value == owner_iv:
                entry.vn = None
            if entry.ptrs:
                entry.ptrs = [t for t in entry.ptrs if t[0] != seq]
            if entry.vn is None and not entry.ptrs:
                index.delete(key_iv)

    def _flush_index(self) -> None:
        if self._dirty_all:
            with perf.timed("asnode.index.flush"):
                perf.counter("asnode.index.rebuild")
                self.flush_epoch += 1
                self._index = ColumnarRingIndex(self.space)
                self._contrib = {}
                self._seq = itertools.count()
                self._owner_seq = {vn.id.value: next(self._seq)
                                   for vn in self.hosted.values()}
                for vn in self.hosted.values():
                    self._add_contrib(vn)
                self._dirty_all = False
                self._dirty_owners.clear()
        elif self._dirty_owners:
            with perf.timed("asnode.index.flush"):
                perf.counter("asnode.index.refresh.flushes")
                perf.counter("asnode.index.refresh.owners",
                             len(self._dirty_owners))
                self.flush_epoch += 1
                for owner_iv in self._dirty_owners:
                    self._remove_contrib(owner_iv)
                    vn = self._iv_hosted.get(owner_iv)
                    if vn is not None:
                        self._add_contrib(vn)
                self._dirty_owners.clear()

    def flush_index(self) -> None:
        """Apply any pending index maintenance now instead of lazily on
        the next lookup — benchmarks call this between their join and
        send phases so deferred flush storms are charged to the phase
        that caused them."""
        self._flush_index()

    @staticmethod
    def _vn_in_ring(vn: InterVirtualNode, scope: Optional[Hashable]) -> bool:
        """Ring membership: an ID belongs to a level's merged ring iff it
        joined that level (its home ring always counts)."""
        if scope is None:
            return True
        return scope == vn.home_as or scope in vn.joined_levels

    def best_match(self, net: "InterDomainNetwork", dest: FlatId,
                   scope: Optional[Hashable] = None,
                   arrived_from: Optional[Hashable] = None,
                   use_cache: bool = True,
                   max_scan: int = 512) -> Optional[ASBestMatch]:
        """The closest admissible candidate to ``dest`` (not past it).

        Admissibility: scoped searches only see ring members / pointers
        formed at levels inside the scope (Algorithm 3's pruning); transit
        shortcuts (``arrived_from`` set) must obey the BGP-like import
        rule; cached pointers additionally pass the bloom-filter isolation
        guard and lose to equally good non-cache state.
        """
        self._flush_index()
        index = self._index
        ivalues, entries = index.columns()
        n = len(ivalues)
        best: Optional[ASBestMatch] = None
        if n:
            dest_iv = dest.value
            mask = self.space.mask
            start = (index.rank_right(dest_iv) - 1) % n
            for offset in range(min(n, max_scan)):
                position = (start - offset) % n
                iv = ivalues[position]
                entry = entries[position]
                vn = entry.vn
                if vn is not None and self._vn_in_ring(vn, scope):
                    best = ASBestMatch(vn.id, None, vn, (dest_iv - iv) & mask)
                    break
                pointer = self._pick_pointer(net, entry.ptrs, scope,
                                             arrived_from)
                if pointer is not None:
                    best = ASBestMatch(pointer.dest_id, pointer, None,
                                       (dest_iv - iv) & mask)
                    break
        if use_cache:
            cached = self._cache_match(net, dest, scope, arrived_from,
                                       best.distance if best else None)
            if cached is not None:
                return cached
        return best

    def _pick_pointer(self, net: "InterDomainNetwork",
                      ptr_entries: List[tuple], scope: Optional[Hashable],
                      arrived_from: Optional[Hashable]) -> Optional[ASPointer]:
        for entry in ptr_entries:
            ptr = entry[2]
            if scope is not None and ptr.kind == "finger":
                # Scoped (join-time) searches walk the successor structure
                # only: a finger may target an ID that is not a member of
                # the ring being merged (its level records the owner's
                # isolation constraint, not the target's membership).
                continue
            if scope is not None and ptr.level is not None \
                    and not net.policy.level_contained_in(ptr.level, scope):
                continue
            if scope is not None and ptr.level is None \
                    and not net.policy.level_contains(scope, ptr.dest_as):
                continue
            if arrived_from is not None and not net.policy.shortcut_allowed(
                    arrived_from, self.asn, ptr.as_route):
                if trace.ENABLED:
                    trace.event_in_current("policy.filter", asn=str(self.asn),
                                           target=ptr.dest_id.to_hex(),
                                           rule=ptr.trace_tag)
                continue
            return ptr
        return None

    def _cache_match(self, net: "InterDomainNetwork", dest: FlatId,
                     scope: Optional[Hashable],
                     arrived_from: Optional[Hashable],
                     better_than: Optional[int]) -> Optional[ASBestMatch]:
        if len(self.cache) == 0 or scope is not None:
            # Scoped (join-time) searches never use caches — they would
            # escape the hierarchy level being merged.
            return None
        # Bloom-filter isolation guard: if the destination is (apparently)
        # below this AS, the cache must not be used — a cached shortcut
        # could pull intra-subtree traffic up through a provider.
        if dest in self.subtree_bloom:
            if trace.ENABLED:
                trace.event_in_current("cache.bloom-guard",
                                       asn=str(self.asn),
                                       dest=dest.to_hex())
            return None
        ptr = self.cache.best_match(dest)
        if ptr is None:
            if trace.ENABLED:
                trace.event_in_current("cache.miss", asn=str(self.asn),
                                       dest=dest.to_hex())
            return None
        dist = self.space.distance_cw_i(ptr.dest_id.value, dest.value)
        if better_than is not None and dist >= better_than:
            if trace.ENABLED:
                trace.event_in_current("cache.reject", asn=str(self.asn),
                                       dest=dest.to_hex(),
                                       target=ptr.dest_id.to_hex())
            return None
        if arrived_from is not None and not net.policy.shortcut_allowed(
                arrived_from, self.asn, ptr.as_route):
            if trace.ENABLED:
                trace.event_in_current("policy.filter", asn=str(self.asn),
                                       target=ptr.dest_id.to_hex(),
                                       rule="cache")
            return None
        if trace.ENABLED:
            trace.event_in_current("cache.hit", asn=str(self.asn),
                                   dest=dest.to_hex(),
                                   target=ptr.dest_id.to_hex())
        return ASBestMatch(ptr.dest_id, ptr, None, dist)

    # -- upkeep -------------------------------------------------------------------

    def drop_pointer(self, pointer: ASPointer) -> None:
        self.cache.invalidate_id(pointer.dest_id)
        for vn in self.hosted.values():
            if vn.drop_dead_target(pointer.dest_id):
                self.mark_dirty(vn)

    def reroute_pointer(self, new: ASPointer) -> None:
        """Swap in a repaired route for every pointer naming its target."""
        self.cache.replace(new)
        for vn in self.hosted.values():
            changed = False
            for table in (vn.succ_by_level, vn.pred_by_level):
                for lvl, ptr in list(table.items()):
                    if ptr.dest_id == new.dest_id:
                        table[lvl] = ASPointer(new.dest_id, new.dest_as,
                                               new.as_route, level=lvl,
                                               kind=ptr.kind)
                        changed = True
            fingers = [ASPointer(new.dest_id, new.dest_as, new.as_route,
                                 level=f.level, kind=f.kind)
                       if f.dest_id == new.dest_id else f
                       for f in vn.fingers]
            if any(a is not b for a, b in zip(fingers, vn.fingers)):
                changed = True
            vn.fingers = fingers
            if changed:
                self.mark_dirty(vn)

    def state_entries(self, include_cache: bool = True) -> int:
        total = sum(vn.state_entries() for vn in self.hosted.values())
        if include_cache:
            total += len(self.cache)
        return total

    def __repr__(self) -> str:
        return "RoflAS({!r}, hosted={}, cache={})".format(
            self.asn, len(self.hosted), len(self.cache))
