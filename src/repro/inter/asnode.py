"""The per-AS aggregated routing state (the paper models each AS as a
single node in its interdomain simulations; Section 6.1).

An AS node aggregates the pointer state of every identifier it hosts,
keeps the AS-level pointer cache with its bloom-filter isolation guard
(Section 4.1), and the bloom filter summarising the hosts in its subtree
(consulted by the peering machinery of Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, TYPE_CHECKING

from repro.idspace.identifier import FlatId, RingSpace
from repro.inter.pointers import ASPointer, InterVirtualNode
from repro.intra.pointercache import PointerCache
from repro.util.bloom import BloomFilter
from repro.util.ringmap import SortedRingMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.inter.network import InterDomainNetwork


@dataclass
class ASBestMatch:
    """One greedy decision at an AS."""

    dest_id: FlatId
    pointer: Optional[ASPointer]
    resident_vn: Optional[InterVirtualNode]
    distance: int

    @property
    def is_local(self) -> bool:
        return self.resident_vn is not None


@dataclass
class _Entry:
    vn: Optional[InterVirtualNode] = None
    pointers: List[ASPointer] = field(default_factory=list)


class RoflAS:
    """One AS running interdomain ROFL."""

    def __init__(self, asn: Hashable, space: RingSpace,
                 cache_entries: int = 0, bloom_bits: int = 1 << 14):
        self.asn = asn
        self.space = space
        self.hosted: Dict[FlatId, InterVirtualNode] = {}
        self.cache = PointerCache(space, cache_entries)
        #: Hosts joined at or below this AS ("bloom filters that summarize
        #: the set of hosts in the subtree rooted at the AS").
        self.subtree_bloom = BloomFilter(n_bits=bloom_bits, n_hashes=4)
        self._index: Optional[SortedRingMap] = None

    # -- hosting -----------------------------------------------------------------

    def host(self, vn: InterVirtualNode) -> None:
        if vn.id in self.hosted:
            raise ValueError("ID {} already hosted at {}".format(vn.id, self.asn))
        if vn.home_as != self.asn:
            raise ValueError("virtual node belongs to another AS")
        self.hosted[vn.id] = vn
        self.mark_dirty()

    def unhost(self, vn_id: FlatId) -> InterVirtualNode:
        vn = self.hosted.pop(vn_id)
        self.mark_dirty()
        return vn

    def hosts_id(self, vn_id: FlatId) -> bool:
        return vn_id in self.hosted

    # -- the aggregated candidate index ----------------------------------------------

    def mark_dirty(self) -> None:
        self._index = None

    def _ensure_index(self) -> SortedRingMap:
        if self._index is not None:
            return self._index
        index = SortedRingMap(self.space)
        for vn in self.hosted.values():
            entry = index.get(vn.id)
            if entry is None:
                entry = _Entry()
                index.insert(vn.id, entry)
            entry.vn = vn
        for vn in self.hosted.values():
            for ptr in vn.candidate_pointers():
                entry = index.get(ptr.dest_id)
                if entry is None:
                    entry = _Entry()
                    index.insert(ptr.dest_id, entry)
                entry.pointers.append(ptr)
        self._index = index
        return index

    @staticmethod
    def _vn_in_ring(vn: InterVirtualNode, scope: Optional[Hashable]) -> bool:
        """Ring membership: an ID belongs to a level's merged ring iff it
        joined that level (its home ring always counts)."""
        if scope is None:
            return True
        return scope == vn.home_as or scope in vn.joined_levels

    def best_match(self, net: "InterDomainNetwork", dest: FlatId,
                   scope: Optional[Hashable] = None,
                   arrived_from: Optional[Hashable] = None,
                   use_cache: bool = True,
                   max_scan: int = 512) -> Optional[ASBestMatch]:
        """The closest admissible candidate to ``dest`` (not past it).

        Admissibility: scoped searches only see ring members / pointers
        formed at levels inside the scope (Algorithm 3's pruning); transit
        shortcuts (``arrived_from`` set) must obey the BGP-like import
        rule; cached pointers additionally pass the bloom-filter isolation
        guard and lose to equally good non-cache state.
        """
        index = self._ensure_index()
        best: Optional[ASBestMatch] = None
        scanned = 0
        for cand_id in index.iter_predecessors(dest):
            scanned += 1
            if scanned > max_scan:
                break
            entry = index[cand_id]
            dist = self.space.distance_cw(cand_id, dest)
            if entry.vn is not None and self._vn_in_ring(entry.vn, scope):
                best = ASBestMatch(cand_id, None, entry.vn, dist)
                break
            pointer = self._pick_pointer(net, entry.pointers, scope, arrived_from)
            if pointer is not None:
                best = ASBestMatch(cand_id, pointer, None, dist)
                break
        if use_cache:
            cached = self._cache_match(net, dest, scope, arrived_from,
                                       best.distance if best else None)
            if cached is not None:
                return cached
        return best

    def _pick_pointer(self, net: "InterDomainNetwork",
                      pointers: List[ASPointer], scope: Optional[Hashable],
                      arrived_from: Optional[Hashable]) -> Optional[ASPointer]:
        for ptr in pointers:
            if scope is not None and ptr.kind == "finger":
                # Scoped (join-time) searches walk the successor structure
                # only: a finger may target an ID that is not a member of
                # the ring being merged (its level records the owner's
                # isolation constraint, not the target's membership).
                continue
            if scope is not None and ptr.level is not None \
                    and not net.policy.level_contained_in(ptr.level, scope):
                continue
            if scope is not None and ptr.level is None \
                    and not net.policy.level_contains(scope, ptr.dest_as):
                continue
            if arrived_from is not None and not net.policy.shortcut_allowed(
                    arrived_from, self.asn, ptr.as_route):
                continue
            return ptr
        return None

    def _cache_match(self, net: "InterDomainNetwork", dest: FlatId,
                     scope: Optional[Hashable],
                     arrived_from: Optional[Hashable],
                     better_than: Optional[int]) -> Optional[ASBestMatch]:
        if len(self.cache) == 0 or scope is not None:
            # Scoped (join-time) searches never use caches — they would
            # escape the hierarchy level being merged.
            return None
        # Bloom-filter isolation guard: if the destination is (apparently)
        # below this AS, the cache must not be used — a cached shortcut
        # could pull intra-subtree traffic up through a provider.
        if dest in self.subtree_bloom:
            return None
        ptr = self.cache.best_match(dest)
        if ptr is None:
            return None
        dist = self.space.distance_cw(ptr.dest_id, dest)
        if better_than is not None and dist >= better_than:
            return None
        if arrived_from is not None and not net.policy.shortcut_allowed(
                arrived_from, self.asn, ptr.as_route):
            return None
        return ASBestMatch(ptr.dest_id, ptr, None, dist)

    # -- upkeep -------------------------------------------------------------------

    def drop_pointer(self, pointer: ASPointer) -> None:
        self.cache.invalidate_id(pointer.dest_id)
        for vn in self.hosted.values():
            if vn.drop_dead_target(pointer.dest_id):
                self.mark_dirty()

    def reroute_pointer(self, new: ASPointer) -> None:
        """Swap in a repaired route for every pointer naming its target."""
        self.cache.replace(new)
        for vn in self.hosted.values():
            for table in (vn.succ_by_level, vn.pred_by_level):
                for lvl, ptr in list(table.items()):
                    if ptr.dest_id == new.dest_id:
                        table[lvl] = ASPointer(new.dest_id, new.dest_as,
                                               new.as_route, level=lvl,
                                               kind=ptr.kind)
                        self.mark_dirty()
            vn.fingers = [ASPointer(new.dest_id, new.dest_as, new.as_route,
                                    level=f.level, kind=f.kind)
                          if f.dest_id == new.dest_id else f
                          for f in vn.fingers]

    def state_entries(self, include_cache: bool = True) -> int:
        total = sum(vn.state_entries() for vn in self.hosted.values())
        if include_cache:
            total += len(self.cache)
        return total

    def __repr__(self) -> str:
        return "RoflAS({!r}, hosted={}, cache={})".format(
            self.asn, len(self.hosted), len(self.cache))
