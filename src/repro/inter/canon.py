"""Canon-style hierarchical joining (Section 4.1, Algorithm 3).

An identifier joins its home ring, then — level by level, innermost
first — the merged ring of every hierarchy level its strategy covers.
Per level the join is: a scoped predecessor lookup (greedy routing pruned
to the level's subtree), the response, and the setup/ack exchange with
the discovered successor.  Two paper optimisations are implemented:

* **condition (b)** — a successor pointer is only *stored* when it
  differs from the successor already known at an inner level ("It then
  removes unnecessary successors"), keeping per-ID state O(log n);
* **redundant-lookup elimination** — "we leveraged this observation to
  optimize the multi-homed join, by eliminating redundant lookups that
  resolve to the same successor": when the level's successor is already
  known, only a short confirmation exchange is charged.

The module also maintains the per-level ring registry, which is the
*verification oracle*: the honest (message-charged) lookup walks must
agree with it, and every disagreement is counted in
``net.lookup_mismatches`` (asserted zero by the test-suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, TYPE_CHECKING

from repro.idspace.crypto import authenticate
from repro.idspace.identifier import FlatId
from repro.inter import routing
from repro.inter.pointers import ASPointer, InterVirtualNode
from repro.inter.policy import JoinStrategy
from repro.topology.hosts import PlannedHost
from repro.util import perf

if TYPE_CHECKING:  # pragma: no cover
    from repro.inter.network import InterDomainNetwork

#: Messages charged for a dedup'd level: the confirmation probe to the
#: already-known successor and its answer.
CONFIRMATION_COST = 2


class InterJoinError(Exception):
    """An interdomain join could not complete."""


@dataclass
class InterJoinReceipt:
    host_name: str
    flat_id: FlatId
    home_as: Hashable
    strategy: str
    messages: int
    levels_joined: int
    fingers: int


def join_inter(net: "InterDomainNetwork", host: PlannedHost,
               strategy: JoinStrategy,
               n_fingers: Optional[int] = None,
               via_provider: Optional[Hashable] = None,
               flat_id_override: Optional[FlatId] = None,
               prune=None, walks=None) -> InterJoinReceipt:
    """Join one host's identifier across its hierarchy (Fig 8a workload).

    ``via_provider`` pins a single-homed join's first up-hop (the
    traffic-engineering knob of Section 5.1); ``flat_id_override`` joins a
    group identifier ``(G, x)`` instead of the hash-of-public-key ID (the
    group's shared key authenticates the join).

    ``walks`` (a :class:`repro.sim.shard.WalkContext`, or None for the
    ordinary inline path) splits the join into its cheap deterministic
    *install* (oracle predecessor, pointer setup — executed identically
    on every shard replica) and its expensive read-only *walks* (the
    honest scoped lookups and finger selection — executed only on the
    shard that owns this host's home AS, with the resulting charges and
    finger table applied everywhere at the next window barrier).  The
    returned receipt's ``messages``/``fingers`` then cover the install
    legs only; the walk messages land on the operation record at barrier
    time, so the closed stats are identical to an unsharded run.
    """
    home = host.attach_at
    if not net.as_is_up(home):
        raise InterJoinError("home AS {} is down".format(home))
    if flat_id_override is None:
        challenge = "inter:{}:{}".format(home, host.name).encode("utf-8")
        flat_id = authenticate(host.key_pair.prove_ownership(challenge),
                               net.authority)
    else:
        flat_id = flat_id_override
    if flat_id in net.id_owner_index:
        raise InterJoinError("ID {} already joined".format(flat_id))

    vn = InterVirtualNode(id=flat_id, home_as=home, host_name=host.name,
                          strategy=strategy.value)
    chain = net.policy.join_chain(home, strategy, via_provider=via_provider,
                                  prune=prune)
    if n_fingers is None:
        n_fingers = 0 if strategy is JoinStrategy.EPHEMERAL else net.n_fingers

    with perf.timed("inter.join"), \
            net.stats.operation("join", host=host.name,
                                strategy=strategy.value) as op:
        net.ases[home].host(vn)
        net.id_owner_index[vn.id] = vn
        with perf.timed("inter.join.levels"):
            for level in chain:
                _join_level(net, vn, level, walks=walks)
        _update_blooms(net, vn)
        if n_fingers and walks is None:
            from repro.inter.fingers import acquire_fingers
            acquire_fingers(net, vn, n_fingers)
        messages = op["messages"]

    net.hosts[host.name] = vn
    net.host_records[host.name] = host
    if walks is not None:
        walks.note_join(op, vn, n_fingers)
    return InterJoinReceipt(host_name=host.name, flat_id=vn.id, home_as=home,
                            strategy=strategy.value, messages=messages,
                            levels_joined=len(vn.joined_levels),
                            fingers=len(vn.fingers))


def _join_level(net: "InterDomainNetwork", vn: InterVirtualNode,
                level: Hashable, walks=None) -> None:
    """Join one hierarchy level."""
    from repro.inter.routing import effective_successor

    ring = net.ring_at(level)

    if len(ring) == 0:
        # First member of this level's merged ring: the registration that
        # lets later joiners bootstrap ("having host identifiers register
        # with their providers … when they join").
        ring.insert(vn.id, vn)
        vn.joined_levels.append(level)
        return

    oracle_pred: InterVirtualNode = ring[ring.predecessor(vn.id)]
    oracle_succ: InterVirtualNode = ring[ring.successor(vn.id)]

    # Condition (b) + redundant-lookup elimination: if a pointer stored at
    # an already-joined level *contained in this one* already reaches this
    # level's true successor, the lookup resolves to a known successor —
    # charge only the confirmation probe and store nothing new.
    effective = effective_successor(net, vn, level)
    deduped = effective is not None and effective.dest_id == oracle_succ.id

    if deduped:
        net.stats.charge_hops(CONFIRMATION_COST, "join")
        pred = oracle_pred
    elif walks is None:
        pred = _scoped_lookup(net, vn, level)
        if pred is None or pred.id != oracle_pred.id:
            # The distributed walk disagreed with the authoritative ring —
            # count it (tests assert zero) and fall back to the oracle so
            # state stays consistent.
            net.lookup_mismatches += 1
            pred = oracle_pred
        # Response: predecessor → home, carrying its successor info.
        _charge_scoped_path(net, pred.home_as, vn.home_as, level, "join")
    else:
        # Sharded: the honest walk runs only on the owning shard (under a
        # scratch collector; charges + any mismatch travel as a barrier
        # effect), while every replica installs from the oracle — which
        # is exactly the state the inline path converges to, mismatches
        # included.  The response leg is deterministic, so it is charged
        # in lock-step here.
        if walks.compute:
            walks.lookup(net, vn, level, oracle_pred)
        pred = oracle_pred
        _charge_scoped_path(net, pred.home_as, vn.home_as, level, "join")

    succ = oracle_succ if oracle_succ.id != vn.id else pred
    if not deduped:
        route_to_succ = _route_to_vn(net, vn.home_as, succ, level)
        if route_to_succ is not None:
            # Setup + ack with the successor.
            net.stats.charge_hops(2 * (len(route_to_succ) - 1), "join")
            _fill_as_caches(net, route_to_succ, succ)
            vn.set_successor(level, ASPointer(succ.id, succ.home_as,
                                              tuple(route_to_succ),
                                              level=level))
            back = _route_to_vn(net, succ.home_as, vn, level)
            if back is not None:
                succ.pred_by_level[level] = ASPointer(vn.id, vn.home_as,
                                                      tuple(back),
                                                      level=level,
                                                      kind="predecessor")
            net.ases[succ.home_as].mark_dirty(succ)

    # The predecessor always re-points at the new node at this level.
    pred_route = _route_to_vn(net, pred.home_as, vn, level)
    if pred_route is not None:
        _set_successor_preserving_coverage(
            net, pred, level,
            ASPointer(vn.id, vn.home_as, tuple(pred_route), level=level))
        net.ases[pred.home_as].mark_dirty(pred)
        forward = net.policy.policy_path(vn.home_as, pred.home_as, scope=level)
        if forward is not None:
            vn.pred_by_level[level] = ASPointer(pred.id, pred.home_as,
                                                tuple(forward), level=level,
                                                kind="predecessor")

    ring.insert(vn.id, vn)
    vn.joined_levels.append(level)
    net.ases[vn.home_as].mark_dirty(vn)


def _set_successor_preserving_coverage(net: "InterDomainNetwork",
                                       owner: InterVirtualNode,
                                       level: Hashable,
                                       new_ptr: ASPointer) -> None:
    """Replace ``owner``'s successor pointer at ``level`` without breaking
    condition-(b) coverage of outer levels.

    A pointer stored at an inner level may be serving as the effective
    successor for outer joined levels (condition (b) stored nothing
    there).  When joining strategies are mixed, the *new* target may not
    be a member of those outer rings, so the old pointer must first be
    materialised at each outer level it was covering.  (The information
    needed is carried by the join exchange: the joiner knows which levels
    it is joining, so the predecessor can tell which of its dedup'd
    levels lose coverage.)
    """
    old = owner.succ_by_level.get(level)
    owner.set_successor(level, new_ptr)
    if old is None or old.dest_id == new_ptr.dest_id:
        return
    for outer in owner.joined_levels:
        if outer == level or outer in owner.succ_by_level:
            continue
        if not net.policy.level_contained_in(level, outer):
            continue
        outer_ring = net.ring_at(outer)
        if new_ptr.dest_id in outer_ring:
            continue  # the new target covers the outer level too
        if old.dest_id in outer_ring:
            owner.succ_by_level[outer] = ASPointer(
                old.dest_id, old.dest_as, old.as_route, level=outer,
                kind=old.kind)


def _allowed_entry_providers(net: "InterDomainNetwork",
                             vn: InterVirtualNode) -> Optional[set]:
    """Providers through which traffic may enter ``vn``'s home AS.

    A single-homed join "sends a join out" on one provider only — the
    inbound-TE semantics of Section 5.1: packets for a suffix-``k``
    identifier must enter via provider ``k``.  Multihomed/peering joins
    accept any provider (returns ``None`` = unconstrained)."""
    if vn.strategy != JoinStrategy.SINGLE_HOMED.value:
        return None
    providers = set(net.asg.providers(vn.home_as))
    joined = providers & set(vn.joined_levels)
    return joined or None


def _route_to_vn(net: "InterDomainNetwork", from_as: Hashable,
                 vn: InterVirtualNode, level: Hashable):
    """An AS-level source route from ``from_as`` to ``vn``, honouring the
    entry-provider constraint of single-homed joins."""
    route = net.policy.policy_path(from_as, vn.home_as, scope=level)
    if route is None:
        route = net.policy.policy_path(from_as, vn.home_as)
    allowed = _allowed_entry_providers(net, vn)
    if route is None or allowed is None or len(route) < 2 \
            or route[-2] in allowed:
        return route
    # Re-route through an allowed provider: leg to the provider plus the
    # final down-step into the home AS.
    best = None
    for provider in sorted(allowed, key=str):
        leg = net.policy.policy_path(from_as, provider, scope=level)
        if leg is None:
            leg = net.policy.policy_path(from_as, provider)
        if leg is None:
            continue
        candidate = tuple(leg) + (vn.home_as,)
        if not net.policy.route_is_valley_free(candidate):
            continue
        if best is None or len(candidate) < len(best):
            best = candidate
    return best or route


def _scoped_lookup(net: "InterDomainNetwork", vn: InterVirtualNode,
                   level: Hashable) -> Optional[InterVirtualNode]:
    """The honest, message-charged predecessor lookup at one level."""
    outcome = routing.route(net, vn.home_as, vn.id, mode="lookup",
                            scope=level, category="join", use_cache=False)
    if (outcome.delivered and outcome.final_vn is not None
            and outcome.final_vn.id != vn.id):
        return outcome.final_vn
    # Bootstrap: the home AS holds no usable state in this ring (a walk
    # that only found the joining ID itself counts as none); forward the
    # request to a registered bootstrap node and retry from there.
    ring = net.ring_at(level)
    if len(ring) == 0:
        return None
    boot: InterVirtualNode = ring[next(iter(ring))]
    cost = _charge_scoped_path(net, vn.home_as, boot.home_as, level, "join")
    if cost is None:
        return None
    outcome = routing.route(net, boot.home_as, vn.id, mode="lookup",
                            scope=level, category="join", use_cache=False)
    if (outcome.delivered and outcome.final_vn is not None
            and outcome.final_vn.id != vn.id):
        return outcome.final_vn
    return None


def _charge_scoped_path(net: "InterDomainNetwork", src: Hashable,
                        dst: Hashable, level: Hashable,
                        category: str) -> Optional[int]:
    path = net.policy.policy_path(src, dst, scope=level)
    if path is None:
        path = net.policy.policy_path(src, dst)
    if path is None:
        return None
    hops = len(path) - 1
    net.stats.charge_hops(hops, category)
    return hops


def _fill_as_caches(net: "InterDomainNetwork", route: tuple,
                    target: InterVirtualNode) -> None:
    """Transit ASes on a setup path cache a pointer to the target ID
    (control-packet cache fill, as in the intradomain design)."""
    if not net.cache_fill_enabled:
        return
    for i, asn in enumerate(route[:-1]):
        if asn == target.home_as:
            continue
        suffix = tuple(route[i:])
        net.ases[asn].cache.put(ASPointer(target.id, target.home_as,
                                          suffix, kind="cache"))


def _update_blooms(net: "InterDomainNetwork", vn: InterVirtualNode) -> None:
    """Add the new ID to the subtree bloom filter of every ancestor
    ("these bloom filters are also updated during the join process")."""
    for asn in net.policy.hierarchy.up_chain(vn.home_as):
        net.ases[asn].subtree_bloom.add(vn.id)
