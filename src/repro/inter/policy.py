"""Policy machinery for interdomain ROFL (Sections 4.1–4.2).

This module owns three things:

* **Hierarchy levels.**  A join happens at a set of *levels*; each level is
  a subtree root: a real AS, or a *virtual AS* standing for a peering link
  (conversion rule (a), Fig 4).  Peering cliques collapse to one virtual
  AS ("if several ASes are all peered together in a clique (e.g. the
  Tier 1 ISPs), we only need a single virtual AS"), which also serves as
  the global root ring.
* **Join strategies** (the Fig 8a comparison): ephemeral, single-homed,
  recursively multihomed, and peering.  Backup links never carry join
  requests ("backup relationships are supported by directing join
  requests only over non-backup links").
* **Valley-free path computation** within a level's subtree — the AS-level
  source routes pointers carry, and the BGP-like import rule transit ASes
  apply when shortcutting.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.topology.asgraph import ASGraph, Relationship
from repro.topology.hierarchy import HierarchyIndex


class JoinStrategy(enum.Enum):
    """The four joining strategies of Section 6.3 / Fig 8a."""

    EPHEMERAL = "ephemeral"
    SINGLE_HOMED = "single-homed"
    MULTIHOMED = "multihomed"
    PEERING = "peering"


class VirtualAS:
    """Conversion rule (a): a stand-in provider for a set of mutually
    peered ASes.  Hashable and usable anywhere a level key is expected."""

    __slots__ = ("members",)

    def __init__(self, members: FrozenSet[Hashable]):
        if len(members) < 2:
            raise ValueError("a virtual AS joins at least two peers")
        self.members = frozenset(members)

    def __eq__(self, other) -> bool:
        return isinstance(other, VirtualAS) and self.members == other.members

    def __hash__(self) -> int:
        return hash(("vAS", self.members))

    def __repr__(self) -> str:
        return "VirtualAS({})".format("|".join(sorted(map(str, self.members))))


class PolicyView:
    """Policy-aware wrapper over an :class:`ASGraph`.

    Precomputes the hierarchy index, the virtual-AS set, per-level subtree
    membership, and valley-free shortest paths on demand.
    """

    def __init__(self, asg: ASGraph):
        self.asg = asg
        self.hierarchy = HierarchyIndex(asg)
        self.virtual_ases: List[VirtualAS] = self._build_virtual_ases()
        self._vas_by_member: Dict[Hashable, List[VirtualAS]] = {}
        for vas in self.virtual_ases:
            for member in vas.members:
                self._vas_by_member.setdefault(member, []).append(vas)
        self._subtree_cache: Dict[Hashable, Set[Hashable]] = {}
        self._policy_path_cache: Dict[Tuple, Optional[Tuple[Hashable, ...]]] = {}
        self._step_cache: Dict[Tuple[Hashable, Hashable], Optional[str]] = {}
        self._profile_cache: Dict[Tuple[Hashable, Hashable],
                                  Tuple[int, int]] = {}
        root = self.root_level()
        if root is None:
            raise ValueError("AS graph has no global root ring "
                             "(no tier-1 peering clique or single tier-1)")
        self.root = root

    def __getstate__(self):
        """Serialize without the pure memo caches (path/step/subtree/
        profile): they rebuild deterministically on demand, so
        :mod:`repro.snapshot` marks them rebuild-on-load and the
        canonical state hash stays independent of query history."""
        state = self.__dict__.copy()
        state["_subtree_cache"] = {}
        state["_policy_path_cache"] = {}
        state["_step_cache"] = {}
        state["_profile_cache"] = {}
        return state

    # -- virtual ASes ------------------------------------------------------------

    def _build_virtual_ases(self) -> List[VirtualAS]:
        """One virtual AS per maximal peering clique we detect greedily,
        one per remaining peer link."""
        peer_edges = [(a, b) for a, b, rel in self.asg.links()
                      if rel is Relationship.PEER]
        # The tier-1 clique: ASes with no providers that all peer.
        tier1 = set(self.asg.tier1())
        cliques: List[FrozenSet[Hashable]] = []
        covered: Set[FrozenSet[Hashable]] = set()
        if len(tier1) >= 2 and all(
                self.asg.relationship(a, b) is Relationship.PEER
                for a in tier1 for b in tier1 if str(a) < str(b)):
            cliques.append(frozenset(tier1))
            for a in tier1:
                for b in tier1:
                    if str(a) < str(b):
                        covered.add(frozenset((a, b)))
        out = [VirtualAS(members) for members in cliques]
        for a, b in peer_edges:
            key = frozenset((a, b))
            if key not in covered:
                covered.add(key)
                out.append(VirtualAS(key))
        return out

    def root_level(self) -> Optional[Hashable]:
        """The global ring's level: the tier-1 clique's virtual AS (or the
        single tier-1 AS when there is exactly one)."""
        tier1 = set(self.asg.tier1())
        if len(tier1) == 1:
            return next(iter(tier1))
        for vas in self.virtual_ases:
            if vas.members == frozenset(tier1):
                return vas
        return None

    # -- subtrees ------------------------------------------------------------------

    def subtree(self, level: Hashable) -> Set[Hashable]:
        """All real ASes inside a level's subtree."""
        cached = self._subtree_cache.get(level)
        if cached is not None:
            return cached
        if isinstance(level, VirtualAS):
            members: Set[Hashable] = set()
            for asn in level.members:
                members |= self.hierarchy.subtree(asn)
        else:
            members = set(self.hierarchy.subtree(level))
        self._subtree_cache[level] = members
        return members

    def level_contains(self, level: Hashable, asn: Hashable) -> bool:
        return asn in self.subtree(level)

    def level_contained_in(self, inner: Hashable, outer: Hashable) -> bool:
        """Is ``subtree(inner)`` ⊆ ``subtree(outer)``?"""
        if inner == outer:
            return True
        outer_set = self.subtree(outer)
        if isinstance(inner, VirtualAS):
            return all(member in outer_set for member in inner.members)
        return inner in outer_set

    # -- join chains -------------------------------------------------------------------

    def join_chain(self, home_as: Hashable, strategy: JoinStrategy,
                   via_provider: Optional[Hashable] = None,
                   prune: Optional[Set[Hashable]] = None) -> List[Hashable]:
        """The ordered (innermost → outermost) levels an ID joins at.

        Every chain ends at the global root ring so the ID is globally
        reachable; the strategies differ in how much of the up-hierarchy
        (and which peering virtual ASes) they cover.  ``prune`` removes
        ASes from G_X before the chain is formed — "X may decide to prune
        G_X to reduce its join and maintenance overhead (which is roughly
        linear in the number of edges in this graph)" (Section 2.3).
        """
        if prune and home_as in prune:
            raise ValueError("cannot prune the home AS from its own chain")
        if strategy is JoinStrategy.EPHEMERAL:
            levels: List[Hashable] = [home_as]
        elif strategy is JoinStrategy.SINGLE_HOMED:
            levels = [home_as]
            current = home_as
            seen = {home_as}
            first_step = True
            while True:
                providers = sorted(self.asg.providers(current), key=str)
                if not providers:
                    break
                if first_step and via_provider is not None:
                    if via_provider not in providers:
                        raise ValueError("{} is not a provider of {}".format(
                            via_provider, home_as))
                    current = via_provider
                else:
                    current = providers[0]
                first_step = False
                if current in seen:
                    break
                seen.add(current)
                levels.append(current)
        else:  # MULTIHOMED and PEERING share the provider DAG coverage.
            if prune:
                dag = self._pruned_up_dag(home_as, prune)
                chain = list(dag.nodes)
            else:
                chain = [asn for asn in self.hierarchy.up_chain(home_as)]
            levels = list(chain)
            if strategy is JoinStrategy.PEERING:
                extra: List[VirtualAS] = []
                for asn in chain:
                    for vas in self._vas_by_member.get(asn, []):
                        if vas not in extra and vas != self.root:
                            extra.append(vas)
                levels.extend(extra)
        if prune:
            levels = [lvl for lvl in levels
                      if isinstance(lvl, VirtualAS) or lvl not in prune
                      or lvl == home_as]
        if self.root not in levels:
            levels.append(self.root)
        # Innermost-first: order by subtree size, root last.
        levels.sort(key=lambda lvl: (len(self.subtree(lvl)), str(lvl)))
        if strategy is JoinStrategy.EPHEMERAL:
            # Ephemeral IDs only hold a global successor (plus their home
            # ring membership, which costs nothing extra to model).
            return [home_as, self.root] if home_as != self.root else [self.root]
        return levels

    def _pruned_up_dag(self, home_as: Hashable, prune: Set[Hashable]):
        """The up-hierarchy DAG with the pruned ASes removed."""
        from repro.topology.hierarchy import up_hierarchy
        return up_hierarchy(self.asg, home_as, prune=prune)

    # -- valley-free paths ------------------------------------------------------------

    def step_type(self, a: Hashable, b: Hashable) -> Optional[str]:
        """Classify the directed AS hop ``a → b`` (memoised: the AS graph
        is static for the lifetime of a policy)."""
        key = (a, b)
        try:
            return self._step_cache[key]
        except KeyError:
            pass
        rel = self.asg.relationship(a, b)
        if rel is None:
            kind = None
        elif rel is Relationship.PEER:
            kind = "peer"
        elif rel in (Relationship.CUSTOMER_PROVIDER, Relationship.BACKUP):
            kind = "up" if self.asg.is_provider_of(b, a) else "down"
        else:
            kind = None
        self._step_cache[key] = kind
        return kind

    def route_is_valley_free(self, route: Sequence[Hashable]) -> bool:
        """up* (peer)? down* — at most one peer crossing, never up after
        going down or crossing a peer."""
        phase = 0  # 0 = may go up, 1 = peer crossed, 2 = descending
        for a, b in zip(route, route[1:]):
            step = self.step_type(a, b)
            if step is None:
                return False
            if step == "up":
                if phase != 0:
                    return False
            elif step == "peer":
                if phase != 0:
                    return False
                phase = 1
            else:  # down
                phase = 2
        return True

    def policy_path(self, src: Hashable, dst: Hashable,
                    scope: Optional[Hashable] = None,
                    use_backup: bool = False) -> Optional[Tuple[Hashable, ...]]:
        """Shortest valley-free AS path from ``src`` to ``dst``, restricted
        to ``scope``'s subtree (peer hops only where the scope's virtual
        AS covers them, or anywhere when unscoped)."""
        key = (src, dst, scope, use_backup)
        cached = self._policy_path_cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        path = self._policy_path_bfs(src, dst, scope, use_backup)
        self._policy_path_cache[key] = path
        return path

    def path_profile(self, src: Hashable,
                     dst: Hashable) -> Tuple[int, int]:
        """``(up-links, total hops)`` of the unscoped policy path
        ``src → dst``, memoised per ordered AS pair.

        The proximity metric of the finger-selection machinery (Section
        4.1): with ~N² AS pairs for a fixed topology the cache saturates
        quickly, turning the per-candidate step-type walk into one dict
        hit on the join hot path.  Unreachable pairs profile as a large
        sentinel so ``min()`` never prefers them.
        """
        key = (src, dst)
        cached = self._profile_cache.get(key)
        if cached is not None:
            return cached
        path = self.policy_path(src, dst)
        if path is None:
            profile = (1 << 30, 1 << 30)
        else:
            step_type = self.step_type
            ups = sum(1 for a, b in zip(path, path[1:])
                      if step_type(a, b) == "up")
            profile = (ups, len(path) - 1)
        self._profile_cache[key] = profile
        return profile

    def _allowed_peer_pairs(self, scope: Optional[Hashable]) -> Optional[Set[FrozenSet]]:
        """Which peer links a scoped path may cross.  Inside a real AS's
        subtree: none (pure customer-provider).  Inside a virtual AS:
        exactly the peerings among its members.  Unscoped: all."""
        if scope is None:
            return None
        if isinstance(scope, VirtualAS):
            return {frozenset((a, b)) for a in scope.members
                    for b in scope.members
                    if a != b and self.asg.relationship(a, b) is Relationship.PEER}
        return set()

    def _policy_path_bfs(self, src, dst, scope, use_backup):
        if src == dst:
            return (src,)
        allowed = self.subtree(scope) if scope is not None else None
        if allowed is not None and (src not in allowed or dst not in allowed):
            return None
        peer_ok = self._allowed_peer_pairs(scope)
        # Layered BFS over (AS, phase) with phase 0=may-ascend, 1=descending.
        from collections import deque
        start = (src, 0)
        parents: Dict[Tuple, Tuple] = {start: None}
        queue = deque([start])
        while queue:
            asn, phase = queue.popleft()
            steps: List[Tuple[Hashable, int]] = []
            if phase == 0:
                uplinks = list(self.asg.providers(asn))
                if use_backup:
                    uplinks += self.asg.backup_providers(asn)
                steps.extend((p, 0) for p in uplinks)
                for peer in self.asg.peers(asn):
                    pair = frozenset((asn, peer))
                    if peer_ok is None or pair in peer_ok:
                        steps.append((peer, 1))
            for customer in self.asg.customers(asn,
                                               include_backup=use_backup):
                steps.append((customer, 1))
            for nxt, nxt_phase in steps:
                if allowed is not None and nxt not in allowed:
                    continue
                state = (nxt, nxt_phase)
                if state in parents:
                    continue
                parents[state] = (asn, phase)
                if nxt == dst:
                    path = [nxt]
                    cur = (asn, phase)
                    while cur is not None:
                        path.append(cur[0])
                        cur = parents[cur]
                    return tuple(reversed(path))
                queue.append(state)
        return None

    def shortcut_allowed(self, arrived_from: Optional[Hashable],
                         at_as: Hashable, pointer_route: Sequence[Hashable]) -> bool:
        """BGP-like import/export filtering for mid-route shortcuts.

        An AS that received the packet from a customer may relay it onto
        any of its pointers; one that received it from a peer or provider
        may only relay toward customers (the first hop of the shortcut's
        source route must be a down step)."""
        if arrived_from is None:
            return True
        inbound = self.step_type(arrived_from, at_as)
        if inbound == "up":
            # Previous hop's provider is us → the packet came from a
            # customer → free to relay anywhere.
            return True
        if len(pointer_route) < 2:
            return True
        return self.step_type(pointer_route[0], pointer_route[1]) == "down"


_MISSING = object()
