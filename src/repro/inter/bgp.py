"""The BGP-policy baseline (Fig 8b's "BGP-policy" series).

Implements the standard Gao-Rexford model of today's interdomain routing
over the annotated AS graph:

* export rules — routes learned from customers are exported to everyone;
  routes learned from peers or providers are exported only to customers;
* decision process — prefer customer-learned routes, then peer-learned,
  then provider-learned; tie-break on AS-path length.

The paper measures interdomain stretch as "the ratio of the traversed
path to the path BGP would select", so :func:`policy_distance` is the
denominator of every ROFL stretch number, and
:func:`policy_stretch` (policy path over shortest unrestricted path)
reproduces the BGP-policy reference curve.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from repro.topology.asgraph import ASGraph, Relationship


class BgpBaseline:
    """Per-destination Gao-Rexford route computation with memoisation."""

    def __init__(self, asg: ASGraph, use_backup: bool = False):
        self.asg = asg
        self.use_backup = use_backup
        self._tables: Dict[Hashable, Dict[Hashable, Tuple[int, int]]] = {}
        self._topo_order: Optional[List[Hashable]] = None

    def __getstate__(self):
        """Serialize without the memoised route tables.

        The tables are pure derived state (``warm()`` rebuilds them
        deterministically from the AS graph), so :mod:`repro.snapshot`
        marks them rebuild-on-load; this also keeps the canonical state
        hash independent of oracle warm-up.
        """
        state = self.__dict__.copy()
        state["_tables"] = {}
        state["_topo_order"] = None
        return state

    # -- internals --------------------------------------------------------------

    def _providers(self, asn: Hashable) -> List[Hashable]:
        providers = list(self.asg.providers(asn))
        if self.use_backup:
            providers += self.asg.backup_providers(asn)
        return providers

    def _customers(self, asn: Hashable) -> List[Hashable]:
        if self.use_backup:
            return self.asg.customers(asn)
        return [c for c in self.asg.customers(asn)
                if self.asg.relationship(asn, c) is not Relationship.BACKUP]

    def _topological_order(self) -> List[Hashable]:
        """ASes ordered providers-first (the provider DAG is acyclic)."""
        if self._topo_order is not None:
            return self._topo_order
        dag = nx.DiGraph()
        dag.add_nodes_from(self.asg.ases())
        for asn in self.asg.ases():
            for provider in self._providers(asn):
                dag.add_edge(provider, asn)  # provider → customer
        self._topo_order = list(nx.topological_sort(dag))
        return self._topo_order

    def routes_to(self, dest: Hashable) -> Dict[Hashable, Tuple[int, int]]:
        """For every AS, its best route to ``dest`` as ``(pref, hops)``.

        ``pref`` is 0 for customer-learned, 1 for peer-learned, 2 for
        provider-learned (lower preferred); ``hops`` is the AS-path
        length of the selected route.
        """
        cached = self._tables.get(dest)
        if cached is not None:
            return cached

        inf = math.inf
        cust: Dict[Hashable, float] = {dest: 0}
        # Customer routes: BFS upward from dest over provider links (a
        # provider hears about its customer's prefix from the customer).
        frontier = [dest]
        while frontier:
            nxt = []
            for asn in frontier:
                for provider in self._providers(asn):
                    if provider not in cust:
                        cust[provider] = cust[asn] + 1
                        nxt.append(provider)
            frontier = nxt

        # Peer routes: one peer hop onto a customer route (peers only
        # export customer-learned routes).
        peer: Dict[Hashable, float] = {}
        for asn in self.asg.ases():
            best = inf
            for p in self.asg.peers(asn):
                if p in cust:
                    best = min(best, cust[p] + 1)
            if best < inf:
                peer[asn] = best

        # Provider routes: a provider exports its *selected* route to its
        # customers; process providers before customers.
        prov: Dict[Hashable, float] = {}
        best_len: Dict[Hashable, float] = {}
        for asn in self._topological_order():
            choices = [cust.get(asn, inf), peer.get(asn, inf), prov.get(asn, inf)]
            selected = self._select(choices)
            best_len[asn] = selected
            for customer in self._customers(asn):
                if selected < inf:
                    candidate = selected + 1
                    if candidate < prov.get(customer, inf):
                        prov[customer] = candidate

        table: Dict[Hashable, Tuple[int, int]] = {}
        for asn in self.asg.ases():
            options = [(0, cust.get(asn, inf)), (1, peer.get(asn, inf)),
                       (2, prov.get(asn, inf))]
            viable = [(pref, hops) for pref, hops in options if hops < inf]
            if viable:
                pref, hops = min(viable)          # preference first
                table[asn] = (pref, int(hops))
        self._tables[dest] = table
        return table

    @staticmethod
    def _select(choices: List[float]) -> float:
        """The decision process applied to (cust, peer, prov) lengths:
        the most-preferred *reachable* class wins regardless of length."""
        for length in choices:
            if length != math.inf:
                return length
        return math.inf

    # -- public API ---------------------------------------------------------------

    def policy_distance(self, src: Hashable, dest: Hashable) -> Optional[int]:
        """AS-path length of the route BGP would select, or ``None``."""
        if src == dest:
            return 0
        entry = self.routes_to(dest).get(src)
        return entry[1] if entry is not None else None

    def shortest_distance(self, src: Hashable, dest: Hashable) -> Optional[int]:
        """Plain (policy-oblivious) shortest AS-hop distance."""
        try:
            return nx.shortest_path_length(self.asg.graph, src, dest)
        except nx.NetworkXNoPath:
            return None

    def policy_stretch(self, src: Hashable, dest: Hashable) -> Optional[float]:
        """The Fig 8b "BGP-policy" series: policy path over shortest path."""
        policy = self.policy_distance(src, dest)
        shortest = self.shortest_distance(src, dest)
        if policy is None or shortest is None:
            return None
        if shortest == 0:
            return 1.0
        return policy / shortest

    def warm(self, dests=None) -> int:
        """Precompute routing tables for ``dests`` (default: every AS).

        The baseline is a measurement oracle — it supplies the stretch
        denominator for every delivered packet — so benchmarks warm it
        between their join and send phases to keep oracle table
        construction out of the measured ROFL send path.  Returns the
        number of tables now resident.
        """
        targets = list(dests) if dests is not None else list(self.asg.ases())
        for dest in targets:
            self.routes_to(dest)
        return len(targets)

    def invalidate(self) -> None:
        """Drop memoised tables (call after failing/restoring ASes)."""
        self._tables.clear()
        self._topo_order = None
