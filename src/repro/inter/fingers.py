"""Proximity-based finger tables (Section 4.1).

"ROFL exploits network proximity to reduce routing stretch by maintaining
proximity-based fingers in addition to successor pointers … We store
these fingers in a prefix-based finger table (along the lines of
Bamboo/Pastry/Tapestry) … Each entry contains an ID that is reachable via
the smallest number of up-links", and each entry lives at "the lower-most
level of the hierarchy (relative to X)" so following fingers preserves
isolation.

Selection here reproduces the *outcome* of the paper's three-phase finger
join (collect candidate entries along the route to your own ID, insert
yourself into others' tables, keep state fresh via piggybacked probes):
per (row, digit) slot we sample a handful of matching identifiers — as
the protocol would encounter on its route — and keep the one reachable
with the fewest up-links, tie-broken on AS-path length.  Each acquired
finger is charged one control message (its insertion notification), plus
the three-phase scaffolding proportional to the up-chain depth; with the
paper's numbers (340 fingers ≈ 445 messages) finger acquisition dominates
join cost exactly as observed in Section 6.3.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple, TYPE_CHECKING

from repro.idspace.identifier import FlatId
from repro.inter.pointers import ASPointer, InterVirtualNode
from repro.util import perf
from repro.util.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.inter.network import InterDomainNetwork

#: Digits per finger-table row (base 16, as in Pastry's default).
BASE_BITS = 4
#: How many matching candidates the selection samples per slot.
CANDIDATE_SAMPLE = 6


def slot_arc(vn_id: FlatId, row: int, digit: int,
             base_bits: int = BASE_BITS) -> Tuple[FlatId, FlatId]:
    """The identifier arc covered by finger slot ``(row, digit)``: IDs
    sharing ``row`` digits with ``vn_id`` and having ``digit`` next."""
    bits = vn_id.bits
    prefix_bits = row * base_bits
    if prefix_bits + base_bits > bits:
        raise ValueError("row out of range")
    remaining = bits - prefix_bits - base_bits
    prefix = vn_id.prefix_bits(prefix_bits) if prefix_bits else 0
    low = ((prefix << base_bits) | digit) << remaining
    high = low | ((1 << remaining) - 1)
    return FlatId(low, bits=bits), FlatId(high, bits=bits)


def up_links_between(net: "InterDomainNetwork", src: Hashable,
                     dst: Hashable) -> Tuple[int, int]:
    """(number of up-links, total hops) of the policy path src → dst.

    Thin wrapper over the memoised :meth:`PolicyView.path_profile`, which
    is what the selection loop below hits once per sampled candidate.
    """
    return net.policy.path_profile(src, dst)


def lowest_containing_level(net: "InterDomainNetwork", vn: InterVirtualNode,
                            target_as: Hashable) -> Optional[Hashable]:
    """The inner-most level of ``vn``'s chain whose subtree contains the
    target's home AS — where the finger must be formed to preserve
    isolation."""
    best = None
    best_size = None
    for level in vn.joined_levels:
        if not net.policy.level_contains(level, target_as):
            continue
        size = len(net.policy.subtree(level))
        if best_size is None or size < best_size:
            best, best_size = level, size
    return best


def acquire_fingers(net: "InterDomainNetwork", vn: InterVirtualNode,
                    n_fingers: int, base_bits: int = BASE_BITS) -> int:
    """Build ``vn``'s finger table; returns the message cost charged."""
    if n_fingers <= 0:
        return 0
    with perf.timed("inter.join.fingers"):
        fingers, charged = select_fingers(net, vn, n_fingers, base_bits)
        apply_fingers(net, vn, fingers, charged)
        return charged


def select_fingers(net: "InterDomainNetwork", vn: InterVirtualNode,
                   n_fingers: int, base_bits: int = BASE_BITS
                   ) -> Tuple[List[ASPointer], int]:
    """Choose ``vn``'s fingers without installing them or charging stats.

    Pure with respect to network state: reads the global ring, the
    id-owner oracle, and the memoised policy-path profile; draws from a
    per-call ``derive_rng`` stream (no registry stream is consumed).  The
    sharded runtime computes this on the owning shard only and ships the
    result to every replica; :func:`apply_fingers` installs it.  Returns
    ``(fingers, message_cost)`` — the cost is the three-phase scaffolding
    (~2 messages per up-chain hop) plus one insertion notification per
    acquired finger, exactly what the inline path charged before.
    """
    rng = derive_rng(net.seed, "fingers", vn.id.value)
    fingers: List[ASPointer] = []

    depth = len(net.policy.hierarchy.up_chain(vn.home_as))
    charged = 2 * max(1, depth)

    digits = 1 << base_bits
    row = 0
    while len(fingers) < n_fingers and (row + 1) * base_bits <= vn.id.bits:
        own_digit = vn.id.digit(row, base_bits)
        for digit in range(digits):
            if digit == own_digit:
                continue
            if len(fingers) >= n_fingers:
                break
            low, high = slot_arc(vn.id, row, digit, base_bits)
            candidates = net.global_ring.in_arc(low, high)
            if not candidates:
                continue
            if len(candidates) > CANDIDATE_SAMPLE:
                candidates = rng.sample(candidates, CANDIDATE_SAMPLE)
            chosen = _pick_nearest(net, vn, candidates)
            if chosen is None:
                continue
            level = lowest_containing_level(net, vn, chosen.home_as)
            route = net.policy.policy_path(vn.home_as, chosen.home_as,
                                           scope=level)
            if route is None:
                route = net.policy.policy_path(vn.home_as, chosen.home_as)
            if route is None:
                continue
            fingers.append(ASPointer(chosen.id, chosen.home_as, tuple(route),
                                     level=level, kind="finger"))
            charged += 1  # insertion notification
        row += 1
    return fingers, charged


def apply_fingers(net: "InterDomainNetwork", vn: InterVirtualNode,
                  fingers: List[ASPointer], charged: int,
                  category: str = "join") -> None:
    """Install a selected finger table and charge its message cost."""
    vn.fingers = list(fingers)
    net.ases[vn.home_as].mark_dirty(vn)
    net.stats.charge_hops(charged, category)


def _pick_nearest(net: "InterDomainNetwork", vn: InterVirtualNode,
                  candidate_ids) -> Optional[InterVirtualNode]:
    best_vn = None
    best_key = None
    for cand_id in candidate_ids:
        cand = net.id_owner_index.get(cand_id)
        if cand is None or cand.id == vn.id:
            continue
        key = up_links_between(net, vn.home_as, cand.home_as)
        if best_key is None or key < best_key:
            best_vn, best_key = cand, key
    return best_vn


def refresh_fingers_after_failure(net: "InterDomainNetwork",
                                  vn: InterVirtualNode) -> int:
    """Drop fingers to dead IDs and re-acquire replacements (charged)."""
    live = [f for f in vn.fingers if f.dest_id in net.id_owner_index
            and net.as_is_up(f.dest_as)]
    lost = len(vn.fingers) - len(live)
    vn.fingers = live
    net.ases[vn.home_as].mark_dirty(vn)
    if lost:
        net.stats.charge_hops(lost, "repair")
    return lost
