"""Interdomain routing state: AS-level pointers and virtual nodes.

A pointer at hierarchy level ``A`` (an AS, or a virtual AS standing for a
peering link) targets the owner ID's successor within the merged ring of
``subtree(A)``, and carries the AS-level source route the join discovered
— "the hosting router then associates the successor and predecessor
pointers for ida with an AS-level source-route to the routers hosting the
predecessor and successor identifiers" (Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.idspace.identifier import FlatId


@dataclass
class ASPointer:
    """A directed identifier-space edge realised as an AS-level source route."""

    dest_id: FlatId
    dest_as: Hashable
    #: Hop-by-hop AS route from the owner's home AS; ``route[0]`` is the
    #: owner AS, ``route[-1] == dest_as``.  A same-AS pointer has length 1.
    as_route: Tuple[Hashable, ...]
    #: The hierarchy level (subtree root) this pointer was formed at;
    #: ``None`` for the internal (same-AS) successor.
    level: Optional[Hashable] = None
    kind: str = "successor"  # "successor" | "predecessor" | "finger" | "cache"

    def __post_init__(self) -> None:
        if not self.as_route:
            raise ValueError("pointer needs a non-empty AS route")
        if self.as_route[-1] != self.dest_as:
            raise ValueError("AS route must end at the destination AS")

    @property
    def owner_as(self) -> Hashable:
        return self.as_route[0]

    @property
    def n_hops(self) -> int:
        return len(self.as_route) - 1

    @property
    def trace_tag(self) -> str:
        """The rule vocabulary `repro.obs` tags decisions with: how this
        pointer makes greedy progress (cache shortcut, proximity finger,
        internal successor, or a successor formed at an outer hierarchy
        level — the paper's "external pointer")."""
        if self.kind in ("cache", "finger"):
            return self.kind
        if self.level is not None:
            return "external-" + self.kind
        return self.kind


@dataclass
class InterVirtualNode:
    """State one hosted identifier keeps in the interdomain design."""

    id: FlatId
    home_as: Hashable
    host_name: Optional[str] = None
    strategy: str = "multihomed"
    #: Successor pointer per joined hierarchy level (level → pointer);
    #: the internal successor is stored under level ``None``.
    succ_by_level: Dict[Optional[Hashable], ASPointer] = field(default_factory=dict)
    pred_by_level: Dict[Optional[Hashable], ASPointer] = field(default_factory=dict)
    #: Proximity finger table, flattened (Section 4.1).
    fingers: List[ASPointer] = field(default_factory=list)
    #: Levels this node joined at, innermost first.
    joined_levels: List[Hashable] = field(default_factory=list)

    def all_successor_pointers(self) -> List[ASPointer]:
        return list(self.succ_by_level.values())

    def candidate_pointers(self) -> List[ASPointer]:
        """Every onward pointer usable for greedy progress."""
        return list(self.succ_by_level.values()) + self.fingers

    def set_successor(self, level: Optional[Hashable], ptr: ASPointer) -> None:
        self.succ_by_level[level] = ptr

    def drop_dead_target(self, dead_id: FlatId) -> int:
        """Remove every pointer naming ``dead_id``; returns count dropped."""
        dropped = 0
        for table in (self.succ_by_level, self.pred_by_level):
            doomed = [lvl for lvl, p in table.items() if p.dest_id == dead_id]
            for lvl in doomed:
                del table[lvl]
                dropped += 1
        before = len(self.fingers)
        self.fingers = [p for p in self.fingers if p.dest_id != dead_id]
        dropped += before - len(self.fingers)
        return dropped

    def state_entries(self) -> int:
        """Routing-state entries this ID consumes at its hosting AS."""
        return (1 + len(self.succ_by_level) + len(self.pred_by_level)
                + len(self.fingers))

    def __repr__(self) -> str:
        return "InterVirtualNode({}@{}, levels={}, fingers={})".format(
            self.id, self.home_as, len(self.succ_by_level), len(self.fingers))
