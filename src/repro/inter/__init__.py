"""Interdomain ROFL (Section 4 of the paper) plus the BGP-policy baseline.

Each AS runs its own intradomain ring; rings merge bottom-up along the AS
hierarchy Canon-style, with extensions for today's policies:
customer-provider, peering (virtual ASes or bloom filters), multihoming
and backup links.  Proximity finger tables and per-AS pointer caches cut
stretch; the isolation property confines traffic to the subtree of the
earliest common ancestor.

Entry point: :class:`repro.inter.network.InterDomainNetwork`.
"""

from repro.inter.network import InterDomainNetwork
from repro.inter.policy import PolicyView, JoinStrategy
from repro.inter.pointers import ASPointer, InterVirtualNode

__all__ = ["InterDomainNetwork", "PolicyView", "JoinStrategy",
           "ASPointer", "InterVirtualNode"]
