"""Interdomain greedy routing (Sections 2.3 and 4.1).

"Our mechanism for routing relies on greedy routing, augmented with
in-packet AS-level source-routes. … greedy routing is used to determine
the closest candidate pointer, whose source-route is tacked on to the
packet."

The engine mirrors the intradomain one at AS granularity:

* at a decision point the current AS picks, among every pointer its
  hosted IDs hold (successors at all levels, fingers) and its pointer
  cache, the ID numerically closest to the destination without passing
  it;
* the packet then follows that pointer's AS-level source route hop by
  hop; transit ASes may shortcut onto strictly closer pointers of their
  own, subject to the BGP-like import rule (an AS that received the
  packet from a peer or provider only relays toward customers) and the
  bloom-filter isolation guard for cached entries (Section 4.1);
* ``lookup`` mode routes toward an ID's predecessor *within a hierarchy
  level's subtree* — the scoped search Canon joins are built on
  (Algorithm 3's pruning of route entries to the current hierarchy).

Isolation needs no explicit enforcement for successor pointers: the
pointer formed at the lowest level containing both endpoints always
offers the largest admissible jump, so greedy routing never prefers a
higher-level (out-of-subtree) successor — the property the checker in
:mod:`repro.inter.network` verifies empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, TYPE_CHECKING

from repro.idspace.identifier import FlatId
from repro.inter.pointers import ASPointer, InterVirtualNode
from repro.obs import trace
from repro.util import perf

if TYPE_CHECKING:  # pragma: no cover
    from repro.inter.network import InterDomainNetwork

#: Safety valve against protocol bugs (see the intradomain counterpart).
MAX_POINTER_HOPS = 4096


@dataclass
class InterOutcome:
    """Result of routing one interdomain packet or control lookup."""

    delivered: bool
    reason: str
    as_path: List[Hashable] = field(default_factory=list)
    pointer_hops: int = 0
    used_cache: bool = False
    crossed_peer: bool = False
    final_vn: Optional[InterVirtualNode] = None

    @property
    def hops(self) -> int:
        return max(0, len(self.as_path) - 1)


def route(
    net: "InterDomainNetwork",
    start_as: Hashable,
    dest_id: FlatId,
    mode: str = "data",
    scope: Optional[Hashable] = None,
    category: str = "data",
    use_cache: bool = True,
    max_pointer_hops: int = MAX_POINTER_HOPS,
) -> InterOutcome:
    """Greedy-route from ``start_as`` toward ``dest_id``.

    ``scope`` restricts the search to one hierarchy level's ring (used by
    joins); data packets run unscoped.
    """
    if mode not in ("data", "lookup"):
        raise ValueError("unknown mode {!r}".format(mode))
    perf.counter("inter.fwd.packets")
    with perf.timed("inter.route." + mode):
        return _route(net, start_as, dest_id, mode, scope, category,
                      use_cache, max_pointer_hops)


def _route(net, start_as, dest_id, mode, scope, category, use_cache,
           max_pointer_hops):
    tr = trace.packet_span("inter.packet", start=str(start_as),
                           dest=dest_id.to_hex(), mode=mode,
                           scope=str(scope) if scope is not None
                           else None) if trace.ENABLED else None
    space = net.space
    greedy_dest = dest_id if mode == "data" else space.make(dest_id.value - 1)

    current = start_as
    outcome = InterOutcome(delivered=False, reason="in-flight",
                           as_path=[start_as])
    committed: Optional[ASPointer] = None
    committed_step = 0
    committed_dist = space.size
    arrived_from: Optional[Hashable] = None

    while outcome.pointer_hops <= max_pointer_hops:
        node = net.ases[current]

        if mode == "data" and node.hosts_id(dest_id):
            outcome.delivered = True
            outcome.reason = "delivered"
            outcome.final_vn = node.hosted[dest_id]
            net.stats.charge_path(outcome.as_path, category)
            if tr is not None:
                tr.end(delivered=True, reason="delivered",
                       router=str(current))
                trace.close_span(tr)
            return outcome

        if committed is not None and current == committed.dest_as \
                and not node.hosts_id(committed.dest_id):
            # NACK: stale pointer to an ID no longer hosted here; if the
            # ID lives elsewhere the owner re-routes, otherwise it tears
            # the pointer down.  Routing restarts from this AS.
            owner = net.ases.get(committed.as_route[0])
            target = net.id_owner_index.get(committed.dest_id)
            repaired = None
            if target is not None and net.as_is_up(target.home_as) \
                    and net.ases[target.home_as].hosts_id(committed.dest_id):
                new_route = net.policy.policy_path(committed.as_route[0],
                                                   target.home_as,
                                                   scope=committed.level)
                if new_route is None:
                    new_route = net.policy.policy_path(
                        committed.as_route[0], target.home_as)
                if new_route is not None:
                    repaired = ASPointer(committed.dest_id, target.home_as,
                                         tuple(new_route),
                                         level=committed.level,
                                         kind=committed.kind)
            if repaired is not None and owner is not None:
                owner.reroute_pointer(repaired)
            elif owner is not None:
                owner.drop_pointer(committed)
                node.cache.invalidate_id(committed.dest_id)
            if tr is not None:
                tr.event("nack", router=str(current),
                         action="reroute" if repaired is not None
                         else "teardown",
                         target=committed.dest_id.to_hex())
            committed = None
            committed_dist = space.size
            continue

        at_decision = committed is None or current == committed.dest_as
        if at_decision:
            match = node.best_match(net, greedy_dest, scope=scope,
                                    arrived_from=None, use_cache=use_cache)
            if match is None:
                outcome.reason = "no routing state"
                break
            if match.distance >= committed_dist and match.is_local:
                if mode == "lookup":
                    outcome.delivered = True
                    outcome.reason = "predecessor found"
                    outcome.final_vn = match.resident_vn
                    net.stats.charge_path(outcome.as_path, category)
                    if tr is not None:
                        tr.end(delivered=True, reason="predecessor found",
                               router=str(current))
                        trace.close_span(tr)
                    return outcome
                outcome.reason = "destination ID not found"
                break
            if match.distance >= committed_dist:
                outcome.reason = "no progress available"
                break
            if match.is_local:
                if tr is not None:
                    tr.decision(router=str(current), rule="local-adopt",
                                target=match.dest_id.to_hex(),
                                distance=match.distance)
                committed = None
                committed_dist = match.distance
                continue
            pointer = net.validate_pointer(node, match.pointer)
            if pointer is None:
                continue
            committed = pointer
            committed_step = 0
            committed_dist = match.distance
            outcome.pointer_hops += 1
            outcome.used_cache = outcome.used_cache or pointer.kind == "cache"
            if tr is not None:
                tr.decision(router=str(current), rule=pointer.trace_tag,
                            target=pointer.dest_id.to_hex(),
                            distance=match.distance)
            if pointer.n_hops == 0:
                # Zero-hop pointer: the target is hosted right here (but
                # was not an admissible local position, e.g. a non-member
                # in a scoped search) — adopt its position and re-decide.
                committed = None
                continue
        else:
            # Transit shortcut, gated by the BGP-like import rule.
            shortcut = node.best_match(net, greedy_dest, scope=scope,
                                       arrived_from=arrived_from,
                                       use_cache=use_cache)
            if shortcut is not None and shortcut.distance < committed_dist:
                if tr is not None:
                    tr.event("shortcut", router=str(current),
                             distance=shortcut.distance)
                committed = None
                continue

        next_as = committed.as_route[committed_step + 1]
        if not net.as_is_up(next_as):
            pointer = net.validate_pointer(node, committed, from_as=current)
            if tr is not None:
                tr.event("repair", router=str(current),
                         target=committed.dest_id.to_hex(),
                         repaired=pointer is not None)
            if pointer is None:
                committed = None
                committed_dist = space.size
                continue
            committed = pointer
            committed_step = 0
            next_as = committed.as_route[1]
        perf.counter("inter.fwd.hops")
        if net.policy.step_type(current, next_as) == "peer":
            outcome.crossed_peer = True
        outcome.as_path.append(next_as)
        if tr is not None:
            tr.hop(frm=str(current), to=str(next_as))
        arrived_from = current
        current = next_as
        committed_step += 1

    else:
        outcome.reason = "pointer hop limit exceeded (routing loop?)"

    outcome.delivered = False
    net.stats.charge_path(outcome.as_path, category)
    if tr is not None:
        tr.end(delivered=False, reason=outcome.reason, router=str(current))
        trace.close_span(tr)
    return outcome


def effective_successor(net: "InterDomainNetwork", vn: InterVirtualNode,
                        level: Hashable) -> Optional[ASPointer]:
    """The ID ``vn`` points to next within ``level``'s merged ring: the
    closest target among its successor pointers at levels contained in
    ``level`` (condition (b) of Section 4.1 means the pointer may be
    stored at an inner level)."""
    best: Optional[ASPointer] = None
    best_dist = None
    mask = net.space.mask
    own_iv = vn.id.value
    for lvl, ptr in vn.succ_by_level.items():
        if lvl is not None and not net.policy.level_contained_in(lvl, level):
            continue
        dist = (ptr.dest_id.value - own_iv) & mask
        if best_dist is None or dist < best_dist:
            best, best_dist = ptr, dist
    return best


def _scoped_descent(net: "InterDomainNetwork", root: Hashable,
                    dest_id: FlatId, category: str) -> InterOutcome:
    """Greedy descent within ``root``'s subtree toward ``dest_id``.

    A transit AS usually hosts no identifiers itself, so the descent
    enters the subtree ring through a registered bootstrap member
    ("having host identifiers register with their providers … when they
    join"), exactly like a scoped join lookup does.
    """
    direct = route(net, root, dest_id, mode="data", scope=root,
                   category=category, use_cache=False)
    if direct.delivered or direct.reason != "no routing state":
        return direct
    ring = net.ring_at(root)
    if len(ring) == 0:
        return direct
    boot = ring[next(iter(ring))]
    climb = net.policy.policy_path(root, boot.home_as, scope=root)
    if climb is None:
        return direct
    net.stats.charge_hops(len(climb) - 1, category)
    entered = route(net, boot.home_as, dest_id, mode="data", scope=root,
                    category=category, use_cache=False)
    entered.as_path = list(climb) + entered.as_path[1:]
    return entered


def route_bloom_peering(
    net: "InterDomainNetwork",
    start_as: Hashable,
    dest_id: FlatId,
    category: str = "data",
) -> InterOutcome:
    """Data routing under the bloom-filter peering option (Section 4.2).

    The packet climbs the source's up-hierarchy; at each AS it consults
    its own subtree bloom filter (descend greedily if the destination is
    below) and its peers' filters (cross the peering link if a peer
    claims the destination; on a false positive the packet "is returned
    over the peering link, at which point [it] continues on its original
    path").  After crossing a peer link the packet may not go up again.
    """
    tr = trace.packet_span("inter.bloom-packet", start=str(start_as),
                           dest=dest_id.to_hex(),
                           mode="data") if trace.ENABLED else None
    outcome = InterOutcome(delivered=False, reason="in-flight",
                           as_path=[start_as])
    current = start_as
    visited_up: List[Hashable] = []

    for _ in range(4 * net.asg.n_ases + 8):
        node = net.ases[current]
        if node.hosts_id(dest_id):
            outcome.delivered = True
            outcome.reason = "delivered"
            outcome.final_vn = node.hosted[dest_id]
            net.stats.charge_path(outcome.as_path, category)
            if tr is not None:
                tr.end(delivered=True, reason="delivered",
                       router=str(current))
                trace.close_span(tr)
            return outcome

        if dest_id in node.subtree_bloom:
            # Claimed below us: greedy descent scoped to our subtree.
            descent = _scoped_descent(net, current, dest_id, category)
            if tr is not None:
                tr.event("bloom.descend", router=str(current),
                         hit=descent.delivered)
            if descent.delivered:
                outcome.as_path.extend(descent.as_path[1:])
                outcome.pointer_hops += descent.pointer_hops
                outcome.delivered = True
                outcome.reason = "delivered"
                outcome.final_vn = descent.final_vn
                if tr is not None:
                    tr.end(delivered=True, reason="delivered",
                           router=str(descent.as_path[-1]))
                    trace.close_span(tr)
                return outcome
            # False positive inside our own filter: fall through and keep
            # climbing (the descent cost is already charged).
            outcome.as_path.extend(descent.as_path[1:])
            outcome.as_path.extend(reversed(descent.as_path[:-1]))
            net.stats.charge_hops(descent.hops, category)

        crossed = False
        for peer in sorted(net.asg.peers(current), key=str):
            if not net.as_is_up(peer):
                continue
            if dest_id in net.ases[peer].subtree_bloom:
                outcome.as_path.append(peer)
                outcome.crossed_peer = True
                net.stats.charge_hops(1, category)
                descent = _scoped_descent(net, peer, dest_id, category)
                outcome.as_path.extend(descent.as_path[1:])
                outcome.pointer_hops += descent.pointer_hops
                if tr is not None:
                    tr.event("bloom.peer-cross", router=str(current),
                             peer=str(peer), hit=descent.delivered)
                if descent.delivered:
                    outcome.delivered = True
                    outcome.reason = "delivered"
                    outcome.final_vn = descent.final_vn
                    if tr is not None:
                        tr.end(delivered=True, reason="delivered",
                               router=str(descent.as_path[-1]))
                        trace.close_span(tr)
                    return outcome
                # False positive: backtrack over the peering link and
                # continue on the original path.
                outcome.as_path.extend(reversed(descent.as_path[:-1]))
                outcome.as_path.append(current)
                net.stats.charge_hops(descent.hops + 1, category)
                crossed = True
        if crossed and not net.asg.providers(current):
            break

        providers = [p for p in net.asg.providers(current) if net.as_is_up(p)]
        if not providers:
            outcome.reason = "reached the core without locating destination"
            break
        nxt = sorted(providers, key=str)[0]
        visited_up.append(current)
        outcome.as_path.append(nxt)
        if tr is not None:
            tr.event("bloom.climb", frm=str(current), to=str(nxt))
        net.stats.charge_hops(1, category)
        current = nxt
    else:
        outcome.reason = "hop limit exceeded"

    outcome.delivered = False
    if tr is not None:
        tr.end(delivered=False, reason=outcome.reason, router=str(current))
        trace.close_span(tr)
    return outcome
