"""CMU-ETHERNET baseline (Myers, Ng, Zhang — "Rethinking the service
model: scaling Ethernet to a million nodes", HotNets 2004).

The design floods host attachment information so that *every* router
holds a route for *every* host (no location semantics in addresses,
like ROFL — but flat state everywhere instead of a ring):

* a host join floods the network — one message over each live link in
  each direction, exactly like a link-state advertisement;
* every router stores one forwarding entry per host in the network.

The paper uses it "only as a baseline comparison point" and reports
CMU-ETHERNET needing 37–181× more join messages and 34–1200× more
memory than ROFL on the same four ISPs; the Fig 5a/6c benches reproduce
those ratios with this implementation.

Implements :class:`repro.baselines.FlatLabelBaseline`: delivery is
always over the shortest path (every router knows every host), so the
provable stretch bound is exactly 1.0.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.idspace.identifier import FlatId, RingSpace
from repro.linkstate.lsdb import LinkStateMap
from repro.linkstate.protocol import flood_message_cost
from repro.linkstate.spf import PathCache
from repro.sim.stats import PathResult, StatsCollector
from repro.topology.graph import RouterTopology
from repro.topology.hosts import HostPlan, HostTable, PlannedHost
from repro.util.rng import RngRegistry


class CmuEthernetNetwork:
    """Flood-based flat routing over one ISP topology."""

    #: Every router holds every host's route, so data paths are always
    #: shortest — the guarantee is stretch 1.
    stretch_bound = 1.0

    def __init__(self, topology: RouterTopology, seed: int = 0):
        self.topology = topology
        self.seed = seed
        self.lsmap = LinkStateMap(topology)
        self.paths = PathCache(self.lsmap)
        self.space = RingSpace()
        self.stats = StatsCollector()
        self.rngs = RngRegistry(seed)
        self._rng = self.rngs.derive("cmu", "traffic")
        #: host ID → attachment router, replicated at every router (we
        #: store it once and account for the replication in memory math).
        self.host_location: Dict[FlatId, str] = {}
        self.hosts: HostTable = HostTable()          # name → FlatId
        self._plan = HostPlan(
            attachment_points=topology.edge_routers() or topology.routers,
            seed=seed, registry=self.rngs)

    # -- joining ---------------------------------------------------------------

    def join_host(self, host: PlannedHost) -> int:
        """Join one host: flood its attachment over every live link.

        Returns the network-level messages charged to this join's
        operation scope (the :class:`repro.baselines.FlatLabelBaseline`
        contract) — here exactly the flood's per-link message count;
        "cost" and "messages" are the same unit by definition.
        """
        with self.stats.operation("join", host=host.name) as op:
            self.stats.charge_hops(
                flood_message_cost(self.lsmap, host.attach_at), "join")
        self.host_location[host.flat_id] = host.attach_at
        self.hosts[host.name] = host.flat_id
        return op["messages"]

    def join_random_hosts(self, n: int) -> List[int]:
        return [self.join_host(self._plan.next_host()) for _ in range(n)]

    # -- data plane ----------------------------------------------------------------

    def send(self, src_host: str, dst_host: str) -> PathResult:
        """Shortest-path delivery (every router knows every host)."""
        src_router = self.host_location[self.hosts[src_host]]
        dst_router = self.host_location[self.hosts[dst_host]]
        path = self.paths.hop_path(src_router, dst_router)
        if path is None:
            return PathResult(delivered=False)
        self.stats.charge_path(path, "data")
        hops = len(path) - 1
        return PathResult(delivered=True, path=path, hops=hops,
                          optimal_hops=hops)

    def random_host_pair(self) -> Tuple[str, str]:
        if len(self.hosts.names) < 2:
            raise ValueError("need at least two hosts")
        pair = self._rng.sample(self.hosts.names, 2)
        return pair[0], pair[1]

    # -- accounting -------------------------------------------------------------------

    def memory_entries_per_router(self) -> Dict[str, int]:
        """Every router stores every host (plus its link-state DB, which
        both designs need and is therefore not counted)."""
        n = len(self.host_location)
        return {router: n for router in self.topology.routers}

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    def __repr__(self) -> str:
        return "CmuEthernetNetwork({!r}, hosts={})".format(
            self.topology.name, len(self.hosts))
