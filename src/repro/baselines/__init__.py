"""Baselines the paper compares against, behind one shared contract.

* :mod:`repro.baselines.cmu_ethernet` — the flood-based flat routing
  design of Myers, Ng and Zhang (HotNets'04), the paper's comparison
  point for join overhead (Fig 5a, 37–181×) and memory (Fig 6c,
  34–1200×).
* :mod:`repro.baselines.ospf_routing` — plain shortest-path host routing
  with location-dependent addresses, the load-balance (Fig 6b) and
  stretch baseline.
* :class:`repro.compact.DiscoNetwork` — Disco-style compact routing on
  flat names with a provable stretch bound (the post-paper baseline the
  compact-routing literature calls for; imported lazily here to keep
  ``repro.baselines`` free of the ``repro.compact`` dependency at
  import time).

All three satisfy :class:`FlatLabelBaseline`, so the harness, the
parametrized baseline tests and the head-to-head experiment drive them
through one interface.
"""

from typing import Dict, List, Protocol, Tuple, runtime_checkable

from repro.baselines.cmu_ethernet import CmuEthernetNetwork
from repro.baselines.ospf_routing import OspfHostRouting
from repro.sim.stats import PathResult, StatsCollector
from repro.topology.hosts import PlannedHost


@runtime_checkable
class FlatLabelBaseline(Protocol):
    """What every flat-label baseline must provide.

    **Message accounting contract**: :meth:`join_host` returns the
    number of *network-level messages* attributed to the join operation
    — the value of the closed ``stats.operation("join", ...)`` record's
    ``"messages"`` field, where one message traversing one link costs
    one unit (:meth:`repro.sim.stats.StatsCollector.charge_path` /
    ``charge_hops`` semantics).  "Cost" and "messages" are the same
    number everywhere; there is no separate cost unit.  A baseline
    whose joins are free by construction (OSPF: the address *is* the
    location) returns 0 rather than omitting the method.

    ``stretch_bound`` is the protocol's provable worst-case data-path
    stretch (``float("inf")`` if it has no guarantee); the obs layer
    asserts observed stretch against it.
    """

    stats: StatsCollector
    stretch_bound: float

    def join_host(self, host: PlannedHost) -> int:
        """Join one host; returns the network-level messages charged to
        the join operation."""
        ...

    def join_random_hosts(self, n: int) -> List[int]:
        """Join ``n`` hosts from the deterministic host plan; returns
        the per-join message counts."""
        ...

    def send(self, src_host: str, dst_host: str) -> PathResult:
        """Route one data packet between two joined hosts (by name)."""
        ...

    def random_host_pair(self) -> Tuple[str, str]:
        """A uniform random ordered pair of distinct joined hosts,
        drawn from the baseline's own seeded stream."""
        ...

    def memory_entries_per_router(self) -> Dict[str, int]:
        """Host-routing state per router, in table entries (shared
        infrastructure like the link-state DB is not counted)."""
        ...

    @property
    def n_hosts(self) -> int:
        ...


__all__ = ["CmuEthernetNetwork", "FlatLabelBaseline", "OspfHostRouting"]
