"""Baselines the paper compares against.

* :mod:`repro.baselines.cmu_ethernet` — the flood-based flat routing
  design of Myers, Ng and Zhang (HotNets'04), the paper's comparison
  point for join overhead (Fig 5a, 37–181×) and memory (Fig 6c,
  34–1200×).
* :mod:`repro.baselines.ospf_routing` — plain shortest-path host routing,
  the load-balance (Fig 6b) and stretch baseline.
"""

from repro.baselines.cmu_ethernet import CmuEthernetNetwork
from repro.baselines.ospf_routing import OspfHostRouting

__all__ = ["CmuEthernetNetwork", "OspfHostRouting"]
