"""Plain OSPF shortest-path host routing — the Fig 6b baseline.

"For a particular x value, we plot the load at the i-th most congested
router in an OSPF network, and the load under ROFL for that same
router."  This baseline routes every packet over the hop-count shortest
path between the endpoints' attachment routers and tallies per-router
traversal counts with the same :class:`StatsCollector` plumbing ROFL
uses, so the two load series are directly comparable.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.linkstate.lsdb import LinkStateMap
from repro.linkstate.spf import PathCache
from repro.sim.stats import PathResult, StatsCollector
from repro.topology.graph import RouterTopology


class OspfHostRouting:
    """Shortest-path routing between attachment routers."""

    def __init__(self, topology: RouterTopology,
                 lsmap: Optional[LinkStateMap] = None):
        self.topology = topology
        self.lsmap = lsmap or LinkStateMap(topology)
        self.paths = PathCache(self.lsmap)
        self.stats = StatsCollector()

    def send(self, src_router: str, dst_router: str) -> PathResult:
        path = self.paths.hop_path(src_router, dst_router)
        if path is None:
            return PathResult(delivered=False)
        self.stats.charge_path(path, "data")
        hops = len(path) - 1
        return PathResult(delivered=True, path=path, hops=hops,
                          optimal_hops=hops)

    def load_series(self) -> Dict[Hashable, int]:
        return self.stats.load_series()

    def replay_pairs(self, pairs: Sequence[Tuple[str, str]]) -> int:
        """Route a batch of (src_router, dst_router) pairs; returns how
        many were delivered."""
        delivered = 0
        for src, dst in pairs:
            delivered += self.send(src, dst).delivered
        return delivered
