"""Plain OSPF shortest-path host routing — the Fig 6b baseline.

"For a particular x value, we plot the load at the i-th most congested
router in an OSPF network, and the load under ROFL for that same
router."  This baseline routes every packet over the hop-count shortest
path between the endpoints' attachment routers and tallies per-router
traversal counts with the same :class:`StatsCollector` plumbing ROFL
uses, so the two load series are directly comparable.

Implements :class:`repro.baselines.FlatLabelBaseline` as the
*location-dependent* contrast: an OSPF "address" encodes the attachment
router, so a host join installs no per-host routing state anywhere and
costs **zero** network-level messages (``join_host`` returns 0 by the
shared accounting contract) — the exact property flat labels give up,
which is why every flat design pays join/lookup overhead to win
location independence.  Delivery is always shortest-path, so the
provable stretch bound is 1.0.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.idspace.identifier import FlatId
from repro.linkstate.lsdb import LinkStateMap
from repro.linkstate.spf import PathCache
from repro.sim.stats import PathResult, StatsCollector
from repro.topology.graph import RouterTopology
from repro.topology.hosts import HostPlan, HostTable, PlannedHost
from repro.util.rng import RngRegistry


class OspfHostRouting:
    """Shortest-path routing between attachment routers."""

    #: Packets follow the SPF path between attachment routers — the
    #: addressing scheme guarantees stretch 1.
    stretch_bound = 1.0

    def __init__(self, topology: RouterTopology,
                 lsmap: Optional[LinkStateMap] = None, seed: int = 0):
        self.topology = topology
        self.seed = seed
        self.lsmap = lsmap or LinkStateMap(topology)
        self.paths = PathCache(self.lsmap)
        self.stats = StatsCollector()
        self.rngs = RngRegistry(seed)
        self._rng = self.rngs.derive("ospf", "traffic")
        self.host_location: Dict[FlatId, str] = {}
        self.hosts: HostTable = HostTable()          # name → FlatId
        self._plan = HostPlan(
            attachment_points=topology.edge_routers() or topology.routers,
            seed=seed, registry=self.rngs)

    # -- joining ---------------------------------------------------------------

    def join_host(self, host: PlannedHost) -> int:
        """Join one host for free: its address *is* its location, so no
        router learns anything.  Returns 0 messages — the degenerate
        case of the shared :class:`~repro.baselines.FlatLabelBaseline`
        accounting contract, recorded as a closed operation so join-cost
        CDFs can still include it."""
        with self.stats.operation("join", host=host.name) as op:
            pass
        self.host_location[host.flat_id] = host.attach_at
        self.hosts[host.name] = host.flat_id
        return op["messages"]

    def join_random_hosts(self, n: int) -> List[int]:
        return [self.join_host(self._plan.next_host()) for _ in range(n)]

    # -- data plane ----------------------------------------------------------------

    def send(self, src_host: str, dst_host: str) -> PathResult:
        """Route between two joined hosts (by name) over the SPF path."""
        return self.send_routers(
            self.host_location[self.hosts[src_host]],
            self.host_location[self.hosts[dst_host]])

    def send_routers(self, src_router: str, dst_router: str) -> PathResult:
        """Route directly between two routers (the Fig 6b load series
        drives this without any host population)."""
        path = self.paths.hop_path(src_router, dst_router)
        if path is None:
            return PathResult(delivered=False)
        self.stats.charge_path(path, "data")
        hops = len(path) - 1
        return PathResult(delivered=True, path=path, hops=hops,
                          optimal_hops=hops)

    def random_host_pair(self) -> Tuple[str, str]:
        if len(self.hosts.names) < 2:
            raise ValueError("need at least two hosts")
        pair = self._rng.sample(self.hosts.names, 2)
        return pair[0], pair[1]

    # -- accounting -------------------------------------------------------------------

    def memory_entries_per_router(self) -> Dict[str, int]:
        """Zero extra entries anywhere: the link-state DB both designs
        need is (as in the other baselines) not counted, and addresses
        carry the location."""
        return {router: 0 for router in self.topology.routers}

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    def load_series(self) -> Dict[Hashable, int]:
        return self.stats.load_series()

    def replay_pairs(self, pairs: Sequence[Tuple[str, str]]) -> int:
        """Route a batch of (src_router, dst_router) pairs; returns how
        many were delivered."""
        delivered = 0
        for src, dst in pairs:
            delivered += self.send_routers(src, dst).delivered
        return delivered

    def __repr__(self) -> str:
        return "OspfHostRouting({!r}, hosts={})".format(
            self.topology.name, len(self.hosts))
