"""Experiment harness: one driver per table/figure of the paper.

Each ``figXX_*`` function in :mod:`repro.harness.experiments` builds the
workload the paper describes, runs it at a configurable scale, and
returns a plain dict of series; :mod:`repro.harness.report` renders those
dicts as the rows/series the paper plots.  The ``benchmarks/`` tree wraps
every driver in a pytest-benchmark target, and ``EXPERIMENTS.md`` records
paper-vs-measured values.
"""

from repro.harness import experiments, report

__all__ = ["experiments", "report"]
