"""Drivers for every figure in the paper's evaluation (Section 6).

Scaling: the paper simulates up to millions of (intradomain) and tens of
thousands of (interdomain) hosts on their cluster; these drivers default
to laptop-scale parameters and expose knobs to scale up.  Where the paper
extrapolates to a 600 M-host Internet, the same log-linear extrapolation
is computed and reported (see DESIGN.md §3.5).
"""

from __future__ import annotations

import functools
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.cmu_ethernet import CmuEthernetNetwork
from repro.baselines.ospf_routing import OspfHostRouting
from repro.inter.network import InterDomainNetwork
from repro.inter.policy import JoinStrategy
from repro.intra.network import IntraDomainNetwork
from repro.sim.stats import cdf_points, percentile
from repro.topology.asgraph import synthetic_as_graph
from repro.topology.hosts import PAPER_INTERNET_HOSTS
from repro.topology.isp import ROCKETFUEL_PROFILES, TCAM_ENTRIES, synthetic_isp
from repro.util import perf
from repro.util.rng import derive_rng


def _with_perf(fn):
    """Instrument an experiment driver with the global perf registry.

    The registry is reset on entry, the whole driver runs under an
    ``experiment.<name>`` timer, and the counter/timer snapshot is
    attached to the result dict under the ``"perf"`` key — so every
    figure's output carries the hot-path counters (forwarding hops,
    index rebuilds, SPF evictions) that produced it.  Report formatters
    skip the key; ``benchmarks/perf_trajectory.py`` persists it.
    """
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        perf.reset()
        with perf.timed("experiment." + fn.__name__):
            result = fn(*args, **kwargs)
        if isinstance(result, dict):
            result["perf"] = perf.snapshot()
        return result
    return wrapper

def _mean(samples: Sequence[float]) -> Optional[float]:
    """Mean of a sample list, or ``None`` for an empty one.

    Stretch/cost series can legitimately come back empty (every send
    undeliverable under faults, zero eligible pairs at tiny scale);
    ``None`` is the explicit empty-series marker the formatters render
    as ``n/a`` instead of the old ``sum()/len()`` ZeroDivisionError.
    """
    return sum(samples) / len(samples) if samples else None


#: Scaled-down router counts for fast benchmark runs; pass
#: ``full_scale=True`` to use the paper's Rocketfuel sizes.
FAST_PROFILES = {
    "AS1221": 106,
    "AS1239": 201,
    "AS3257": 80,
    "AS3967": 67,
}


def _isp(profile: str, seed: int, full_scale: bool):
    n_routers = (ROCKETFUEL_PROFILES[profile]["routers"] if full_scale
                 else FAST_PROFILES[profile])
    return synthetic_isp(n_routers=n_routers, seed=seed, name=profile)


# ---------------------------------------------------------------------------
# Fig 5a — intradomain cumulative join overhead (+ CMU-ETHERNET ratio)
# ---------------------------------------------------------------------------

@_with_perf
def fig5a_intra_join_overhead(profiles: Sequence[str] = ("AS1221", "AS3967"),
                              host_counts: Sequence[int] = (10, 100, 1000),
                              seed: int = 0,
                              full_scale: bool = False) -> Dict:
    """Cumulative join messages vs number of hosts, ROFL vs CMU-ETHERNET."""
    out: Dict = {"profiles": {}, "host_counts": list(host_counts)}
    for profile in profiles:
        topo = _isp(profile, seed, full_scale)
        rofl = IntraDomainNetwork(topo, seed=seed)
        cmu = CmuEthernetNetwork(topo, seed=seed)
        rofl_series: List[int] = []
        cmu_series: List[int] = []
        joined = 0
        for target in sorted(host_counts):
            rofl.join_random_hosts(target - joined)
            cmu.join_random_hosts(target - joined)
            joined = target
            rofl_series.append(rofl.stats.total_messages("join"))
            cmu_series.append(cmu.stats.total_messages("join"))
        ratios = [c / r for r, c in zip(rofl_series, cmu_series) if r]
        out["profiles"][profile] = {
            "rofl_cumulative": rofl_series,
            "cmu_cumulative": cmu_series,
            "cmu_over_rofl": ratios,
            "diameter": topo.diameter(),
        }
    return out


# ---------------------------------------------------------------------------
# Fig 5b — CDF of per-host join overhead
# ---------------------------------------------------------------------------

@_with_perf
def fig5b_join_overhead_cdf(profiles: Sequence[str] = ("AS1221", "AS3967"),
                            n_hosts: int = 600, seed: int = 0,
                            full_scale: bool = False) -> Dict:
    out: Dict = {}
    for profile in profiles:
        topo = _isp(profile, seed, full_scale)
        net = IntraDomainNetwork(topo, seed=seed)
        net.join_random_hosts(n_hosts)
        costs = net.stats.operation_costs("join")
        out[profile] = {
            "cdf": cdf_points(costs),
            "median": percentile(costs, 0.5),
            "p95": percentile(costs, 0.95),
            "mean": sum(costs) / len(costs),
            "diameter": topo.diameter(),
            "per_diameter": (sum(costs) / len(costs)) / topo.diameter(),
        }
    return out


# ---------------------------------------------------------------------------
# Fig 5c — CDF of join latency
# ---------------------------------------------------------------------------

@_with_perf
def fig5c_join_latency_cdf(profiles: Sequence[str] = ("AS1221", "AS3967"),
                           n_hosts: int = 400, seed: int = 0,
                           full_scale: bool = False) -> Dict:
    out: Dict = {}
    for profile in profiles:
        topo = _isp(profile, seed, full_scale)
        net = IntraDomainNetwork(topo, seed=seed)
        latencies = [net.join_host(net.next_planned_host()).latency_ms
                     for _ in range(n_hosts)]
        out[profile] = {
            "cdf": cdf_points(latencies),
            "median_ms": percentile(latencies, 0.5),
            "p95_ms": percentile(latencies, 0.95),
            "mean_ms": sum(latencies) / len(latencies),
        }
    return out


# ---------------------------------------------------------------------------
# Fig 6a — intradomain stretch vs pointer-cache size
# ---------------------------------------------------------------------------

@_with_perf
def fig6a_stretch_vs_cache(profile: str = "AS3967",
                           cache_sizes: Sequence[int] = (0, 16, 64, 256, 1024,
                                                         8192, TCAM_ENTRIES),
                           n_hosts: int = 800, n_packets: int = 400,
                           seed: int = 0, full_scale: bool = False) -> Dict:
    series: List[Tuple[int, float]] = []
    for cache in cache_sizes:
        topo = _isp(profile, seed, full_scale)
        net = IntraDomainNetwork(topo, cache_entries=cache, seed=seed)
        net.join_random_hosts(n_hosts)
        stretches = []
        for _ in range(n_packets):
            a, b = net.random_host_pair()
            result = net.send(a, b)
            if result.delivered and result.optimal_hops > 0:
                stretches.append(result.stretch)
        series.append((cache, _mean(stretches)))
    return {"profile": profile, "series": series,
            "tcam_entries": TCAM_ENTRIES}


# ---------------------------------------------------------------------------
# Fig 6b — load balance vs OSPF
# ---------------------------------------------------------------------------

@_with_perf
def fig6b_load_balance(profile: str = "AS3967", n_hosts: int = 500,
                       n_packets: int = 1500, seed: int = 0,
                       full_scale: bool = False) -> Dict:
    topo = _isp(profile, seed, full_scale)
    net = IntraDomainNetwork(topo, seed=seed)
    net.join_random_hosts(n_hosts)
    net.stats.reset_load()
    ospf = OspfHostRouting(topo)
    rng = derive_rng(seed, "fig6b")
    for _ in range(n_packets):
        a, b = net.random_host_pair()
        net.send(a, b)
        ospf.send_routers(net.hosts[a].router, net.hosts[b].router)
    rofl_load = net.stats.load_series()
    ospf_load = ospf.load_series()
    rofl_total = sum(rofl_load.values()) or 1
    ospf_total = sum(ospf_load.values()) or 1
    # Routers ranked by OSPF load (the paper's x-axis).
    ranked = sorted(topo.routers, key=lambda r: ospf_load.get(r, 0),
                    reverse=True)
    series = [(rank, ospf_load.get(r, 0) / ospf_total,
               rofl_load.get(r, 0) / rofl_total)
              for rank, r in enumerate(ranked)]
    top10 = series[:max(1, len(series) // 10)]
    return {
        "profile": profile,
        "series": series,
        "max_fraction_ospf": max(s[1] for s in series),
        "max_fraction_rofl": max(s[2] for s in series),
        "top_decile_ratio": (sum(s[2] for s in top10)
                             / max(1e-12, sum(s[1] for s in top10))),
    }


# ---------------------------------------------------------------------------
# Fig 6c — memory per router vs number of IDs (+ CMU-ETHERNET ratio)
# ---------------------------------------------------------------------------

@_with_perf
def fig6c_memory(profile: str = "AS3967",
                 host_counts: Sequence[int] = (10, 100, 1000),
                 seed: int = 0, full_scale: bool = False) -> Dict:
    topo = _isp(profile, seed, full_scale)
    net = IntraDomainNetwork(topo, seed=seed)
    cmu = CmuEthernetNetwork(topo, seed=seed)
    series = []
    joined = 0
    for target in sorted(host_counts):
        net.join_random_hosts(target - joined)
        cmu.join_random_hosts(target - joined)
        joined = target
        rofl_mem = net.memory_entries_per_router(include_cache=False)
        cmu_mem = cmu.memory_entries_per_router()
        rofl_avg = sum(rofl_mem.values()) / len(rofl_mem)
        cmu_avg = sum(cmu_mem.values()) / len(cmu_mem)
        series.append({"ids": target, "rofl_avg_entries": rofl_avg,
                       "cmu_avg_entries": cmu_avg,
                       "cmu_over_rofl": cmu_avg / max(rofl_avg, 1e-9)})
    return {"profile": profile, "series": series}


# ---------------------------------------------------------------------------
# Fig 7 — partition repair overhead vs IDs per PoP
#
# The recovery experiments (7/7b/7c) are thin Scenario instances over the
# repro.workload engine: the scenario declares the population and the
# fault, the driver runs it, and the driver's fault log carries the
# repair measurements back out.  Result-dict shapes are unchanged from
# the hand-rolled originals.
# ---------------------------------------------------------------------------

def _recovery_scenario(name: str, seed: int, warmup_hosts: int,
                       faults: List["FaultSpec"],
                       duration: float = 1.0,
                       phases: Optional[List] = None) -> "Scenario":
    from repro.workload.scenario import NetworkSpec, Scenario
    return Scenario(name=name, seed=seed, duration=duration,
                    warmup_hosts=warmup_hosts, sample_interval=duration,
                    network=NetworkSpec(kind="intra"),
                    phases=list(phases or []), faults=faults)


@_with_perf
def fig7_partition_repair(profile: str = "AS3967",
                          ids_per_pop: Sequence[int] = (1, 4, 16, 64),
                          seed: int = 0, full_scale: bool = False) -> Dict:
    from repro.workload.driver import run_scenario
    from repro.workload.scenario import FaultSpec

    series = []
    for per_pop in ids_per_pop:
        topo = _isp(profile, seed, full_scale)
        net = IntraDomainNetwork(topo, seed=seed)
        n_pops = len(topo.pops)
        rng = derive_rng(seed, "fig7", per_pop)
        pop = rng.choice(sorted(topo.pops))
        scenario = _recovery_scenario(
            "fig7-partition", seed, per_pop * n_pops,
            [FaultSpec(kind="pop_partition", at=0.5, params={"pop": pop})])
        result = run_scenario(scenario, network=net)
        report = next(f for f in result.fault_log
                      if f["kind"] == "pop_partition")
        # A rejoin baseline: what rejoining the PoP's IDs would cost.
        join_costs = net.stats.operation_costs("join")
        avg_join = sum(join_costs) / len(join_costs) if join_costs else 1.0
        series.append({
            "ids_per_pop": per_pop,
            "ids_in_pop": report["ids_in_pop"],
            "repair_messages": report["repair_messages"],
            "rejoin_baseline": report["ids_in_pop"] * avg_join,
        })
    return {"profile": profile, "series": series}


# ---------------------------------------------------------------------------
# §6.2 (text) — host-failure overhead vs join overhead
# ---------------------------------------------------------------------------

@_with_perf
def fig7b_host_failure(profile: str = "AS3967", n_hosts: int = 500,
                       n_failures: int = 100, seed: int = 0,
                       full_scale: bool = False) -> Dict:
    from repro.workload.driver import run_scenario
    from repro.workload.scenario import FaultSpec

    topo = _isp(profile, seed, full_scale)
    net = IntraDomainNetwork(topo, seed=seed)
    scenario = _recovery_scenario(
        "fig7b-host-failure", seed, n_hosts,
        [FaultSpec(kind="host_crash", at=0.5,
                   params={"count": n_failures})])
    run_scenario(scenario, network=net)
    join_costs = net.stats.operation_costs("join")
    failure_costs = net.stats.operation_costs("host_failure")
    net.check_ring()
    return {
        "profile": profile,
        "avg_join": sum(join_costs) / len(join_costs),
        "avg_failure": sum(failure_costs) / len(failure_costs),
        "failure_over_join": (sum(failure_costs) / len(failure_costs))
                             / (sum(join_costs) / len(join_costs)),
    }


# ---------------------------------------------------------------------------
# §6.2 (text) / Fig 7c — router-failure recovery under live traffic
# ---------------------------------------------------------------------------

@_with_perf
def fig7c_router_recovery(profile: str = "AS3967", n_hosts: int = 300,
                          n_failures: int = 3, probe_rate: float = 40.0,
                          seed: int = 0, full_scale: bool = False) -> Dict:
    """Crash routers one at a time under open-loop probe traffic and
    measure per-crash repair cost plus the delivery rate the survivors
    sustain while the ring heals."""
    from repro.workload.driver import run_scenario
    from repro.workload.scenario import FaultSpec, Phase, TrafficSpec

    topo = _isp(profile, seed, full_scale)
    net = IntraDomainNetwork(topo, seed=seed)
    duration = float(n_failures + 1)
    scenario = _recovery_scenario(
        "fig7c-router-recovery", seed, n_hosts,
        [FaultSpec(kind="router_crash", at=float(i + 1) - 0.5,
                   params={"count": 1}) for i in range(n_failures)],
        duration=duration,
        phases=[Phase(name="probe", start=0.0, end=duration,
                      traffic=TrafficSpec(rate=probe_rate))])
    result = run_scenario(scenario, network=net)
    net.check_ring()
    crashes = [f for f in result.fault_log if f["kind"] == "router_crash"]
    join_costs = net.stats.operation_costs("join")
    avg_join = sum(join_costs) / len(join_costs) if join_costs else 1.0
    repair = [c["repair_messages"] for c in crashes]
    avg_repair = sum(repair) / len(repair) if repair else 0.0
    return {
        "profile": profile,
        "series": [{"router": c["routers"][0],
                    "repair_messages": c["repair_messages"]}
                   for c in crashes],
        "avg_join": avg_join,
        "avg_repair": avg_repair,
        "repair_over_join": avg_repair / avg_join,
        "delivery_rate": result.summary["delivery_rate"],
        "min_window_delivery_rate":
            result.summary["min_window_delivery_rate"],
    }


# ---------------------------------------------------------------------------
# Fig 8a — interdomain join overhead per strategy
# ---------------------------------------------------------------------------

@_with_perf
def fig8a_inter_join(n_ases: int = 80, n_hosts: int = 300, seed: int = 0,
                     n_fingers: int = 8) -> Dict:
    out: Dict = {"strategies": {}}
    for strategy in (JoinStrategy.EPHEMERAL, JoinStrategy.SINGLE_HOMED,
                     JoinStrategy.MULTIHOMED, JoinStrategy.PEERING):
        asg = synthetic_as_graph(n_ases=n_ases, seed=seed)
        net = InterDomainNetwork(asg, n_fingers=n_fingers, seed=seed,
                                 strategy=strategy)
        receipts = net.join_random_hosts(n_hosts)
        costs = [r.messages for r in receipts]
        window = max(1, len(costs) // 5)
        mean_fingers = sum(r.fingers for r in receipts) / len(receipts)
        out["strategies"][strategy.value] = {
            "moving_avg_tail": sum(costs[-window:]) / window,
            "mean": sum(costs) / len(costs),
            "mean_fingers": mean_fingers,
            "cdf": cdf_points(costs),
            "mismatches": net.lookup_mismatches,
        }
    out["extrapolation_600M"] = extrapolate_join_to_internet(
        out, measured_ids=n_hosts)
    return out


#: Finger-table sizes the paper quotes for its 600 M-ID extrapolation
#: ("a ROFL host can join across all providers and peers and acquire 340
#: fingers with ∼445 control messages").
PAPER_FINGER_TARGETS = {"ephemeral": 0, "single-homed": 0,
                        "multihomed": 0, "peering": 340}


def extrapolate_join_to_internet(fig8a: Dict, measured_ids: int,
                                 internet_ids: int = PAPER_INTERNET_HOSTS) -> Dict:
    """The paper's rough extrapolation to 600 M IDs.

    The lookup legs of a join grow ~log2(n) with population; finger
    acquisition costs ~1 message per finger and is a configuration
    constant, so it is swapped for the paper's per-strategy finger target
    before scaling and added back after.
    """
    out = {}
    growth = math.log2(internet_ids) / math.log2(max(4, measured_ids))
    for name, data in fig8a["strategies"].items():
        base = max(1.0, data["moving_avg_tail"] - data["mean_fingers"])
        target_fingers = PAPER_FINGER_TARGETS.get(name, 0)
        out[name] = round(base * (0.5 + 0.5 * growth) + target_fingers, 1)
    return out


# ---------------------------------------------------------------------------
# Fig 8b — interdomain stretch CDF vs finger count (+ BGP-policy)
# ---------------------------------------------------------------------------

@_with_perf
def fig8b_inter_stretch(n_ases: int = 80, n_hosts: int = 300,
                        finger_counts: Sequence[int] = (4, 16, 32),
                        n_packets: int = 300, seed: int = 0) -> Dict:
    out: Dict = {"fingers": {}}
    for fingers in finger_counts:
        asg = synthetic_as_graph(n_ases=n_ases, seed=seed)
        net = InterDomainNetwork(asg, n_fingers=fingers, seed=seed,
                                 strategy=JoinStrategy.MULTIHOMED)
        net.join_random_hosts(n_hosts)
        stretches = []
        for _ in range(n_packets):
            a, b = net.random_host_pair()
            result = net.send(a, b)
            if result.delivered and result.optimal_hops > 0:
                stretches.append(result.stretch)
        out["fingers"][fingers] = {
            "cdf": cdf_points(stretches),
            "mean": _mean(stretches),
        }
    # BGP-policy baseline: policy path over shortest path.
    asg = synthetic_as_graph(n_ases=n_ases, seed=seed)
    net = InterDomainNetwork(asg, n_fingers=0, seed=seed)
    rng = derive_rng(seed, "fig8b-bgp")
    bearers = [asn for asn in asg.ases() if asg.hosts(asn) > 0]
    bgp_stretches = []
    for _ in range(n_packets):
        a, b = rng.sample(bearers, 2)
        s = net.bgp.policy_stretch(a, b)
        if s is not None:
            bgp_stretches.append(s)
    out["bgp_policy"] = {
        "cdf": cdf_points(bgp_stretches),
        "mean": _mean(bgp_stretches),
    }
    return out


# ---------------------------------------------------------------------------
# Fig 8c — interdomain stretch vs per-AS pointer cache
# ---------------------------------------------------------------------------

@_with_perf
def fig8c_inter_cache_stretch(n_ases: int = 80, n_hosts: int = 300,
                              cache_sizes: Sequence[int] = (0, 64, 512, 4096),
                              n_packets: int = 300, seed: int = 0,
                              n_fingers: int = 8) -> Dict:
    series = []
    for cache in cache_sizes:
        asg = synthetic_as_graph(n_ases=n_ases, seed=seed)
        net = InterDomainNetwork(asg, n_fingers=n_fingers, seed=seed,
                                 cache_entries=cache,
                                 strategy=JoinStrategy.MULTIHOMED)
        net.join_random_hosts(n_hosts)
        stretches = []
        for _ in range(n_packets):
            a, b = net.random_host_pair()
            result = net.send(a, b)
            if result.delivered and result.optimal_hops > 0:
                stretches.append(result.stretch)
        mbits = cache * net.space.bits / 1e6
        series.append({"cache_entries": cache, "cache_mbits_per_as": mbits,
                       "mean_stretch": _mean(stretches)})
    return {"series": series}


# ---------------------------------------------------------------------------
# §6.3 failures — stub-AS failure impact
# ---------------------------------------------------------------------------

@_with_perf
def fig8d_stub_failure(n_ases: int = 80, n_hosts: int = 400,
                       n_failures: int = 5, n_probe_pairs: int = 400,
                       seed: int = 0) -> Dict:
    asg = synthetic_as_graph(n_ases=n_ases, seed=seed)
    net = InterDomainNetwork(asg, n_fingers=8, seed=seed)
    net.join_random_hosts(n_hosts)
    rng = derive_rng(seed, "fig8d")

    # Which host-pair paths does a to-be-failed stub carry?  The paper's
    # 99.998%-unaffected claim rests on stubs carrying no transit: only
    # paths *terminating* in the stub can break, and at Internet scale
    # that is a vanishing fraction of pairs.
    pairs = [net.random_host_pair() for _ in range(n_probe_pairs)]
    paths = {}
    for a, b in pairs:
        paths[(a, b)] = net.send(a, b).path

    results = []
    stubs = [s for s in asg.stubs() if len(net.ases[s].hosted) > 0]
    rng.shuffle(stubs)
    for stub in stubs[:n_failures]:
        ids = len(net.ases[stub].hosted)
        transit_affected = sum(1 for p in paths.values() if stub in p[1:-1])
        endpoint_affected = sum(
            1 for (a, b), p in paths.items()
            if (net.hosts.get(a) is not None and net.hosts[a].home_as == stub)
            or (net.hosts.get(b) is not None and net.hosts[b].home_as == stub))
        messages = net.fail_as(stub)
        net.check_rings()
        # Survivors must still reach each other.
        delivered = 0
        probes = 0
        for _ in range(50):
            try:
                a, b = net.random_host_pair()
            except ValueError:
                break
            probes += 1
            delivered += net.send(a, b).delivered
        results.append({
            "stub": str(stub), "ids": ids, "repair_messages": messages,
            "messages_per_id": messages / max(1, ids),
            "transit_paths_affected": transit_affected / len(paths),
            "endpoint_paths_affected": endpoint_affected / len(paths),
            "endpoint_fraction_600M": ids / PAPER_INTERNET_HOSTS,
            "post_delivery": delivered / max(1, probes),
        })
    return {"failures": results}


# ---------------------------------------------------------------------------
# §4.2 / 6.3 — bloom-filter peering vs virtual-AS peering
# ---------------------------------------------------------------------------

@_with_perf
def fig8e_bloom_peering(n_ases: int = 80, n_hosts: int = 250,
                        n_packets: int = 250, seed: int = 0,
                        n_fingers: int = 8) -> Dict:
    out: Dict = {}
    for mode in ("virtual_as", "bloom"):
        asg = synthetic_as_graph(n_ases=n_ases, seed=seed)
        net = InterDomainNetwork(asg, n_fingers=n_fingers, seed=seed,
                                 strategy=JoinStrategy.PEERING,
                                 peering_mode=mode)
        receipts = net.join_random_hosts(n_hosts)
        costs = [r.messages for r in receipts]
        stretches = []
        delivered = 0
        for _ in range(n_packets):
            a, b = net.random_host_pair()
            result = net.send(a, b)
            delivered += result.delivered
            if result.delivered and result.optimal_hops > 0:
                stretches.append(result.stretch)
        out[mode] = {
            "mean_join": sum(costs) / len(costs),
            "mean_stretch": sum(stretches) / max(1, len(stretches)),
            "delivery_rate": delivered / n_packets,
            "bloom_mbits_total": net.bloom_bits_total() / 1e6,
        }
    return out


# ---------------------------------------------------------------------------
# Head-to-head — ROFL vs Disco-style compact routing, judged by the obs layer
# ---------------------------------------------------------------------------

def _measure_headtohead(net, pairs) -> Dict:
    """Route ``pairs`` through one baseline under tracing and fold the
    outcome into a comparison row: stretch tail (mean/p99/worst), bound
    accounting, and — for tracing protocols — per-decision stretch
    attribution from :func:`repro.obs.explain.explain_packets`, checked
    to sum exactly (float-isclose) to each packet's ``PathResult.stretch``.
    """
    from repro.obs import (ProbeSet, RingBufferSink, Tracer, explain_packets,
                           trace)

    sink = RingBufferSink(capacity=None)
    tracer = Tracer(sink)
    probes = ProbeSet.for_network(net, tracer=tracer)
    results = []
    with trace.tracing(tracer):
        for a, b in pairs:
            results.append(net.send(a, b))
        probes.tick(0.0)
    probes.detach()

    bound = getattr(net, "stretch_bound", float("inf"))
    stretches = [r.stretch for r in results
                 if r.delivered and r.optimal_hops > 0]
    row: Dict = {
        "sent": len(results),
        "delivered": sum(r.delivered for r in results),
        "mean": _mean(stretches),
        "p99": percentile(stretches, 0.99) if stretches else None,
        "worst": max(stretches) if stretches else None,
        "stretch_bound": bound if bound != float("inf") else None,
        "bound_violations": sum(s > bound + 1e-9 for s in stretches),
        "messages": {k: v for k, v in sorted(net.stats.messages.items())},
        "probe_violations": probes.summary(),
    }
    if hasattr(net, "memory_entries_per_router"):
        memory = net.memory_entries_per_router()
        row["memory"] = {"mean": _mean(list(memory.values())),
                         "max": max(memory.values()) if memory else None}
    else:
        row["memory"] = {"mean": None, "max": None}

    # Per-decision attribution (protocols that emit packet spans only).
    expls = explain_packets(sink.records())
    row["trace_spans"] = len(expls)
    attribution: Dict[str, Dict[str, float]] = {}
    tail_attribution: Dict[str, float] = {}
    mismatches = 0
    if expls and len(expls) == len(results):
        tail_floor = row["p99"] if row["p99"] is not None else float("inf")
        for expl, result in zip(expls, results):
            total = expl.total_stretch(result.optimal_hops)
            if result.delivered and result.optimal_hops > 0 and \
                    not math.isclose(total, result.stretch,
                                     rel_tol=1e-9, abs_tol=1e-12):
                mismatches += 1
            in_tail = (result.delivered and result.optimal_hops > 0
                       and result.stretch >= tail_floor)
            for seg in expl.segments:
                share = seg.attribution(result.optimal_hops)
                cell = attribution.setdefault(
                    seg.rule, {"hops": 0, "stretch": 0.0})
                cell["hops"] += seg.n_hops
                cell["stretch"] += share
                if in_tail:
                    tail_attribution[seg.rule] = (
                        tail_attribution.get(seg.rule, 0.0) + share)
    row["attribution"] = {rule: attribution[rule]
                          for rule in sorted(attribution)}
    row["tail_attribution"] = {rule: tail_attribution[rule]
                               for rule in sorted(tail_attribution)}
    row["attribution_mismatches"] = mismatches
    if hasattr(net, "cache_stats"):
        row["cache"] = net.cache_stats()
    return row


@_with_perf
def headtohead_stretch(profile: str = "AS3967", n_hosts: int = 200,
                       n_packets: int = 400, n_ases: int = 60,
                       inter_hosts: int = 150, inter_packets: int = 200,
                       seed: int = 0, full_scale: bool = False,
                       landmark_factor: float = 1.0,
                       all_pairs_hosts: int = 40) -> Dict:
    """ROFL vs Disco (vs CMU-ETHERNET / OSPF) stretch tail, obs-judged.

    The evaluation axis the source paper could not reach (its baselines
    have no stretch story): all four flat-label baselines run over the
    *same* ISP topology with byte-identical host populations (same seed
    → same ``HostPlan`` tape) and the *same* packet pair list, so every
    difference in the stretch columns is protocol, not workload.  Per-
    decision attribution comes from ``obs.explain`` and is verified to
    sum exactly to each packet's stretch; Disco additionally runs an
    exhaustive all-pairs sweep under the stretch-bound probe — zero
    violations is the CI gate.

    The interdomain section compares ROFL's fig8b configuration with
    Disco run over the flattened AS graph.  Caveat recorded in the
    result: ROFL's stretch denominator is the *BGP policy* path (the
    paper's convention), Disco's is the shortest AS path, so the two
    columns answer slightly different questions and are reported side
    by side rather than as a ratio.
    """
    from repro.compact import DiscoNetwork
    from repro.topology.asgraph import as_router_topology

    topo = _isp(profile, seed, full_scale)
    nets = {
        "rofl": IntraDomainNetwork(topo, seed=seed),
        "disco": DiscoNetwork(topo, seed=seed,
                              landmark_factor=landmark_factor),
        "cmu": CmuEthernetNetwork(topo, seed=seed),
        "ospf": OspfHostRouting(topo, seed=seed),
    }
    for net in nets.values():
        net.join_random_hosts(n_hosts)
    names = nets["disco"].hosts.names
    assert all(list(net.hosts) == list(names) for net in nets.values()), \
        "host populations diverged across baselines"
    pair_rng = derive_rng(seed, "headtohead", profile)
    pairs = [tuple(pair_rng.sample(names, 2)) for _ in range(n_packets)]

    out: Dict = {"profile": profile, "n_hosts": n_hosts,
                 "n_packets": n_packets,
                 "intra": {label: _measure_headtohead(net, pairs)
                           for label, net in nets.items()}}
    out["intra"]["disco"]["landmarks"] = nets["disco"].plan.n_landmarks

    # Exhaustive bound check: every ordered pair among the first
    # ``all_pairs_hosts`` hosts, stretch-bound probe attached.
    out["disco_all_pairs"] = _disco_all_pairs(nets["disco"],
                                              names[:all_pairs_hosts])

    # Interdomain: ROFL fig8b configuration vs Disco over the AS graph.
    asg = synthetic_as_graph(n_ases=n_ases, seed=seed)
    inter = InterDomainNetwork(asg, n_fingers=16, seed=seed,
                               strategy=JoinStrategy.MULTIHOMED)
    inter.join_random_hosts(inter_hosts)
    inter_pairs = [inter.random_host_pair() for _ in range(inter_packets)]
    inter_row = _measure_headtohead(inter, inter_pairs)
    inter_row["denominator"] = "bgp-policy-path"

    astopo = as_router_topology(asg, name="as{}".format(n_ases))
    ordered_ases = sorted(asg.ases(), key=repr)
    disco_inter = DiscoNetwork(
        astopo, seed=seed, landmark_factor=landmark_factor,
        attachment_weights=[float(asg.hosts(asn)) for asn in ordered_ases])
    disco_inter.join_random_hosts(inter_hosts)
    disco_pairs = [disco_inter.random_host_pair()
                   for _ in range(inter_packets)]
    disco_row = _measure_headtohead(disco_inter, disco_pairs)
    disco_row["denominator"] = "shortest-as-path"
    disco_row["landmarks"] = disco_inter.plan.n_landmarks
    out["inter"] = {"rofl": inter_row, "disco": disco_row}
    return out


def _disco_all_pairs(net, names) -> Dict:
    """Route every ordered pair in ``names`` with the stretch-bound probe
    live (NullSink tracer: probe sees every record, nothing retained)."""
    from repro.obs import NullSink, ProbeSet, Tracer, trace

    tracer = Tracer(NullSink())
    probes = ProbeSet.for_network(net, tracer=tracer)
    worst = 0.0
    routed = 0
    undelivered = 0
    with trace.tracing(tracer):
        for a in names:
            for b in names:
                if a == b:
                    continue
                result = net.send(a, b)
                routed += 1
                if not result.delivered:
                    undelivered += 1
                elif result.optimal_hops > 0:
                    worst = max(worst, result.stretch)
        probes.tick(0.0)
    probes.detach()
    return {"pairs": routed, "undelivered": undelivered,
            "max_stretch": worst, "bound": net.stretch_bound,
            "violations": probes.summary()}
