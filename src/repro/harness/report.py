"""Rendering experiment results as the rows/series the paper reports.

Each ``format_figXX`` takes the dict its driver produced and returns the
text block printed by the benches and by ``examples/reproduce_paper.py``.
"""

from __future__ import annotations

from typing import Dict


def _rule(title: str) -> str:
    return "\n{}\n{}\n".format(title, "-" * len(title))


def _num(value, spec: str = "{:.2f}", width: int = 0) -> str:
    """Format a possibly-absent statistic; empty series arrive as None
    (see ``repro.harness.experiments._mean``) and render as ``n/a``."""
    text = "n/a" if value is None else spec.format(value)
    return text.rjust(width) if width else text


def format_fig5a(result: Dict) -> str:
    lines = [_rule("Fig 5a — intradomain cumulative join overhead")]
    lines.append("{:<10} {:>8} {:>14} {:>14} {:>10}".format(
        "ISP", "hosts", "ROFL msgs", "CMU msgs", "CMU/ROFL"))
    for profile, data in result["profiles"].items():
        for hosts, rofl, cmu, ratio in zip(result["host_counts"],
                                           data["rofl_cumulative"],
                                           data["cmu_cumulative"],
                                           data["cmu_over_rofl"]):
            lines.append("{:<10} {:>8} {:>14} {:>14} {:>9.1f}x".format(
                profile, hosts, rofl, cmu, ratio))
    lines.append("paper: linear scaling; CMU-ETHERNET 37-181x more messages")
    return "\n".join(lines)


def format_fig5b(result: Dict) -> str:
    lines = [_rule("Fig 5b — CDF of per-host join overhead [packets]")]
    lines.append("{:<10} {:>8} {:>8} {:>8} {:>10} {:>12}".format(
        "ISP", "median", "p95", "mean", "diameter", "mean/diam"))
    for profile, data in result.items():
        if profile == "perf":
            continue
        lines.append("{:<10} {:>8.0f} {:>8.0f} {:>8.1f} {:>10} {:>11.1f}x".format(
            profile, data["median"], data["p95"], data["mean"],
            data["diameter"], data["per_diameter"]))
    lines.append("paper: <45 packets per join, roughly 4x network diameter")
    return "\n".join(lines)


def format_fig5c(result: Dict) -> str:
    lines = [_rule("Fig 5c — CDF of join latency [ms]")]
    lines.append("{:<10} {:>10} {:>10} {:>10}".format(
        "ISP", "median", "p95", "mean"))
    for profile, data in result.items():
        if profile == "perf":
            continue
        lines.append("{:<10} {:>10.1f} {:>10.1f} {:>10.1f}".format(
            profile, data["median_ms"], data["p95_ms"], data["mean_ms"]))
    lines.append("paper: joins typically complete in under 40 ms")
    return "\n".join(lines)


def format_fig6a(result: Dict) -> str:
    lines = [_rule("Fig 6a — stretch vs pointer-cache size ({})".format(
        result["profile"]))]
    lines.append("{:>14} {:>12}".format("cache entries", "avg stretch"))
    for cache, stretch in result["series"]:
        lines.append("{:>14} {}".format(cache, _num(stretch, width=12)))
    lines.append("paper: stretch drops to ~1.2-2 at ~70k entries (9 Mbit TCAM)")
    return "\n".join(lines)


def format_fig6b(result: Dict) -> str:
    lines = [_rule("Fig 6b — load balance vs OSPF ({})".format(
        result["profile"]))]
    lines.append("max per-router traffic fraction: OSPF {:.4f}  ROFL {:.4f}".format(
        result["max_fraction_ospf"], result["max_fraction_rofl"]))
    lines.append("ROFL/OSPF load on the top-decile (hottest) routers: {:.2f}x".format(
        result["top_decile_ratio"]))
    lines.append("paper: difference from OSPF is slight; no significant hot-spots")
    return "\n".join(lines)


def format_fig6c(result: Dict) -> str:
    lines = [_rule("Fig 6c — avg memory entries per router ({})".format(
        result["profile"]))]
    lines.append("{:>8} {:>16} {:>16} {:>10}".format(
        "IDs", "ROFL entries", "CMU entries", "CMU/ROFL"))
    for row in result["series"]:
        lines.append("{:>8} {:>16.1f} {:>16.1f} {:>9.1f}x".format(
            row["ids"], row["rofl_avg_entries"], row["cmu_avg_entries"],
            row["cmu_over_rofl"]))
    lines.append("paper: CMU-ETHERNET needs 34-1200x more memory")
    return "\n".join(lines)


def format_fig7(result: Dict) -> str:
    lines = [_rule("Fig 7 — partition repair overhead ({})".format(
        result["profile"]))]
    lines.append("{:>12} {:>10} {:>14} {:>16}".format(
        "IDs per PoP", "IDs hit", "repair msgs", "rejoin baseline"))
    for row in result["series"]:
        lines.append("{:>12} {:>10} {:>14} {:>16.0f}".format(
            row["ids_per_pop"], row["ids_in_pop"], row["repair_messages"],
            row["rejoin_baseline"]))
    lines.append("paper: repair on the same order as rejoining the PoP's hosts;"
                 " converges correctly in every run")
    return "\n".join(lines)


def format_fig7b(result: Dict) -> str:
    lines = [_rule("§6.2 — host failure vs join overhead ({})".format(
        result["profile"]))]
    lines.append("avg join {:.1f} msgs, avg host-failure repair {:.1f} msgs "
                 "({:.2f}x)".format(result["avg_join"], result["avg_failure"],
                                    result["failure_over_join"]))
    lines.append("paper: failure/mobility overhead comparable to join overhead")
    return "\n".join(lines)


def format_fig7c(result: Dict) -> str:
    lines = [_rule("§6.2 — router-failure recovery under traffic ({})".format(
        result["profile"]))]
    lines.append("{:>10} {:>14}".format("router", "repair msgs"))
    for row in result["series"]:
        lines.append("{:>10} {:>14}".format(row["router"],
                                            row["repair_messages"]))
    lines.append("avg repair {:.0f} msgs ({:.1f}x avg join); delivery {:.3f}"
                 " (worst window {:.3f})".format(
                     result["avg_repair"], result["repair_over_join"],
                     result["delivery_rate"],
                     result["min_window_delivery_rate"]))
    lines.append("paper: routers recover via failover pointers; traffic keeps"
                 " flowing while the ring heals")
    return "\n".join(lines)


def format_fig8a(result: Dict) -> str:
    lines = [_rule("Fig 8a — interdomain join overhead by strategy")]
    lines.append("{:<16} {:>12} {:>12}".format(
        "strategy", "mean msgs", "tail avg"))
    for name, data in result["strategies"].items():
        lines.append("{:<16} {:>12.1f} {:>12.1f}".format(
            name, data["mean"], data["moving_avg_tail"]))
    lines.append("extrapolated to 600M IDs: {}".format(
        result["extrapolation_600M"]))
    lines.append("paper: ephemeral ~14, single-homed ~80, multihomed ~100,"
                 " peering up to ~445 msgs (600M extrapolation)")
    return "\n".join(lines)


def format_fig8b(result: Dict) -> str:
    lines = [_rule("Fig 8b — interdomain stretch vs finger count")]
    lines.append("{:<14} {:>12}".format("fingers", "mean stretch"))
    for fingers, data in sorted(result["fingers"].items()):
        lines.append("{:<14} {}".format(fingers, _num(data["mean"], width=12)))
    lines.append("{:<14} {}".format("BGP-policy",
                                    _num(result["bgp_policy"]["mean"],
                                         width=12)))
    lines.append("paper: stretch 2.8 @60 fingers falling to 2.3 @160;"
                 " more fingers => less stretch")
    return "\n".join(lines)


def format_fig8c(result: Dict) -> str:
    lines = [_rule("Fig 8c — interdomain stretch vs per-AS pointer cache")]
    lines.append("{:>14} {:>16} {:>12}".format(
        "cache entries", "Mbit per AS", "mean stretch"))
    for row in result["series"]:
        lines.append("{:>14} {:>16.2f} {}".format(
            row["cache_entries"], row["cache_mbits_per_as"],
            _num(row["mean_stretch"], width=12)))
    lines.append("paper: caching reduces stretch (2 -> 1.33 at 20M entries/AS)")
    return "\n".join(lines)


def format_fig8d(result: Dict) -> str:
    lines = [_rule("§6.3 — stub-AS failure impact")]
    lines.append("{:<8} {:>5} {:>12} {:>9} {:>9} {:>10} {:>12} {:>9}".format(
        "stub", "IDs", "repair msgs", "msgs/ID", "transit", "endpoint",
        "@600M scale", "delivery"))
    for row in result["failures"]:
        lines.append(
            "{:<8} {:>5} {:>12} {:>9.1f} {:>8.2%} {:>9.2%} {:>11.6%} {:>8.0%}"
            .format(row["stub"], row["ids"], row["repair_messages"],
                    row["messages_per_id"], row["transit_paths_affected"],
                    row["endpoint_paths_affected"],
                    row["endpoint_fraction_600M"], row["post_delivery"]))
    lines.append("paper: 99.998% of paths unaffected (stubs carry no transit —"
                 " the transit column must be 0); repair msgs ~ #IDs in stub")
    return "\n".join(lines)


def format_fig8e(result: Dict) -> str:
    lines = [_rule("§4.2/6.3 — peering: virtual-AS vs bloom filters")]
    lines.append("{:<12} {:>12} {:>14} {:>10} {:>16}".format(
        "mode", "mean join", "mean stretch", "delivery", "bloom Mbit"))
    for mode, data in result.items():
        if mode == "perf":
            continue
        lines.append("{:<12} {:>12.1f} {:>14.2f} {:>9.0%} {:>16.2f}".format(
            mode, data["mean_join"], data["mean_stretch"],
            data["delivery_rate"], data["bloom_mbits_total"]))
    lines.append("paper: bloom filters cut peering-join overhead to the"
                 " multihomed level at the cost of per-AS filter state and"
                 " slightly higher stretch (3.29 vs 2.8)")
    return "\n".join(lines)


def format_headtohead(result: Dict) -> str:
    lines = [_rule("Head-to-head — ROFL vs compact routing on flat labels"
                   " ({})".format(result["profile"]))]
    lines.append("{:<8} {:>6} {:>6} {:>8} {:>8} {:>8} {:>7} {:>6} {:>9}"
                 .format("proto", "sent", "deliv", "mean", "p99", "worst",
                         "bound", "viol", "mismatch"))

    def _proto_line(label, row):
        return "{:<8} {:>6} {:>6} {} {} {} {:>7} {:>6} {:>9}".format(
            label, row["sent"], row["delivered"],
            _num(row["mean"], width=8), _num(row["p99"], width=8),
            _num(row["worst"], width=8),
            _num(row["stretch_bound"], "{:.1f}") if
            row["stretch_bound"] is not None else "inf",
            row["bound_violations"] + len(row["probe_violations"]),
            row["attribution_mismatches"])

    for label in ("rofl", "disco", "cmu", "ospf"):
        lines.append(_proto_line(label, result["intra"][label]))
    for label in ("rofl", "disco"):
        row = result["intra"][label]
        if row["tail_attribution"]:
            parts = ", ".join("{} +{:.2f}".format(rule, share)
                              for rule, share in
                              sorted(row["tail_attribution"].items(),
                                     key=lambda kv: -kv[1]))
            lines.append("  {} stretch tail (>=p99) by decision: {}".format(
                label, parts))
    sweep = result["disco_all_pairs"]
    lines.append("disco all-pairs sweep: {} pairs, max stretch {} "
                 "(bound {:.1f}), {} undelivered, {} violations".format(
                     sweep["pairs"], _num(sweep["max_stretch"], "{:.3f}"),
                     sweep["bound"], sweep["undelivered"],
                     len(sweep["violations"])))
    lines.append("interdomain ({} vs {}):".format(
        result["inter"]["rofl"]["denominator"],
        result["inter"]["disco"]["denominator"]))
    for label in ("rofl", "disco"):
        lines.append(_proto_line(label, result["inter"][label]))
    lines.append("Singla et al.: compact routing bounds worst-case stretch"
                 " at 3; ROFL's tail is unbounded but its common case"
                 " rides the ring shortcuts")
    return "\n".join(lines)
