"""Routing control / traffic engineering (Section 5.1).

Three mechanisms:

* **Endpoint path negotiation** — "all paths that can be used to reach AS
  X from AS Y traverse ASes in the intersection of X's and Y's
  up-hierarchies … we allow the source and destination to negotiate a
  subset of ASes in this set that can be used to forward packets".
* **Multihomed suffix joins** — "when a hosting router in a multihomed AS
  performs a join, it sends a join out on each of its AS's p providers
  with IDs with variable suffixes (G, x_k) … Hosts or intermediate
  routers may vary r and the suffixes x_k to control the path selected".
* **Regional sub-rings** — "a transit AS that is spread over multiple
  countries can create sub-rings corresponding to each of those regions.
  The isolation property ensures that internal traffic will not transit
  costly inter-country links."  Realised by building a region hierarchy
  and running the interdomain machinery over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence, Set, Tuple

from repro.idspace.identifier import FlatId
from repro.inter.network import InterDomainNetwork
from repro.inter.policy import JoinStrategy
from repro.sim.stats import PathResult
from repro.topology.asgraph import ASGraph
from repro.topology.hosts import PlannedHost


# -- endpoint path negotiation -----------------------------------------------------


@dataclass(frozen=True)
class NegotiatedPathSet:
    """The result of the first-packet negotiation: which ASes may carry
    this session's traffic."""

    src_as: Hashable
    dst_as: Hashable
    allowed_ases: frozenset

    def permits(self, as_path: Sequence[Hashable]) -> bool:
        return all(asn in self.allowed_ases for asn in as_path)


def negotiate_path_set(net: InterDomainNetwork, src_as: Hashable,
                       dst_as: Hashable,
                       dst_selection: Optional[Set[Hashable]] = None
                       ) -> NegotiatedPathSet:
    """Run the negotiation: the destination "select[s] a subset of ASes
    above it in the hierarchy and append[s] this set to the response";
    the usable region is both endpoints' hierarchies joined through the
    selected subset."""
    up_src = set(net.policy.hierarchy.up_chain(src_as))
    up_dst = set(net.policy.hierarchy.up_chain(dst_as))
    if dst_selection is not None:
        illegal = dst_selection - up_dst
        if illegal:
            raise ValueError("destination selected ASes outside its "
                             "up-hierarchy: {}".format(sorted(map(str, illegal))))
        up_dst = set(dst_selection) | {dst_as}
    allowed = up_src | up_dst
    # The negotiation costs one round trip on the first packet; charge it.
    dist = net.bgp.policy_distance(src_as, dst_as)
    if dist is not None:
        net.stats.charge_hops(2 * dist, "negotiation")
    return NegotiatedPathSet(src_as=src_as, dst_as=dst_as,
                             allowed_ases=frozenset(allowed))


def send_negotiated(net: InterDomainNetwork, src_host: str, dst_host: str,
                    negotiated: NegotiatedPathSet) -> Tuple[PathResult, bool]:
    """Send a post-negotiation packet: once the endpoints have exchanged
    their hierarchy subsets, packets carry a direct AS-level source route
    through the negotiated set — "stretch for remaining packets can be
    reduced to one by exchanging the list of ASes above the destination".
    Falls back to plain greedy routing when no path fits the set."""
    src_as = net.hosts[src_host].home_as
    dst_as = net.hosts[dst_host].home_as
    direct = _direct_path_within(net, src_as, dst_as, negotiated.allowed_ases)
    if direct is not None:
        net.stats.charge_path(direct, "data")
        hops = len(direct) - 1
        optimal = net.bgp.policy_distance(src_as, dst_as) or hops
        result = PathResult(delivered=True, path=list(direct), hops=hops,
                            optimal_hops=optimal)
        return result, True
    result = net.send(src_host, dst_host)
    return result, negotiated.permits(result.path)


def _direct_path_within(net: InterDomainNetwork, src_as: Hashable,
                        dst_as: Hashable,
                        allowed: frozenset) -> Optional[Tuple[Hashable, ...]]:
    """Shortest valley-free path whose every AS lies in ``allowed``."""
    path = net.policy.policy_path(src_as, dst_as)
    if path is not None and all(asn in allowed for asn in path):
        return path
    # Constrained search: climb src's side of the allowed set, descend
    # the destination's side through a common member.
    up_src = [asn for asn in net.policy.hierarchy.up_chain(src_as)
              if asn in allowed]
    best: Optional[Tuple[Hashable, ...]] = None
    for meet in up_src:
        up_leg = net.policy.policy_path(src_as, meet)
        down_leg = net.policy.policy_path(meet, dst_as)
        if up_leg is None or down_leg is None:
            continue
        candidate = tuple(up_leg) + tuple(down_leg[1:])
        if not all(asn in allowed for asn in candidate):
            continue
        if not net.policy.route_is_valley_free(candidate):
            continue
        if best is None or len(candidate) < len(best):
            best = candidate
    return best


# -- multihomed suffix joins ----------------------------------------------------------


class MultihomedSuffixJoin:
    """Per-provider identifiers ``(G, x_k)`` for inbound TE.

    Each provider ``k`` of the host's AS carries a single-homed join of
    the suffix-``k`` identifier, so a correspondent routing to ``(G, r)``
    deterministically enters via provider ``r``'s hierarchy — the degree
    of inbound control the paper contrasts with BGP prepending.

    The per-suffix identifiers are *hashed* onto the ring (``H(G‖x_k)``)
    rather than packed into one contiguous group arc: adjacent same-prefix
    IDs would make the group's own members each other's ring
    predecessors, so every inbound route would funnel through the lowest
    suffix's provider.  Spreading the IDs gives each suffix an unrelated
    ring predecessor whose pointer carries the provider-constrained
    source route (see ``canon._route_to_vn``).
    """

    def __init__(self, net: InterDomainNetwork, host: PlannedHost,
                 group_name: str):
        self.net = net
        self.host = host
        self.group_name = group_name
        #: suffix → (provider, joined flat ID)
        self.suffix_map: Dict[int, Tuple[Hashable, FlatId]] = {}

    def join_all(self) -> Dict[int, Tuple[Hashable, FlatId]]:
        """Join one suffix per provider of the host's AS."""
        home = self.host.attach_at
        providers = sorted(self.net.asg.providers(home), key=str)
        if not providers:
            raise ValueError("AS {} has no providers to engineer".format(home))
        for k, provider in enumerate(providers):
            member_id = FlatId.from_bytes(
                "{}:{}".format(self.group_name, k).encode("utf-8"),
                bits=self.net.space.bits)
            self.net.join_host(
                PlannedHost(name="{}#{}".format(self.host.name, k),
                            attach_at=home, key_pair=self.host.key_pair),
                strategy=JoinStrategy.SINGLE_HOMED,
                via_provider=provider,
                flat_id_override=member_id,
            )
            self.suffix_map[k] = (provider, member_id)
        return dict(self.suffix_map)

    def send_via(self, src_as: Hashable, suffix: int) -> Tuple[PathResult, Hashable]:
        """Route to ``(G, suffix)``; returns the result and the provider
        the packet was engineered toward."""
        provider, member_id = self.suffix_map[suffix]
        return self.net.send_to_id(src_as, member_id), provider

    def entry_provider(self, as_path: Sequence[Hashable]) -> Optional[Hashable]:
        """Which of the host's providers the packet actually entered by:
        the AS immediately before the home AS on the path."""
        home = self.host.attach_at
        for prev, asn in zip(as_path, as_path[1:]):
            if asn == home:
                return prev
        return None


# -- regional sub-rings -----------------------------------------------------------------


def build_regional_hierarchy(regions: Dict[Hashable, int],
                             parent_name: str = "GLOBAL") -> ASGraph:
    """Build the AS graph realising Section 5.1's intra-domain sub-rings:
    one "AS" per region, all customers of a single corporate parent.

    ``regions`` maps region name → host count.  Running the interdomain
    machinery over this graph gives regional rings whose isolation
    property keeps intra-region traffic off inter-region links.
    """
    asg = ASGraph()
    asg.add_as(parent_name, tier=1)
    for region, hosts in regions.items():
        asg.add_as(region, tier=2, hosts=hosts)
        asg.add_customer_provider(region, parent_name)
    asg.validate()
    return asg
