"""Section 5 extensions: routing control, enhanced delivery, security.

* :mod:`repro.services.anycast` — ``(G, x)`` group joins; routing toward
  ``(G, y)`` reaches the first group member encountered.
* :mod:`repro.services.multicast` — path-painting trees of bidirectional
  links over the ROFL ring.
* :mod:`repro.services.security` — default-off reachability, registration
  and capabilities with lifetimes (TVA-style), path capabilities.
* :mod:`repro.services.traffic_eng` — endpoint path negotiation over
  up-hierarchy intersections, multihomed suffix joins, regional
  sub-rings.
"""

from repro.services.anycast import AnycastGroup
from repro.services.anycast_inter import InterAnycastGroup
from repro.services.auditing import QuotaPolicy, SybilAuditor
from repro.services.multicast import MulticastGroup
from repro.services.multicast_inter import InterMulticastGroup
from repro.services.security import (AccessController, Capability,
                                     CapabilityAuthority)
from repro.services.traffic_eng import (MultihomedSuffixJoin,
                                        negotiate_path_set)

__all__ = [
    "AnycastGroup",
    "InterAnycastGroup",
    "InterMulticastGroup",
    "QuotaPolicy",
    "SybilAuditor",
    "MulticastGroup",
    "AccessController",
    "Capability",
    "CapabilityAuthority",
    "MultihomedSuffixJoin",
    "negotiate_path_set",
]
