"""Security extensions (Section 5.3).

* **Default off** — "hosts should not by default be reachable from other
  hosts … we require that hosts explicitly register with their providers
  and traffic to a host not registered with its provider be dropped."
* **Capabilities** — "a cryptographic token designating that a particular
  source (with its own unique identifier) is allowed to contact the
  destination … associated with a lifetime", granted by the destination
  and verified against its self-certifying identifier.
* **Path capabilities** — "restrict communication along the AS-level
  path(s) to a destination", the fine-grained pushback/DDoS-limiting
  mechanism.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import FrozenSet, Hashable, Optional, Set, Tuple

from repro.idspace.crypto import KeyPair, SignatureAuthority
from repro.idspace.identifier import FlatId


@dataclass(frozen=True)
class Capability:
    """A destination-granted, lifetime-bounded permission token."""

    src_id: FlatId
    dst_id: FlatId
    expires_at: float
    #: Optional AS-level path restriction (``None`` = any policy path).
    allowed_ases: Optional[FrozenSet[Hashable]]
    signature: bytes

    def describe(self) -> str:
        scope = ("any path" if self.allowed_ases is None
                 else "{} ASes".format(len(self.allowed_ases)))
        return "Capability({} → {}, until {}, {})".format(
            self.src_id, self.dst_id, self.expires_at, scope)


def _capability_message(src_id: FlatId, dst_id: FlatId, expires_at: float,
                        allowed_ases: Optional[FrozenSet[Hashable]]) -> bytes:
    h = hashlib.sha256()
    h.update(src_id.to_hex().encode())
    h.update(dst_id.to_hex().encode())
    h.update(repr(expires_at).encode())
    if allowed_ases is not None:
        for asn in sorted(allowed_ases, key=str):
            h.update(str(asn).encode())
    return h.digest()


class CapabilityAuthority:
    """Grants and verifies capabilities for one destination key pair."""

    def __init__(self, dst_key: KeyPair,
                 authority: Optional[SignatureAuthority] = None):
        self.dst_key = dst_key
        self.authority = authority or dst_key.authority
        self._revoked: Set[bytes] = set()

    def grant(self, src_id: FlatId, expires_at: float,
              allowed_ases: Optional[Set[Hashable]] = None) -> Capability:
        """The destination's route-setup response: permission for
        ``src_id`` to reach it until ``expires_at``."""
        frozen = frozenset(allowed_ases) if allowed_ases is not None else None
        message = _capability_message(src_id, self.dst_key.flat_id,
                                      expires_at, frozen)
        return Capability(src_id=src_id, dst_id=self.dst_key.flat_id,
                          expires_at=expires_at, allowed_ases=frozen,
                          signature=self.dst_key.sign(message))

    def revoke(self, capability: Capability) -> None:
        self._revoked.add(capability.signature)

    def verify(self, capability: Capability, now: float,
               claimed_src: FlatId,
               as_path: Optional[Tuple[Hashable, ...]] = None) -> bool:
        """The data-plane check: "Only with a proper capability will the
        data plane forward the data packets"."""
        if capability.signature in self._revoked:
            return False
        if capability.dst_id != self.dst_key.flat_id:
            return False
        if claimed_src != capability.src_id:
            return False
        if now > capability.expires_at:
            return False
        message = _capability_message(capability.src_id, capability.dst_id,
                                      capability.expires_at,
                                      capability.allowed_ases)
        if not self.authority.verify(self.dst_key.public_key, message,
                                     capability.signature):
            return False
        if capability.allowed_ases is not None and as_path is not None:
            if not all(asn in capability.allowed_ases for asn in as_path):
                return False
        return True


class AccessController:
    """Default-off reachability for one provider/hosting domain.

    Tracks registration ("hosts explicitly register with their
    providers") and the pointer-construction allow-list ("the host … can
    control pointer construction to limit which other hosts are allowed
    to reach it").
    """

    def __init__(self) -> None:
        self._registered: Set[FlatId] = set()
        self._allow: dict = {}  # dst_id → set of src ids (None = open)

    def register(self, host_id: FlatId,
                 allowed_sources: Optional[Set[FlatId]] = None) -> None:
        self._registered.add(host_id)
        self._allow[host_id] = (set(allowed_sources)
                                if allowed_sources is not None else None)

    def deregister(self, host_id: FlatId) -> None:
        self._registered.discard(host_id)
        self._allow.pop(host_id, None)

    def is_registered(self, host_id: FlatId) -> bool:
        return host_id in self._registered

    def allow_source(self, dst_id: FlatId, src_id: FlatId) -> None:
        allowed = self._allow.get(dst_id)
        if allowed is None:
            self._allow[dst_id] = {src_id}
        else:
            allowed.add(src_id)

    def admit(self, src_id: FlatId, dst_id: FlatId) -> Tuple[bool, str]:
        """The provider-side drop decision for one packet."""
        if dst_id not in self._registered:
            return False, "destination not registered (default off)"
        allowed = self._allow.get(dst_id)
        if allowed is not None and src_id not in allowed:
            return False, "source not on destination's allow-list"
        return True, "admitted"
