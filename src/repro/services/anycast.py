"""Anycast over ROFL (Section 5.2).

"Servers belonging to group G join with ID (G, x). A host may then route
to (G, y), where y is set arbitrarily. Intermediate routers forward the
packet towards G, treating all suffixes equally. This results in the
packet reaching the first server in G for which the packet encounters a
route.  This style of anycast … requires no additional state or control
message overhead beyond that of joining the network."

Implementation: group members occupy one contiguous arc of the ring, so
routing toward any suffix lands inside the group's neighbourhood; the
sender aims at ``(G, 0)`` (or a caller-chosen suffix for load balancing,
the i3-style knob the paper mentions) and the packet delivers at the
first member at-or-after that point — with an early exit whenever the
packet transits a router hosting *any* member.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.idspace.groups import DEFAULT_GROUP_BITS, GroupId, make_member_id
from repro.idspace.identifier import FlatId
from repro.intra import forwarding, ring
from repro.intra.network import IntraDomainNetwork
from repro.sim.stats import PathResult


class AnycastGroup:
    """One anycast group in an intradomain ROFL network."""

    def __init__(self, net: IntraDomainNetwork, name: str,
                 group_bits: int = DEFAULT_GROUP_BITS):
        self.net = net
        self.name = name
        self.group_bits = group_bits
        self.members: Dict[int, FlatId] = {}  # suffix → member ID
        self._next_suffix = 0

    def _fresh_suffix(self) -> int:
        while self._next_suffix in self.members:
            self._next_suffix += 1
        return self._next_suffix

    def add_server(self, router: str, suffix: Optional[int] = None) -> FlatId:
        """Join one server into the group at ``router``."""
        if suffix is None:
            suffix = self._fresh_suffix()
        if suffix in self.members:
            raise ValueError("suffix {} already in use".format(suffix))
        member_id = make_member_id(self.name, suffix,
                                   bits=self.net.space.bits,
                                   group_bits=self.group_bits)
        ring.join_with_id(self.net, member_id, router,
                          "anycast:{}:{}".format(self.name, suffix))
        self.members[suffix] = member_id
        return member_id

    def remove_server(self, suffix: int) -> None:
        if suffix not in self.members:
            raise KeyError("no member with suffix {}".format(suffix))
        self.net.fail_host("anycast:{}:{}".format(self.name, suffix))
        del self.members[suffix]

    def member_ids(self) -> List[FlatId]:
        return list(self.members.values())

    def _is_member_id(self, flat_id: FlatId) -> bool:
        gid = GroupId(self.name, 0, bits=self.net.space.bits,
                      group_bits=self.group_bits)
        return gid.same_group(flat_id)

    def send(self, src_router: str, suffix: int = 0) -> PathResult:
        """Anycast one packet from ``src_router`` toward ``(G, suffix)``.

        Varying ``suffix`` steers among members (Section 5.1's
        traffic-engineering knob); the packet delivers at the first
        member whose route it encounters.
        """
        if not self.members:
            return PathResult(delivered=False)
        target = make_member_id(self.name, suffix, bits=self.net.space.bits,
                                group_bits=self.group_bits)
        if target not in self.net.vn_index:
            # Aim at the nearest member at-or-after the chosen suffix (the
            # "intermediate routers … may vary r" behaviour collapsed to
            # the sender for a procedural simulation).
            ordered = sorted(self.members.values())
            later = [m for m in ordered if m.value >= target.value]
            target = later[0] if later else ordered[0]
        outcome = forwarding.route(self.net, src_router, target,
                                   mode="data", category="anycast")
        # Early-exit accounting: if the path transited a router hosting a
        # nearer member, delivery would have happened there; find the
        # first such router and truncate.
        if outcome.delivered:
            for index, router_name in enumerate(outcome.path):
                router = self.net.routers[router_name]
                if any(self._is_member_id(rid) for rid in router.vn_table):
                    truncated = outcome.path[:index + 1]
                    served = next(rid for rid in router.vn_table
                                  if self._is_member_id(rid))
                    dst_router = router_name
                    optimal = self.net.paths.hop_dist(src_router, dst_router) or 0
                    return PathResult(delivered=True, path=truncated,
                                      hops=len(truncated) - 1,
                                      optimal_hops=optimal,
                                      pointer_hops=outcome.pointer_hops,
                                      used_cache=outcome.used_cache)
        optimal = 0
        if outcome.delivered and outcome.final_vn is not None:
            optimal = self.net.paths.hop_dist(src_router,
                                              outcome.final_vn.router) or 0
        return PathResult(delivered=outcome.delivered, path=outcome.path,
                          hops=outcome.hops, optimal_hops=optimal,
                          pointer_hops=outcome.pointer_hops,
                          used_cache=outcome.used_cache)

    def nearest_member_distance(self, src_router: str) -> Optional[int]:
        """Oracle: hop distance to the closest member (for stretch tests)."""
        best = None
        for member_id in self.members.values():
            vn = self.net.vn_index.get(member_id)
            if vn is None:
                continue
            dist = self.net.paths.hop_dist(src_router, vn.router)
            if dist is not None and (best is None or dist < best):
                best = dist
        return best
