"""Interdomain anycast (Section 5.2 applied at Internet scale).

The same ``(G, x)`` construction as the intradomain service, over the
Canon hierarchy: replica operators in different ASes join suffixed group
identifiers, and a correspondent routing toward any group ID reaches the
first replica its packet encounters.  Because the members share one
identifier arc, their pointers interlink across ASes through whatever
levels each replica joined — anycast costs "no additional state or
control message overhead beyond that of joining the network".
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.idspace.groups import DEFAULT_GROUP_BITS, GroupId, make_member_id
from repro.idspace.identifier import FlatId
from repro.inter.network import InterDomainNetwork
from repro.inter.policy import JoinStrategy
from repro.sim.stats import PathResult
from repro.topology.hosts import PlannedHost
from repro.idspace.crypto import KeyPair


class InterAnycastGroup:
    """One anycast group spanning multiple ASes."""

    def __init__(self, net: InterDomainNetwork, name: str,
                 group_bits: int = DEFAULT_GROUP_BITS,
                 strategy: JoinStrategy = JoinStrategy.MULTIHOMED):
        self.net = net
        self.name = name
        self.group_bits = group_bits
        self.strategy = strategy
        self.members: Dict[int, FlatId] = {}
        self._next_suffix = 0

    def _fresh_suffix(self) -> int:
        while self._next_suffix in self.members:
            self._next_suffix += 1
        return self._next_suffix

    def add_replica(self, asn: Hashable,
                    suffix: Optional[int] = None) -> FlatId:
        """Join one replica of the service inside AS ``asn``."""
        if suffix is None:
            suffix = self._fresh_suffix()
        if suffix in self.members:
            raise ValueError("suffix {} already in use".format(suffix))
        member_id = make_member_id(self.name, suffix,
                                   bits=self.net.space.bits,
                                   group_bits=self.group_bits)
        host = PlannedHost(
            name="anycast:{}:{}".format(self.name, suffix),
            attach_at=asn,
            key_pair=KeyPair.generate(
                "anycast:{}:{}".format(self.name, suffix).encode("utf-8"),
                self.net.authority))
        self.net.join_host(host, strategy=self.strategy,
                           flat_id_override=member_id)
        self.members[suffix] = member_id
        return member_id

    def member_ases(self) -> List[Hashable]:
        return [self.net.id_owner_index[m].home_as
                for m in self.members.values()
                if m in self.net.id_owner_index]

    def _is_member_id(self, flat_id: FlatId) -> bool:
        gid = GroupId(self.name, 0, bits=self.net.space.bits,
                      group_bits=self.group_bits)
        return gid.same_group(flat_id)

    def send(self, src_as: Hashable, suffix: int = 0) -> PathResult:
        """Anycast one packet toward ``(G, suffix)`` from ``src_as``."""
        if not self.members:
            return PathResult(delivered=False)
        target = make_member_id(self.name, suffix, bits=self.net.space.bits,
                                group_bits=self.group_bits)
        if target not in self.net.id_owner_index:
            ordered = sorted(self.members.values())
            later = [m for m in ordered if m.value >= target.value]
            target = later[0] if later else ordered[0]
        result = self.net.send_to_id(src_as, target)
        if not result.delivered:
            return result
        # Early exit: delivery happens at the first member-hosting AS the
        # packet transits.
        for index, asn in enumerate(result.path):
            node = self.net.ases[asn]
            if any(self._is_member_id(hid) for hid in node.hosted):
                truncated = result.path[:index + 1]
                optimal = self.net.bgp.policy_distance(src_as, asn) or 0
                return PathResult(delivered=True, path=truncated,
                                  hops=len(truncated) - 1,
                                  optimal_hops=optimal,
                                  pointer_hops=result.pointer_hops,
                                  used_cache=result.used_cache)
        return result

    def nearest_replica_distance(self, src_as: Hashable) -> Optional[int]:
        """Oracle: policy distance to the closest replica AS."""
        best = None
        for asn in self.member_ases():
            dist = self.net.bgp.policy_distance(src_as, asn)
            if dist is not None and (best is None or dist < best):
                best = dist
        return best
