"""Sybil damage control (paper Section 2.1).

"A more subtle attack is the Sybil attack, where-in a compromised router
may concoct identifiers to gain a larger footprint in the system.
Damage control against such attacks may be achieved by auditing
mechanisms within an AS that limit the number of IDs hosted by a
router."

Two pieces:

* :class:`QuotaPolicy` — the per-router residency limit an AS operator
  configures, optionally enforced at join time (the gate a well-behaved
  AS applies before spawning a virtual node);
* :class:`SybilAuditor` — the sweep that inspects actual router state
  and reports violations (catching routers that *mis*behave and bypass
  the gate), plus a footprint report showing how much of the identifier
  ring each router fronts for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.intra.network import IntraDomainNetwork


class QuotaExceeded(Exception):
    """A join would push a router past its residency quota."""


@dataclass
class QuotaPolicy:
    """Per-router identifier residency limits."""

    default_limit: int = 64
    per_router: Dict[str, int] = field(default_factory=dict)

    def limit_for(self, router: str) -> int:
        return self.per_router.get(router, self.default_limit)

    def admit_join(self, net: "IntraDomainNetwork", router: str) -> None:
        """The join-time gate: raise if the router is already at quota.

        Counts only host-resident IDs (the router's own default virtual
        node is not a hosted identifier)."""
        hosted = sum(1 for vn in net.routers[router].vn_table.values()
                     if not vn.is_default)
        if hosted >= self.limit_for(router):
            raise QuotaExceeded(
                "router {} already hosts {} IDs (limit {})".format(
                    router, hosted, self.limit_for(router)))


@dataclass
class AuditFinding:
    router: str
    hosted: int
    limit: int

    @property
    def excess(self) -> int:
        return self.hosted - self.limit


class SybilAuditor:
    """AS-internal auditing of per-router identifier footprints."""

    def __init__(self, net: "IntraDomainNetwork",
                 policy: Optional[QuotaPolicy] = None):
        self.net = net
        self.policy = policy or QuotaPolicy()

    def hosted_counts(self) -> Dict[str, int]:
        return {name: sum(1 for vn in router.vn_table.values()
                          if not vn.is_default)
                for name, router in self.net.routers.items()}

    def audit(self) -> List[AuditFinding]:
        """Routers exceeding their quota, worst first."""
        findings = [
            AuditFinding(router=name, hosted=count,
                         limit=self.policy.limit_for(name))
            for name, count in self.hosted_counts().items()
            if count > self.policy.limit_for(name)
        ]
        findings.sort(key=lambda f: f.excess, reverse=True)
        return findings

    def footprint_report(self) -> Dict[str, float]:
        """Fraction of all hosted identifiers fronted by each router —
        the "footprint" a Sybil attacker tries to inflate."""
        counts = self.hosted_counts()
        total = sum(counts.values())
        if total == 0:
            return {name: 0.0 for name in counts}
        return {name: count / total for name, count in counts.items()}

    def evict_excess(self) -> int:
        """Remediation: force IDs beyond each router's quota to re-home
        (deterministically, highest IDs first).  Returns how many were
        moved."""
        from repro.intra import mobility
        moved = 0
        for finding in self.audit():
            router = self.net.routers[finding.router]
            hosted = sorted((vn for vn in router.vn_table.values()
                             if not vn.is_default and vn.host_name),
                            key=lambda vn: vn.id, reverse=True)
            for vn in hosted[:finding.excess]:
                target = self.net.failover_router(finding.router,
                                                  vn.host_name)
                if target is None or target == finding.router:
                    continue
                mobility.move_host(self.net, vn.host_name, target)
                moved += 1
        return moved
