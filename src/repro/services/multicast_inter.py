"""Interdomain multicast (Section 5.2 at Internet scale).

The same path-painting construction as the intradomain service, at AS
granularity: a joining member anycasts toward a nearby member; each AS
the join message crosses paints a back-pointer for the group; the result
is "a tree composed of bidirectional links" over policy-valid AS paths.
Data floods along painted links only, so a multicast to N member ASes
costs one copy per tree edge rather than N unicast AS paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.inter.network import InterDomainNetwork


@dataclass
class InterDeliveryReport:
    messages: int
    receivers: Set[str] = field(default_factory=set)
    ases_touched: Set[Hashable] = field(default_factory=set)


class InterMulticastGroup:
    """One multicast group whose members live in different ASes."""

    def __init__(self, net: InterDomainNetwork, name: str):
        self.net = net
        self.name = name
        self.tree_links: Dict[Hashable, Set[Hashable]] = {}
        self.local_members: Dict[Hashable, Set[str]] = {}
        self.members: Dict[str, Hashable] = {}

    def on_tree(self, asn: Hashable) -> bool:
        return asn in self.tree_links or asn in self.local_members

    def join(self, member_name: str, asn: Hashable) -> int:
        """Join a member in AS ``asn``; returns the painting cost."""
        if member_name in self.members:
            raise ValueError("member {!r} already joined".format(member_name))
        if not self.net.as_is_up(asn):
            raise ValueError("AS {} is down".format(asn))
        cost = 0
        if self.members and not self.on_tree(asn):
            cost = self._paint_branch(asn)
        self.tree_links.setdefault(asn, set())
        self.local_members.setdefault(asn, set()).add(member_name)
        self.members[member_name] = asn
        return cost

    def _paint_branch(self, new_as: Hashable) -> int:
        """Anycast toward the nearest on-tree AS over a policy path,
        painting back-pointers; stops at the first tree intersection."""
        tree_ases = [a for a in (set(self.tree_links) | set(self.local_members))
                     if self.net.as_is_up(a)]
        best_path: Optional[Tuple[Hashable, ...]] = None
        for target in sorted(tree_ases, key=str):
            path = self.net.policy.policy_path(new_as, target)
            if path is not None and (best_path is None
                                     or len(path) < len(best_path)):
                best_path = path
        if best_path is None:
            raise RuntimeError("multicast tree unreachable from "
                               + str(new_as))
        existing = set(self.tree_links) | set(self.local_members)
        painted = 0
        for a, b in zip(best_path, best_path[1:]):
            self.tree_links.setdefault(a, set()).add(b)
            self.tree_links.setdefault(b, set()).add(a)
            painted += 1
            if b in existing:
                break
        self.net.stats.charge_hops(painted, "multicast-join")
        return painted

    def leave(self, member_name: str) -> None:
        asn = self.members.pop(member_name, None)
        if asn is None:
            raise KeyError("unknown member {!r}".format(member_name))
        self.local_members.get(asn, set()).discard(member_name)
        self._prune_leaves()

    def _prune_leaves(self) -> None:
        changed = True
        while changed:
            changed = False
            for asn in list(self.tree_links):
                links = self.tree_links[asn]
                if not self.local_members.get(asn) and len(links) <= 1:
                    for nbr in links:
                        self.tree_links[nbr].discard(asn)
                    del self.tree_links[asn]
                    self.local_members.pop(asn, None)
                    changed = True

    def multicast(self, from_member: str) -> InterDeliveryReport:
        """Flood one packet along the painted tree."""
        if from_member not in self.members:
            raise KeyError("unknown member {!r}".format(from_member))
        origin = self.members[from_member]
        report = InterDeliveryReport(messages=0)
        frontier: List[Tuple[Hashable, Optional[Hashable]]] = [(origin, None)]
        seen: Set[Hashable] = set()
        while frontier:
            asn, came_from = frontier.pop()
            if asn in seen:
                continue
            seen.add(asn)
            report.ases_touched.add(asn)
            report.receivers |= self.local_members.get(asn, set())
            for nbr in self.tree_links.get(asn, ()):
                if nbr == came_from or nbr in seen:
                    continue
                if not self.net.as_is_up(nbr):
                    continue
                report.messages += 1
                frontier.append((nbr, asn))
        self.net.stats.charge_hops(report.messages, "multicast")
        return report

    def tree_edge_count(self) -> int:
        return sum(len(v) for v in self.tree_links.values()) // 2

    def unicast_equivalent_cost(self, from_member: str) -> int:
        """What delivering by N unicasts would cost (the savings base)."""
        origin = self.members[from_member]
        total = 0
        for asn in set(self.members.values()):
            if asn == origin:
                continue
            dist = self.net.bgp.policy_distance(origin, asn)
            total += dist or 0
        return total
