"""Multicast over ROFL (Section 5.2).

"A host wishing to join the multicast group G sends an anycast request
towards a nearby member of G. At each hop, the message adds a pointer
corresponding to the group pointing back along the reverse path, in a
manner similar to path-painting. If the message intersects a router that
is already part of the group, the packet does not traverse any further.
The end result is a tree composed of bidirectional links. … Routers
forward a copy of P out all outgoing links for which there are pointers,
excluding the link on which P was received."

The tree is router-level state: each on-tree router knows its painted
neighbour links and its locally attached group members.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.idspace.groups import DEFAULT_GROUP_BITS, make_member_id
from repro.intra import ring
from repro.intra.network import IntraDomainNetwork


@dataclass
class DeliveryReport:
    """Outcome of one multicast transmission."""

    messages: int
    receivers: Set[str] = field(default_factory=set)   # member names reached
    routers_touched: Set[str] = field(default_factory=set)


class MulticastGroup:
    """One multicast group: painted tree plus member bookkeeping."""

    def __init__(self, net: IntraDomainNetwork, name: str,
                 group_bits: int = DEFAULT_GROUP_BITS):
        self.net = net
        self.name = name
        self.group_bits = group_bits
        #: Painted bidirectional tree links per router.
        self.tree_links: Dict[str, Set[str]] = {}
        #: Locally attached members per router: router → set of member names.
        self.local_members: Dict[str, Set[str]] = {}
        self.members: Dict[str, str] = {}  # member name → router
        self._anchor_joined = False

    # -- membership -----------------------------------------------------------------

    def on_tree(self, router: str) -> bool:
        return router in self.tree_links or router in self.local_members

    def join(self, member_name: str, router: str) -> int:
        """Join ``member_name`` at ``router``; returns the message cost of
        painting the branch."""
        if member_name in self.members:
            raise ValueError("member {!r} already joined".format(member_name))
        cost = 0
        if not self._anchor_joined:
            # The first member anchors the group on the ring under (G, 0)
            # so later anycast joins have something to route toward.
            anchor = make_member_id(self.name, 0, bits=self.net.space.bits,
                                    group_bits=self.group_bits)
            receipt = ring.join_with_id(self.net, anchor, router,
                                        "mcast-anchor:" + self.name)
            cost += receipt.messages
            self._anchor_joined = True
            self._paint_local(router)
        else:
            cost += self._paint_branch(router)
        self.members[member_name] = router
        self.local_members.setdefault(router, set()).add(member_name)
        return cost

    def _paint_local(self, router: str) -> None:
        self.local_members.setdefault(router, set())
        self.tree_links.setdefault(router, set())

    def _paint_branch(self, new_router: str) -> int:
        """Anycast toward the nearest on-tree router, painting back-
        pointers; stops at the first on-tree intersection."""
        if self.on_tree(new_router):
            self._paint_local(new_router)
            return 0
        tree_routers = [r for r in set(self.tree_links) | set(self.local_members)
                        if self.net.lsmap.is_router_up(r)]
        nearest = self.net.paths.nearest(new_router, tree_routers)
        if nearest is None:
            raise RuntimeError("multicast tree unreachable from " + new_router)
        path = self.net.paths.hop_path(new_router, nearest)
        existing = set(self.tree_links) | set(self.local_members)
        painted = 0
        for a, b in zip(path, path[1:]):
            self.tree_links.setdefault(a, set()).add(b)
            self.tree_links.setdefault(b, set()).add(a)
            painted += 1
            if b in existing:
                # "If the message intersects a router that is already part
                # of the group, the packet does not traverse any further."
                break
        self.net.stats.charge_hops(painted, "multicast-join")
        self._paint_local(new_router)
        return painted

    def leave(self, member_name: str) -> None:
        """Remove a member; prune now-useless leaf branches."""
        router = self.members.pop(member_name, None)
        if router is None:
            raise KeyError("unknown member {!r}".format(member_name))
        locals_here = self.local_members.get(router, set())
        locals_here.discard(member_name)
        self._prune_leaves()

    def _prune_leaves(self) -> None:
        changed = True
        while changed:
            changed = False
            for router in list(self.tree_links):
                links = self.tree_links[router]
                has_members = bool(self.local_members.get(router))
                if not has_members and len(links) <= 1:
                    for nbr in links:
                        self.tree_links[nbr].discard(router)
                    del self.tree_links[router]
                    self.local_members.pop(router, None)
                    changed = True

    # -- data plane ---------------------------------------------------------------------

    def multicast(self, from_member: str) -> DeliveryReport:
        """Flood one packet along the tree from a member's router."""
        if from_member not in self.members:
            raise KeyError("unknown member {!r}".format(from_member))
        origin = self.members[from_member]
        report = DeliveryReport(messages=0)
        # BFS over painted links, never re-crossing the arrival link.
        frontier: List[Tuple[str, Optional[str]]] = [(origin, None)]
        seen: Set[str] = set()
        while frontier:
            router, came_from = frontier.pop()
            if router in seen:
                continue
            seen.add(router)
            report.routers_touched.add(router)
            for member in self.local_members.get(router, ()):  # delivery
                report.receivers.add(member)
            for nbr in self.tree_links.get(router, ()):  # fan-out
                if nbr == came_from or nbr in seen:
                    continue
                if not self.net.lsmap.is_link_up(router, nbr):
                    continue
                report.messages += 1
                frontier.append((nbr, router))
        self.net.stats.charge_hops(report.messages, "multicast")
        return report

    def tree_edge_count(self) -> int:
        return sum(len(v) for v in self.tree_links.values()) // 2
