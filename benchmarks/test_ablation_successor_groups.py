"""Ablation — successor-group size (DESIGN.md §4).

The paper: "to increase resilience to ID failure, nodes can hold
multiple successors … successor-groups."  This bench quantifies the
trade: bigger groups cost more per-router state but make host-failure
repair cheaper (the predecessor usually repairs locally from its group
instead of issuing extra lookups)."""

from repro.intra.network import IntraDomainNetwork
from repro.topology.isp import synthetic_isp
from repro.util.rng import derive_rng

GROUP_SIZES = (1, 2, 4, 8)


def run_ablation():
    rows = []
    for group in GROUP_SIZES:
        topo = synthetic_isp(n_routers=67, seed=0, name="AS3967")
        net = IntraDomainNetwork(topo, seed=0, successor_group_size=group)
        net.join_random_hosts(400)
        state = sum(net.memory_entries_per_router(include_cache=False)
                    .values())
        rng = derive_rng(0, "ablation-successor-groups", group)
        costs = [net.fail_host(rng.choice(sorted(net.hosts)))
                 for _ in range(80)]
        net.check_ring()
        delivered = sum(net.send(*net.random_host_pair()).delivered
                        for _ in range(100))
        rows.append({"group": group, "state_entries": state,
                     "avg_repair": sum(costs) / len(costs),
                     "delivery": delivered / 100})
    return rows


def test_ablation_successor_groups(run_once):
    rows = run_once(run_ablation)
    print("\nAblation — successor-group size")
    print("{:>6} {:>14} {:>12} {:>10}".format(
        "group", "state entries", "avg repair", "delivery"))
    for row in rows:
        print("{:>6} {:>14} {:>12.1f} {:>9.0%}".format(
            row["group"], row["state_entries"], row["avg_repair"],
            row["delivery"]))
    # State grows with group size; correctness never degrades.
    states = [row["state_entries"] for row in rows]
    assert states == sorted(states)
    assert all(row["delivery"] == 1.0 for row in rows)
