#!/usr/bin/env python
"""Scaling sweep past 10k hosts → ``BENCH_scaling.json``.

Runs the interdomain and intradomain simulators over growing host
populations (default top end: 10,000 interdomain hosts), recording for
each population the join and send throughput (ops/sec), wall-clock
seconds, peak RSS, and the full hot-path perf-counter dump
(:mod:`repro.util.perf`).  The JSON this writes is the repo's
machine-checkable performance trajectory: CI runs ``--quick`` and fails
if the required keys are missing, and successive PRs can diff the
full-scale numbers.

Usage::

    PYTHONPATH=src python benchmarks/perf_trajectory.py          # full sweep
    PYTHONPATH=src python benchmarks/perf_trajectory.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import resource
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.inter.network import InterDomainNetwork          # noqa: E402
from repro.inter.policy import JoinStrategy                 # noqa: E402
from repro.intra.network import IntraDomainNetwork          # noqa: E402
from repro.topology.asgraph import synthetic_as_graph       # noqa: E402
from repro.topology.isp import synthetic_isp                # noqa: E402
from repro.util import perf                                 # noqa: E402

INTER_POPULATIONS = (500, 1000, 2500, 5000, 10000)
INTRA_POPULATIONS = (500, 1000, 2500, 5000, 10000)
QUICK_POPULATIONS = (100, 300)
#: Opt-in (``--extended``) top end for the interdomain sweep.
EXTENDED_INTER_POPULATIONS = INTER_POPULATIONS + (25000,)

#: Scaling-cliff gate: sends/sec and joins/sec at the largest population
#: must stay at least this fraction of the smallest population's rate.
CLIFF_FLOOR = 0.6

#: (scenario, arrival-rate multiplier) points for the workload sweep —
#: the same builtin churn scenario driven harder and harder.
WORKLOAD_SWEEP = (1.0, 2.0, 4.0, 8.0)
QUICK_WORKLOAD_SWEEP = (1.0, 2.0)

#: Keys every BENCH_scaling.json must carry (checked by CI and by this
#: script itself after writing).
REQUIRED_TOP_KEYS = ("generated_unix", "quick", "peak_rss_mb",
                     "interdomain", "intradomain", "workload")
REQUIRED_ROW_KEYS = ("hosts", "join_seconds", "joins_per_sec",
                     "send_seconds", "sends_per_sec", "perf")
REQUIRED_WORKLOAD_ROW_KEYS = ("scenario", "rate_multiplier", "events_run",
                              "events_per_sec", "wall_seconds",
                              "delivery_rate", "min_window_delivery_rate",
                              "final_live_hosts")


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB (linux: KiB units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def peak_rss_with_children_mb() -> float:
    """Peak RSS across this process and its exited children, in MiB.

    Sharded rows keep the replicas in worker processes, so the
    coordinator's own RSS says nothing about simulation memory; the
    children's high-water mark (available once they have exited) does.
    """
    child = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024.0
    return max(peak_rss_mb(), child)


def _throughput_row(n_hosts: int, join_fn, send_fn, n_sends: int,
                    settle_fn=None, warm_fn=None) -> dict:
    """Time a join phase then a send phase and return one bench row.

    ``settle_fn`` runs *inside* the join timing — deferred index
    maintenance caused by the joins is charged to the join phase, not to
    the first packets sent afterwards.  ``warm_fn`` runs *between* the
    phases, outside both timings: it is for measurement-oracle work (the
    BGP baseline tables behind the stretch denominator) that belongs to
    neither protocol phase; its cost still shows up in the perf dump
    under ``bench.oracle_warm``.
    """
    perf.reset()
    # Each phase starts garbage-free: a major collection of the previous
    # phase's garbage landing inside the short send window would distort
    # the throughput numbers.
    gc.collect()
    t0 = time.perf_counter()
    join_fn(n_hosts)
    if settle_fn is not None:
        settle_fn()
    join_seconds = time.perf_counter() - t0
    if warm_fn is not None:
        with perf.timed("bench.oracle_warm"):
            warm_fn()
    gc.collect()
    t0 = time.perf_counter()
    send_fn(n_sends)
    send_seconds = time.perf_counter() - t0
    return {
        "hosts": n_hosts,
        "join_seconds": round(join_seconds, 3),
        "joins_per_sec": round(n_hosts / join_seconds, 1),
        "send_seconds": round(send_seconds, 3),
        "sends_per_sec": round(n_sends / send_seconds, 1),
        "peak_rss_mb": round(peak_rss_mb(), 1),
        "perf": perf.snapshot(),
    }


def _snap_path(snapshot_dir, section: str, n_hosts: int, seed: int):
    if snapshot_dir is None:
        return None
    return os.path.join(snapshot_dir,
                        "{}-{}h-s{}.snap".format(section, n_hosts, seed))


def _finish_snapshot_row(row: dict, net, snap_path, warm: bool,
                         section: str, construct_seconds: float = 0.0
                         ) -> None:
    """Cold runs save a snapshot (stamping their build time into the
    header meta); warm runs annotate the row with the load-vs-build
    speedup read back from that meta.

    ``build_seconds`` is everything a warm start avoids: topology +
    network construction (outside the join timing) plus the join phase.
    """
    if snap_path is None:
        return
    from repro import snapshot
    if not warm:
        build = round(construct_seconds + row["join_seconds"], 3)
        snapshot.save(net, snap_path,
                      meta={"build_seconds": build,
                            "section": section, "hosts": row["hosts"]})
        row["warm_start"] = False
        return
    cold = snapshot.describe(snap_path)["meta"].get("build_seconds")
    row["warm_start"] = True
    row["snapshot_load_seconds"] = row["join_seconds"]
    row["cold_build_seconds"] = cold
    if cold and row["join_seconds"]:
        row["snapshot_speedup"] = round(cold / row["join_seconds"], 2)


def _warm_join_fn(holder: dict, snap_path: str):
    """A join-phase stand-in that loads the snapshot instead of building:
    the row's join timing becomes the warm-start cost, and the load is
    also visible in the perf dump as ``bench.snapshot_load``."""
    def load(_n_hosts):
        from repro import snapshot
        with perf.timed("bench.snapshot_load"):
            holder["net"] = snapshot.load(snap_path)
    return load


def sweep_inter(populations, n_ases: int = 100, n_sends: int = 2000,
                seed: int = 0, snapshot_dir=None) -> list:
    rows = []
    for n_hosts in populations:
        snap_path = _snap_path(snapshot_dir, "inter", n_hosts, seed)
        warm = snap_path is not None and os.path.exists(snap_path)
        holder = {}
        construct_seconds = 0.0
        if warm:
            join_fn, settle_fn = _warm_join_fn(holder, snap_path), None
        else:
            t0 = time.perf_counter()
            asg = synthetic_as_graph(n_ases=n_ases, seed=seed)
            holder["net"] = InterDomainNetwork(
                asg, n_fingers=8, seed=seed,
                strategy=JoinStrategy.MULTIHOMED)
            construct_seconds = time.perf_counter() - t0
            join_fn = holder["net"].join_random_hosts
            settle_fn = holder["net"].flush_indexes

        def send_many(count):
            net = holder["net"]
            delivered = 0
            for _ in range(count):
                a, b = net.random_host_pair()
                delivered += net.send(a, b).delivered
            if delivered < count * 0.99:
                raise AssertionError(
                    "interdomain delivery degraded: {}/{}".format(
                        delivered, count))

        row = _throughput_row(n_hosts, join_fn, send_many, n_sends,
                              settle_fn=settle_fn,
                              warm_fn=lambda: holder["net"].bgp.warm())
        _finish_snapshot_row(row, holder["net"], snap_path, warm, "inter",
                             construct_seconds)
        rows.append(row)
        print("  inter {:>6} hosts: {:>7.1f} joins/s  {:>7.1f} sends/s  "
              "rss {:.0f} MiB{}".format(
                  n_hosts, row["joins_per_sec"], row["sends_per_sec"],
                  row["peak_rss_mb"],
                  "  [warm {:.2f}s = {:.1f}x]".format(
                      row["snapshot_load_seconds"],
                      row.get("snapshot_speedup", 0)) if warm else ""))
    return rows


def sweep_inter_sharded(populations, n_shards: int, n_ases: int = 100,
                        n_sends: int = 2000, seed: int = 0) -> list:
    """The interdomain sweep through the sharded multiprocess engine.

    Each population runs twice: once at one shard (the serial baseline)
    and once at ``n_shards``.  The two runs must produce *identical*
    delivery metrics and an identical snapshot ``state_hash`` — that
    equality is this sweep's correctness gate — and the row records the
    wall-clock join-phase speedup plus the merged per-shard perf dump.

    Every worker holds a full replica and repeats the (cheap) installs,
    so wall-clock speedup needs roughly one free core per shard: the
    expensive owner-only work (honest lookup walks + finger selection)
    is what parallelises.  The row records ``cpus`` alongside
    ``shard_join_speedup`` so a sub-1x number on a single-CPU container
    reads as what it is — no parallel hardware — while the determinism
    equality is checked regardless.
    """
    from repro.sim.shard import ShardCoordinator

    recipe = {"n_ases": n_ases, "seed": seed, "n_fingers": 8,
              "strategy": "multihomed", "cache_entries": 0}

    def timed_run(shards):
        with ShardCoordinator(recipe, shards) as sim:
            sim.perf_reset()
            gc.collect()
            t0 = time.perf_counter()
            sim.join_hosts(row_hosts)
            sim.flush_indexes()
            join_seconds = time.perf_counter() - t0
            sim.warm_oracle()
            gc.collect()
            t0 = time.perf_counter()
            metrics = sim.run_sends(n_sends)
            send_seconds = time.perf_counter() - t0
            hashes = sim.state_hash(all_replicas=True)
            merged = sim.merged_perf()
        if len(set(hashes)) != 1:
            raise AssertionError(
                "{}-shard replicas diverged: {}".format(shards, hashes))
        if metrics["delivered"] < n_sends * 0.99:
            raise AssertionError(
                "interdomain delivery degraded at {} shards: {}/{}".format(
                    shards, metrics["delivered"], n_sends))
        return join_seconds, send_seconds, metrics, hashes[0], merged

    rows = []
    for row_hosts in populations:
        perf.reset()
        base_join, _, base_metrics, base_hash, _ = timed_run(1)
        join_seconds, send_seconds, metrics, digest, merged = timed_run(
            n_shards)
        if metrics != base_metrics:
            raise AssertionError(
                "sharded metrics diverged from 1-shard baseline: "
                "{} != {}".format(metrics, base_metrics))
        if digest != base_hash:
            raise AssertionError(
                "sharded state hash diverged from 1-shard baseline: "
                "{} != {}".format(digest, base_hash))
        merged.merge(perf.PERF)  # coordinator-side phase timers
        row = {
            "hosts": row_hosts,
            "join_seconds": round(join_seconds, 3),
            "joins_per_sec": round(row_hosts / join_seconds, 1),
            "send_seconds": round(send_seconds, 3),
            "sends_per_sec": round(n_sends / send_seconds, 1),
            "peak_rss_mb": round(peak_rss_with_children_mb(), 1),
            "perf": merged.snapshot(),
            "shards": n_shards,
            "cpus": len(os.sched_getaffinity(0)),
            "state_hash": digest,
            "shard_baseline_join_seconds": round(base_join, 3),
            "shard_join_speedup": round(base_join / join_seconds, 2),
        }
        rows.append(row)
        print("  inter {:>6} hosts x{} shards: {:>7.1f} joins/s  "
              "{:>7.1f} sends/s  join speedup {:.2f}x on {} cpu(s)  "
              "hash ok".format(
                  row_hosts, n_shards, row["joins_per_sec"],
                  row["sends_per_sec"], row["shard_join_speedup"],
                  row["cpus"]))
    return rows


def sweep_intra(populations, n_routers: int = 67, n_sends: int = 2000,
                seed: int = 0, snapshot_dir=None) -> list:
    rows = []
    for n_hosts in populations:
        snap_path = _snap_path(snapshot_dir, "intra", n_hosts, seed)
        warm = snap_path is not None and os.path.exists(snap_path)
        holder = {}
        construct_seconds = 0.0
        if warm:
            join_fn, settle_fn = _warm_join_fn(holder, snap_path), None
        else:
            t0 = time.perf_counter()
            topo = synthetic_isp(n_routers=n_routers, seed=seed,
                                 name="AS3967")
            holder["net"] = IntraDomainNetwork(topo, seed=seed)
            construct_seconds = time.perf_counter() - t0
            join_fn = holder["net"].join_random_hosts
            settle_fn = holder["net"].flush_indexes

        def send_many(count):
            net = holder["net"]
            delivered = 0
            for _ in range(count):
                a, b = net.random_host_pair()
                delivered += net.send(a, b).delivered
            if delivered < count * 0.99:
                raise AssertionError(
                    "intradomain delivery degraded: {}/{}".format(
                        delivered, count))

        row = _throughput_row(n_hosts, join_fn, send_many, n_sends,
                              settle_fn=settle_fn)
        _finish_snapshot_row(row, holder["net"], snap_path, warm, "intra",
                             construct_seconds)
        rows.append(row)
        print("  intra {:>6} hosts: {:>7.1f} joins/s  {:>7.1f} sends/s  "
              "rss {:.0f} MiB{}".format(
                  n_hosts, row["joins_per_sec"], row["sends_per_sec"],
                  row["peak_rss_mb"],
                  "  [warm {:.2f}s = {:.1f}x]".format(
                      row["snapshot_load_seconds"],
                      row.get("snapshot_speedup", 0)) if warm else ""))
    return rows


def sweep_workload(multipliers, scenario_name: str = "steady-churn",
                   seed: int = 0) -> list:
    """Drive the builtin churn scenario at increasing arrival rates and
    record event throughput plus steady-churn delivery rate."""
    from repro.workload import builtin_scenario, run_scenario

    rows = []
    for mult in multipliers:
        scenario = builtin_scenario(scenario_name, seed=seed)
        for phase in scenario.phases:
            if phase.churn is not None:
                phase.churn.arrival_rate *= mult
            if phase.traffic is not None:
                phase.traffic.rate *= mult
        result = run_scenario(scenario)
        summary = result.summary
        row = {
            "scenario": scenario_name,
            "rate_multiplier": mult,
            "events_run": result.totals["events_run"],
            "events_per_sec": round(result.events_per_sec, 1),
            "wall_seconds": round(result.wall_seconds, 3),
            "delivery_rate": summary["delivery_rate"],
            "min_window_delivery_rate": summary["min_window_delivery_rate"],
            "joins": result.totals["joins"],
            "departures": result.totals["departures"],
            "final_live_hosts": result.totals["final_live_hosts"],
            "peak_rss_mb": round(peak_rss_mb(), 1),
        }
        rows.append(row)
        print("  workload x{:<4} {:>7} events: {:>8.1f} events/s  "
              "delivery {}  hosts {}".format(
                  mult, row["events_run"], row["events_per_sec"],
                  "-" if row["delivery_rate"] is None
                  else "{:.3f}".format(row["delivery_rate"]),
                  row["final_live_hosts"]))
    return rows


def check_scaling_cliff(rows: list, section: str,
                        floor: float = CLIFF_FLOOR,
                        metrics=("joins_per_sec", "sends_per_sec")) -> None:
    """Fail unless throughput stays roughly flat across the sweep.

    Compares the largest population's rate for each metric against the
    smallest population's; a ratio below ``floor`` is the 10k-host
    cliff this harness exists to keep dead.  Raises ``ValueError``.

    Callers gate intradomain *sends only*: intradomain join lookups pay
    an intrinsically growing pointer-hop count (greedy routing over
    successor pointers with a bounded pointer cache — the Fig 6a
    stretch-vs-cache-size tradeoff), so join throughput there declines
    with ring size by protocol design, not by implementation regression.
    """
    if len(rows) < 2:
        return
    first, last = rows[0], rows[-1]
    for metric in metrics:
        if not first[metric]:
            continue
        ratio = last[metric] / first[metric]
        if ratio < floor:
            raise ValueError(
                "scaling cliff in {}: {} fell to {:.2f}x between {} and "
                "{} hosts (floor {:.2f}x)".format(
                    section, metric, ratio, first["hosts"], last["hosts"],
                    floor))
        print("  cliff check {} {}: {:.2f}x of the {}-host rate (floor "
              "{:.2f}x)".format(section, metric, ratio, first["hosts"],
                                floor))


def write_bench_metrics(path: str, inter_rows: list, intra_rows: list,
                        workload_rows: list) -> int:
    """Re-emit the sweep as a window-metrics JSONL stream (one window
    per bench row) through :class:`repro.obs.metrics.MetricsExporter`,
    so ``repro report --metrics`` can render the trajectory alongside a
    live run's stream.  Each row's perf dump is folded cumulatively into
    a scratch registry; the exporter's per-window deltas then recover
    exactly that row's counters and timer activity.  Wall-clock fields
    stay in (``deterministic=False``) — bench rows are wall-clock
    measurements by nature."""
    from repro.obs.metrics import MetricsExporter
    from repro.util.perf import PerfRegistry

    registry = PerfRegistry()
    t = 0
    with MetricsExporter(registry, path, deterministic=False,
                         source="perf_trajectory") as exporter:
        for section, rows in (("interdomain", inter_rows),
                              ("intradomain", intra_rows)):
            for row in rows:
                snap = row.get("perf", {})
                for name, value in snap.get("counters", {}).items():
                    registry.counter(name, value)
                for name, timer in snap.get("timers", {}).items():
                    cell = registry.timers.setdefault(name, [0, 0.0, 0.0])
                    cell[0] += timer["calls"]
                    cell[1] += timer["seconds"]
                    cell[2] = max(cell[2], timer.get("max", 0.0))
                for name, value in snap.get("gauges", {}).items():
                    registry.gauge(name, value)
                t += 1
                exporter.emit_window(float(t), extra={
                    "section": section,
                    "hosts": row["hosts"],
                    "joins_per_sec": row["joins_per_sec"],
                    "sends_per_sec": row["sends_per_sec"],
                })
        for row in workload_rows:
            t += 1
            exporter.emit_window(float(t), extra={
                "section": "workload",
                "scenario": row["scenario"],
                "rate_multiplier": row["rate_multiplier"],
                "events_per_sec": row["events_per_sec"],
            })
        return exporter.windows_emitted


def validate(data: dict) -> None:
    """Raise ``ValueError`` unless ``data`` has the required shape."""
    for key in REQUIRED_TOP_KEYS:
        if key not in data:
            raise ValueError("BENCH_scaling.json missing key {!r}".format(key))
    for section in ("interdomain", "intradomain"):
        rows = data[section]
        if not rows:
            raise ValueError("section {!r} is empty".format(section))
        for row in rows:
            for key in REQUIRED_ROW_KEYS:
                if key not in row:
                    raise ValueError("row in {!r} missing key {!r}".format(
                        section, key))
    if not data["workload"]:
        raise ValueError("section 'workload' is empty")
    for row in data["workload"]:
        for key in REQUIRED_WORKLOAD_ROW_KEYS:
            if key not in row:
                raise ValueError(
                    "row in 'workload' missing key {!r}".format(key))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small populations for CI smoke runs")
    parser.add_argument("--extended", action="store_true",
                        help="opt-in 25k-host interdomain sweep")
    parser.add_argument("--cliff-floor", type=float, default=CLIFF_FLOOR,
                        help="minimum largest/smallest throughput ratio "
                             "(0 disables the gate; default %(default)s)")
    parser.add_argument("--out", default=None,
                        help="output path (default: repo-root "
                             "BENCH_scaling.json)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="also emit the sweep as a window-metrics "
                             "JSONL stream (one window per bench row, "
                             "renderable by 'repro report --metrics')")
    parser.add_argument("--snapshot-dir", default=None, metavar="DIR",
                        help="warm-start cache: first run saves a "
                             "snapshot per population, later runs load "
                             "it instead of rebuilding and record the "
                             "speedup in each row")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="run the interdomain sweep through the "
                             "sharded multiprocess engine with N workers; "
                             "each row also runs a 1-shard baseline and "
                             "asserts identical metrics and state hash")
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.shards > 1 and args.snapshot_dir is not None:
        parser.error("--shards cannot be combined with --snapshot-dir "
                     "(replicas rebuild from seed; there is no single "
                     "resident network to warm-start)")
    if args.snapshot_dir is not None:
        os.makedirs(args.snapshot_dir, exist_ok=True)

    inter_pops = (QUICK_POPULATIONS if args.quick
                  else EXTENDED_INTER_POPULATIONS if args.extended
                  else INTER_POPULATIONS)
    intra_pops = QUICK_POPULATIONS if args.quick else INTRA_POPULATIONS
    out_path = args.out or os.path.join(os.path.dirname(__file__), "..",
                                        "BENCH_scaling.json")

    workload_mults = (QUICK_WORKLOAD_SWEEP if args.quick
                      else WORKLOAD_SWEEP)

    if args.shards > 1:
        print("interdomain sweep (populations {}, {} shards):".format(
            inter_pops, args.shards))
        inter_rows = sweep_inter_sharded(inter_pops, args.shards)
    else:
        print("interdomain sweep (populations {}):".format(inter_pops))
        inter_rows = sweep_inter(inter_pops, snapshot_dir=args.snapshot_dir)
    print("intradomain sweep (populations {}):".format(intra_pops))
    intra_rows = sweep_intra(intra_pops, snapshot_dir=args.snapshot_dir)
    print("workload sweep (rate multipliers {}):".format(workload_mults))
    workload_rows = sweep_workload(workload_mults)

    if args.cliff_floor > 0:
        # Warm rows' "join" phase is a snapshot load, not protocol joins,
        # so the joins/sec cliff metric is meaningless there; sends still
        # run live against the loaded network and stay gated.
        inter_metrics = (("sends_per_sec",)
                         if any(r.get("warm_start") for r in inter_rows)
                         else ("joins_per_sec", "sends_per_sec"))
        if args.shards > 1:
            # N worker replicas time-slicing the available cores measure
            # scheduler contention, not the engine: gate the join cliff
            # on each row's recorded 1-shard baseline instead, and keep
            # the live sharded send rate gated directly.
            baseline_rows = [
                dict(row, joins_per_sec=round(
                    row["hosts"] / row["shard_baseline_join_seconds"], 1))
                for row in inter_rows]
            check_scaling_cliff(baseline_rows,
                                "interdomain (1-shard baseline joins)",
                                args.cliff_floor,
                                metrics=("joins_per_sec",))
            check_scaling_cliff(inter_rows, "interdomain", args.cliff_floor,
                                metrics=("sends_per_sec",))
        else:
            check_scaling_cliff(inter_rows, "interdomain", args.cliff_floor,
                                metrics=inter_metrics)
        check_scaling_cliff(intra_rows, "intradomain", args.cliff_floor,
                            metrics=("sends_per_sec",))

    data = {
        "generated_unix": int(time.time()),
        "quick": bool(args.quick),
        "peak_rss_mb": round(peak_rss_mb(), 1),
        "interdomain": inter_rows,
        "intradomain": intra_rows,
        "workload": workload_rows,
    }
    validate(data)
    with open(out_path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote {} (peak RSS {:.0f} MiB)".format(
        os.path.normpath(out_path), data["peak_rss_mb"]))
    if args.metrics_out is not None:
        windows = write_bench_metrics(args.metrics_out, inter_rows,
                                      intra_rows, workload_rows)
        print("wrote {} ({} windows)".format(args.metrics_out, windows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
