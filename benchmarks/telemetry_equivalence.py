#!/usr/bin/env python
"""Telemetry-equivalence gate: N-shard telemetry == 1-shard, byte for byte.

The companion to ``shard_equivalence.py`` for the observability pipeline
(DESIGN.md §12).  Runs the same interdomain workload through the sharded
engine with ``trace_out``/``metrics_out`` set, once at 1 shard and once
at N, and fails unless

* the merged cross-shard trace JSONL is **byte-identical** between the
  two runs (global renumbering erases worker-local span/seq state),
* the window-metrics JSONL is byte-identical,
* the same holds at a fractional ``--trace-sample`` (sampling is keyed
  on the global op sequence, so the keep/drop set must not depend on
  the shard count), and
* the runs still agree on delivery metrics and snapshot ``state_hash``
  (telemetry collection must not perturb the simulation).

Standalone CI job::

    PYTHONPATH=src python benchmarks/telemetry_equivalence.py \
        --hosts 600 --shards 2
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sim.shard import ShardCoordinator        # noqa: E402


def run_once(recipe: dict, n_shards: int, hosts: int, sends: int,
             sample: float, outdir: str) -> dict:
    tag = "{}shard-s{}".format(n_shards, sample)
    trace_path = os.path.join(outdir, "trace-{}.jsonl".format(tag))
    metrics_path = os.path.join(outdir, "metrics-{}.jsonl".format(tag))
    with ShardCoordinator(recipe, n_shards, window_ops=128,
                          trace_out=trace_path, trace_sample=sample,
                          metrics_out=metrics_path) as sim:
        sim.join_hosts(hosts)
        sim.warm_oracle()
        metrics = sim.run_sends(sends)
        digest = sim.state_hash()
        windows = sim.windows_synced
    with open(trace_path, "rb") as fh:
        trace_bytes = fh.read()
    with open(metrics_path, "rb") as fh:
        metrics_bytes = fh.read()
    return {
        "shards": n_shards,
        "metrics": metrics,
        "state_hash": digest,
        "windows": windows,
        "trace_bytes": trace_bytes,
        "metrics_bytes": metrics_bytes,
    }


def compare(base: dict, test: dict, label: str) -> list:
    failures = []
    if base["trace_bytes"] != test["trace_bytes"]:
        failures.append(
            "{}: trace JSONL differs ({} vs {} bytes)".format(
                label, len(base["trace_bytes"]), len(test["trace_bytes"])))
    if base["metrics_bytes"] != test["metrics_bytes"]:
        failures.append(
            "{}: window-metrics JSONL differs ({} vs {} bytes)".format(
                label, len(base["metrics_bytes"]),
                len(test["metrics_bytes"])))
    if base["metrics"] != test["metrics"]:
        failures.append("{}: delivery metrics diverged: {} != {}".format(
            label, base["metrics"], test["metrics"]))
    if base["state_hash"] != test["state_hash"]:
        failures.append("{}: state hash diverged".format(label))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=600)
    parser.add_argument("--sends", type=int, default=300)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--ases", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace-sample", type=float, default=0.25,
                        help="fractional sample rate for the second "
                             "equivalence pass (default 0.25)")
    args = parser.parse_args(argv)
    if args.shards < 2:
        parser.error("--shards must be >= 2 (the gate compares against 1)")

    recipe = {"n_ases": args.ases, "seed": args.seed, "n_fingers": 8,
              "strategy": "multihomed", "cache_entries": 0}
    print("telemetry equivalence: {} hosts, {} sends, seed {}".format(
        args.hosts, args.sends, args.seed))
    failures = []
    full_trace_len = None
    with tempfile.TemporaryDirectory(prefix="telemetry-eq-") as outdir:
        for sample in (1.0, args.trace_sample):
            base = run_once(recipe, 1, args.hosts, args.sends, sample,
                            outdir)
            test = run_once(recipe, args.shards, args.hosts, args.sends,
                            sample, outdir)
            label = "sample={}".format(sample)
            print("  {}: 1-shard {} trace bytes / {} windows; "
                  "{}-shard {} trace bytes / {} windows".format(
                      label, len(base["trace_bytes"]), base["windows"],
                      args.shards, len(test["trace_bytes"]),
                      test["windows"]))
            failures.extend(compare(base, test, label))
            if sample == 1.0:
                full_trace_len = len(base["trace_bytes"])
            elif full_trace_len and not (
                    0 < len(test["trace_bytes"]) < full_trace_len):
                failures.append(
                    "sample={} kept {} bytes of the {}-byte full trace — "
                    "sampling is not thinning the stream".format(
                        sample, len(test["trace_bytes"]), full_trace_len))
    if failures:
        print("FAIL: sharded telemetry diverged from the 1-shard baseline")
        for failure in failures:
            print("  " + failure)
        return 1
    print("OK: {}-shard trace and metrics JSONL are byte-identical to "
          "1-shard (full and sampled)".format(args.shards))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
