"""Fig 7 — PoP disconnect/reconnect repair overhead vs IDs per PoP
(paper: on the order of rejoining the PoP's hosts; always reconverges)."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig7_partition_repair(run_once):
    result = run_once(E.fig7_partition_repair, profile="AS3967",
                      ids_per_pop=(1, 4, 16, 64), seed=0)
    print(R.format_fig7(result))
    rows = result["series"]
    # Overhead grows with the PoP's population...
    assert rows[-1]["repair_messages"] > rows[0]["repair_messages"]
    # ...and stays within an order of magnitude of the rejoin baseline.
    for row in rows:
        assert row["repair_messages"] < 25 * max(1.0, row["rejoin_baseline"])
