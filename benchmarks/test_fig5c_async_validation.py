"""Cross-validation of Fig 5c — the analytic join-latency model against
the event-driven message-level simulator.

Fig 5c's driver computes join latency analytically (sequential request +
response, parallel setups); this bench re-measures the same quantity by
actually exchanging messages through the discrete-event kernel and
checks the two clocks agree to within a small factor, validating the
latency model behind the figure."""

from repro.intra.network import IntraDomainNetwork
from repro.intra.protocol_sim import ProtocolSimulator
from repro.sim.stats import percentile
from repro.topology.isp import synthetic_isp


def run_experiment():
    # Analytic latencies (the Fig 5c path).
    topo = synthetic_isp(n_routers=67, seed=0, name="AS3967")
    analytic_net = IntraDomainNetwork(topo, seed=0)
    analytic = [analytic_net.join_host(analytic_net.next_planned_host())
                .latency_ms for _ in range(150)]

    # Event-driven latencies over an identical network.
    topo2 = synthetic_isp(n_routers=67, seed=0, name="AS3967")
    async_net = IntraDomainNetwork(topo2, seed=0)
    sim = ProtocolSimulator(async_net, seed=0)
    measured = []
    for _ in range(150):
        pending = sim.join_host(async_net.next_planned_host())
        sim.run()
        assert pending.state == "done"
        measured.append(pending.latency_ms)
    async_net.check_ring()
    return {
        "analytic_median": percentile(analytic, 0.5),
        "async_median": percentile(measured, 0.5),
        "analytic_p95": percentile(analytic, 0.95),
        "async_p95": percentile(measured, 0.95),
    }


def test_fig5c_async_validation(run_once):
    out = run_once(run_experiment)
    print("\nFig 5c cross-validation — analytic vs event-driven join latency")
    print("median: analytic {:.1f} ms vs measured {:.1f} ms".format(
        out["analytic_median"], out["async_median"]))
    print("p95:    analytic {:.1f} ms vs measured {:.1f} ms".format(
        out["analytic_p95"], out["async_p95"]))
    # The models must agree to within a small factor (the async path
    # serialises the setup leg and re-decides per hop, so it may run a
    # little slower; wildly different clocks would mean Fig 5c is built
    # on a broken latency model).
    ratio = out["async_median"] / out["analytic_median"]
    assert 0.4 < ratio < 3.0
