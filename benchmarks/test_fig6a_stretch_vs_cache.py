"""Fig 6a — intradomain stretch vs pointer-cache size (paper: stretch
drops to ~1.2-2 with the 9 Mbit / ~70k-entry TCAM budget)."""

from repro.harness import experiments as E
from repro.harness import report as R
from repro.topology.isp import TCAM_ENTRIES


def test_fig6a_stretch_vs_cache(run_once):
    result = run_once(E.fig6a_stretch_vs_cache, profile="AS3967",
                      cache_sizes=(0, 16, 64, 256, 1024, 8192, TCAM_ENTRIES),
                      n_hosts=1000, n_packets=500, seed=0)
    print(R.format_fig6a(result))
    series = dict(result["series"])
    assert series[TCAM_ENTRIES] < series[0]            # caching helps
    assert series[TCAM_ENTRIES] < 3.0                  # paper's regime
    assert series[TCAM_ENTRIES] >= 1.0
    # Monotone-ish: bigger caches never hurt much.
    ordered = [series[c] for c in sorted(series)]
    assert ordered[-1] <= ordered[0]
