#!/usr/bin/env python
"""Tracing-overhead smoke: disabled tracing must stay within 10%.

The ``repro.obs`` emit sites live on the forwarding hot paths, guarded
by the module-level ``trace.ENABLED`` flag.  This script re-runs the
quick join/send sweep from :mod:`perf_trajectory` with tracing disabled
and compares throughput against a ``BENCH_scaling.json`` generated on
the *same machine* (CI regenerates the quick baseline in the same job,
immediately before this step).  If either joins/sec or sends/sec drops
more than ``--budget`` (default 10%) below the baseline at a matching
host count, the guard has stopped being free and the script exits 1.

It also measures the enabled-with-NullSink cost and prints it — that
number is informational (tracing ON is allowed to cost something), the
gate is only on the disabled path.

Usage::

    PYTHONPATH=src python benchmarks/perf_trajectory.py --quick
    PYTHONPATH=src python benchmarks/trace_overhead.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from perf_trajectory import sweep_inter, sweep_intra  # noqa: E402

from repro.obs import trace                           # noqa: E402
from repro.obs.trace import NullSink, Tracer          # noqa: E402

#: Repeats per sweep; per-metric maxima are compared (absorbs jitter —
#: throughput noise is one-sided, so best-of-N estimates the true rate).
REPEATS = 3

METRICS = ("joins_per_sec", "sends_per_sec")


def _best_rows(sweep_fn, populations, repeats: int = REPEATS) -> dict:
    """Per-population best-of-N throughput per metric, keyed by hosts."""
    best = {}
    for _ in range(repeats):
        for row in sweep_fn(populations):
            slot = best.setdefault(row["hosts"],
                                   {metric: 0.0 for metric in METRICS})
            for metric in METRICS:
                slot[metric] = max(slot[metric], row[metric])
    return best


def _geomean(values) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def _compare(section: str, baseline_rows, measured: dict,
             budget: float) -> list:
    """Failure strings when a metric's geomean ratio over the matched
    host counts falls more than ``budget`` below baseline.  Gating on
    the geomean (not single rows) keeps one noisy tiny-population
    sample from failing CI while still catching a real slowdown of the
    disabled emit-site guards, which shows up at every scale."""
    failures = []
    for metric in METRICS:
        ratios = []
        for base in baseline_rows:
            row = measured.get(base["hosts"])
            if row is None or base[metric] <= 0:
                continue
            ratio = row[metric] / base[metric]
            ratios.append(ratio)
            print("  {} {:>6} hosts {:<14} base {:>9.1f}  now {:>9.1f}  "
                  "({:+.1f}%)".format(section, base["hosts"], metric,
                                      base[metric], row[metric],
                                      100.0 * (ratio - 1.0)))
        if not ratios:
            continue
        mean_ratio = _geomean(ratios)
        status = "ok" if mean_ratio >= 1.0 - budget else "REGRESSED"
        print("  {} {:<14} geomean {:+.1f}% {}".format(
            section, metric, 100.0 * (mean_ratio - 1.0), status))
        if mean_ratio < 1.0 - budget:
            failures.append("{} {}: geomean {:.3f} below {:.3f} "
                            "(-{:.0f}% budget)".format(
                                section, metric, mean_ratio, 1.0 - budget,
                                budget * 100))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON (default: repo-root "
                             "BENCH_scaling.json)")
    parser.add_argument("--budget", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    args = parser.parse_args(argv)

    path = args.baseline or os.path.join(os.path.dirname(__file__), "..",
                                         "BENCH_scaling.json")
    with open(path) as fh:
        baseline = json.load(fh)
    inter_pops = tuple(row["hosts"] for row in baseline["interdomain"])
    intra_pops = tuple(row["hosts"] for row in baseline["intradomain"])

    assert not trace.ENABLED, "tracing must start disabled"
    print("disabled-tracing sweep (baseline: {}, budget {:.0f}%)".format(
        os.path.normpath(path), args.budget * 100))
    inter_off = _best_rows(sweep_inter, inter_pops)
    intra_off = _best_rows(sweep_intra, intra_pops)

    failures = _compare("inter", baseline["interdomain"], inter_off,
                        args.budget)
    failures += _compare("intra", baseline["intradomain"], intra_off,
                         args.budget)

    # Informational: what does tracing cost when ON (NullSink, full sample)?
    with trace.tracing(Tracer(sink=NullSink())) as tracer:
        inter_on = _best_rows(sweep_inter, inter_pops[-1:], repeats=1)
        intra_on = _best_rows(sweep_intra, intra_pops[-1:], repeats=1)
    for label, off, on in (("inter", inter_off, inter_on),
                           ("intra", intra_off, intra_on)):
        hosts, row = max(on.items())
        base = off[hosts]
        print("  {} tracing ON (NullSink, {} records): sends {:.1f}/s vs "
              "{:.1f}/s disabled ({:+.1f}%)".format(
                  label, tracer.records_emitted, row["sends_per_sec"],
                  base["sends_per_sec"],
                  100.0 * (row["sends_per_sec"] / base["sends_per_sec"]
                           - 1.0)))

    if failures:
        print("FAIL: disabled-tracing throughput regressed:")
        for failure in failures:
            print("  " + failure)
        return 1
    print("OK: disabled-tracing throughput within {:.0f}% of baseline".format(
        args.budget * 100))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
