"""Fig 8b — interdomain stretch CDF vs finger count, with the BGP-policy
reference (paper: 2.8 @60 fingers → 2.3 @160; more fingers, less
stretch)."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig8b_inter_stretch(run_once):
    result = run_once(E.fig8b_inter_stretch, n_ases=100, n_hosts=400,
                      finger_counts=(4, 16, 32), n_packets=400, seed=0)
    print(R.format_fig8b(result))
    means = {k: v["mean"] for k, v in result["fingers"].items()}
    assert means[32] <= means[4]              # fingers cut stretch
    assert 1.0 <= means[32] < 3.5             # the paper's 2-3 regime
    assert result["bgp_policy"]["mean"] >= 1.0
