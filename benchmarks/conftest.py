"""Shared benchmark plumbing.

Every bench wraps one harness driver: pytest-benchmark times the full
experiment (one round — these are workload reproductions, not
micro-benchmarks) and the formatted series the paper plots is printed to
the captured output (`pytest benchmarks/ --benchmark-only -s` to see it).
"""

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment driver exactly once under the benchmark timer."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
    return runner
