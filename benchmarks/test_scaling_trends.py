"""§6.1/6.3 — scaling trends.

"Our simulations were not able to scale up to 600 million hosts.
Instead, we ran simulations for smaller numbers of hosts … and present
scaling trends from our evaluation."  This bench sweeps the population
and checks the trends the paper's extrapolations rest on:

* interdomain join overhead grows sub-linearly (≈ log) in the number of
  IDs (lookup path lengths are O(log n); setups and fingers are flat);
* interdomain stretch does not grow with population ("we found that
  stretch decreased slightly as the number of IDs in the system
  increased" — driven by the uneven host distribution);
* intradomain per-join cost stays flat in the host count (it scales
  with the *diameter*, not the population).
"""

from repro.inter.network import InterDomainNetwork
from repro.inter.policy import JoinStrategy
from repro.intra.network import IntraDomainNetwork
from repro.topology.asgraph import synthetic_as_graph
from repro.topology.isp import synthetic_isp

POPULATIONS = (100, 300, 900)


def run_experiment():
    inter_rows = []
    for n_hosts in POPULATIONS:
        asg = synthetic_as_graph(n_ases=100, seed=0)
        net = InterDomainNetwork(asg, n_fingers=8, seed=0,
                                 strategy=JoinStrategy.MULTIHOMED)
        receipts = net.join_random_hosts(n_hosts)
        window = max(1, n_hosts // 5)
        tail_join = sum(r.messages for r in receipts[-window:]) / window
        stretches = []
        for _ in range(200):
            a, b = net.random_host_pair()
            result = net.send(a, b)
            if result.delivered and result.optimal_hops > 0:
                stretches.append(result.stretch)
        inter_rows.append({"ids": n_hosts, "tail_join": tail_join,
                           "stretch": sum(stretches) / len(stretches)})

    intra_rows = []
    for n_hosts in POPULATIONS:
        topo = synthetic_isp(n_routers=67, seed=0, name="AS3967")
        net = IntraDomainNetwork(topo, seed=0)
        net.join_random_hosts(n_hosts)
        costs = net.stats.operation_costs("join")
        window = max(1, n_hosts // 5)
        intra_rows.append({"ids": n_hosts,
                           "tail_join": sum(costs[-window:]) / window})
    return {"inter": inter_rows, "intra": intra_rows}


def test_scaling_trends(run_once):
    out = run_once(run_experiment)
    print("\nScaling trends (populations {})".format(POPULATIONS))
    print("interdomain: " + "; ".join(
        "{ids} IDs → join {tail_join:.1f} msgs, stretch {stretch:.2f}"
        .format(**row) for row in out["inter"]))
    print("intradomain: " + "; ".join(
        "{ids} IDs → join {tail_join:.1f} msgs".format(**row)
        for row in out["intra"]))

    inter = out["inter"]
    # Sub-linear join growth: 9x the population costs well under 9x msgs.
    growth = inter[-1]["tail_join"] / inter[0]["tail_join"]
    assert growth < 3.0
    # Stretch does not blow up with population (paper: slightly down).
    assert inter[-1]["stretch"] < inter[0]["stretch"] * 1.3

    intra = out["intra"]
    flat = intra[-1]["tail_join"] / intra[0]["tail_join"]
    assert flat < 2.0  # diameter-bound, not population-bound
