"""§6.3 — stub-AS failure impact (paper: 99.998% of paths unaffected;
repair messages roughly the number of IDs in the failed stub)."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig8d_stub_failure(run_once):
    result = run_once(E.fig8d_stub_failure, n_ases=100, n_hosts=600,
                      n_failures=6, n_probe_pairs=500, seed=0)
    print(R.format_fig8d(result))
    for row in result["failures"]:
        assert row["post_delivery"] == 1.0        # survivors unaffected
        assert row["repair_messages"] <= 60 * row["ids"]
        # At the paper's 600M scale, the endpoint fraction vanishes.
        assert row["endpoint_fraction_600M"] < 1e-4
