#!/usr/bin/env python
"""Shard-equivalence gate: N-shard == 1-shard, bit for bit.

Runs the same interdomain workload (join a population, warm the oracle,
route a batch of packets) through the sharded multiprocess engine twice
— once with one worker, once with ``--shards N`` — and fails unless
both runs produce *identical* delivery metrics, identical protocol
message counters, and an identical snapshot ``state_hash``, with every
replica of the N-shard run agreeing on that hash.

This is the determinism contract of ``repro.sim.shard`` as a standalone
CI job::

    PYTHONPATH=src python benchmarks/shard_equivalence.py \
        --hosts 2000 --shards 2

The wall-clock join speedup is printed for context but never gated:
it depends on free cores (one per shard), which CI containers rarely
have.  Correctness must hold on any machine.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sim.shard import ShardCoordinator        # noqa: E402


def run_once(recipe: dict, n_shards: int, hosts: int, sends: int) -> dict:
    with ShardCoordinator(recipe, n_shards) as sim:
        t0 = time.perf_counter()
        sim.join_hosts(hosts)
        sim.flush_indexes()
        join_seconds = time.perf_counter() - t0
        sim.warm_oracle()
        metrics = sim.run_sends(sends)
        hashes = sim.state_hash(all_replicas=True)
        worker = sim.metrics()
    if len(set(hashes)) != 1:
        raise SystemExit("FAIL: {}-shard replicas disagree on state hash: "
                         "{}".format(n_shards, hashes))
    return {
        "shards": n_shards,
        "join_seconds": round(join_seconds, 3),
        "metrics": metrics,
        "messages": worker["messages"],
        "lookup_mismatches": worker["lookup_mismatches"],
        "state_hash": hashes[0],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=2000)
    parser.add_argument("--sends", type=int, default=500)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--ases", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.shards < 2:
        parser.error("--shards must be >= 2 (the gate compares against 1)")

    recipe = {"n_ases": args.ases, "seed": args.seed, "n_fingers": 8,
              "strategy": "multihomed", "cache_entries": 0}
    print("shard equivalence: {} hosts, {} sends, seed {}".format(
        args.hosts, args.sends, args.seed))
    base = run_once(recipe, 1, args.hosts, args.sends)
    print("  1 shard : join {:>6.2f}s  hash {}".format(
        base["join_seconds"], base["state_hash"][:16]))
    test = run_once(recipe, args.shards, args.hosts, args.sends)
    print("  {} shards: join {:>6.2f}s  hash {}  (speedup {:.2f}x on "
          "{} cpu(s), informational)".format(
              test["shards"], test["join_seconds"], test["state_hash"][:16],
              base["join_seconds"] / test["join_seconds"],
              len(os.sched_getaffinity(0))))

    failures = []
    for key in ("metrics", "messages", "lookup_mismatches", "state_hash"):
        if base[key] != test[key]:
            failures.append("{} differs:\n  1-shard: {}\n  {}-shard: "
                            "{}".format(key, json.dumps(base[key],
                                                        sort_keys=True),
                                        args.shards,
                                        json.dumps(test[key],
                                                   sort_keys=True)))
    if failures:
        print("FAIL: sharded run diverged from the 1-shard baseline")
        for failure in failures:
            print(failure)
        return 1
    print("OK: {}-shard run is bit-identical to 1-shard "
          "(state_hash {})".format(args.shards, base["state_hash"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
