"""Head-to-head — ROFL vs the Disco-style compact-routing baseline,
judged by the obs layer (stretch tail, bound accounting, per-decision
attribution).  Singla et al.'s worst case is provably ≤ 3; ROFL's tail
is unbounded but its mean rides the ring shortcuts."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_compare_stretch(run_once):
    result = run_once(E.headtohead_stretch, profile="AS3967",
                      n_hosts=150, n_packets=300, n_ases=40,
                      inter_hosts=100, inter_packets=150, seed=0)
    print(R.format_headtohead(result))

    disco = result["intra"]["disco"]
    rofl = result["intra"]["rofl"]

    # The headline: Disco's worst case respects the provable bound,
    # ROFL's does not have one (and empirically exceeds 3 in the tail).
    assert disco["worst"] <= disco["stretch_bound"] + 1e-9
    assert disco["bound_violations"] == 0
    assert disco["probe_violations"] == []
    assert rofl["stretch_bound"] is None

    # The obs layer is the judge: every packet of both tracing
    # protocols decomposes into rule-tagged segments whose attributed
    # stretch sums exactly to PathResult.stretch.
    for row in (rofl, disco):
        assert row["trace_spans"] == row["sent"]
        assert row["attribution_mismatches"] == 0
        assert row["attribution"]
    assert set(disco["attribution"]) <= {"vicinity.direct",
                                         "vicinity.shortcut",
                                         "landmark.route",
                                         "landmark.descend"}

    # Exhaustive sweep under the live probe: zero breaches.
    sweep = result["disco_all_pairs"]
    assert sweep["undelivered"] == 0
    assert sweep["violations"] == []
    assert sweep["max_stretch"] <= sweep["bound"] + 1e-9

    # Everybody delivered everything on a healthy topology.
    for label, row in result["intra"].items():
        assert row["delivered"] == row["sent"], label

    # Interdomain: Disco's bound holds over the flattened AS graph too.
    inter_disco = result["inter"]["disco"]
    assert inter_disco["worst"] <= inter_disco["stretch_bound"] + 1e-9
    assert inter_disco["bound_violations"] == 0
