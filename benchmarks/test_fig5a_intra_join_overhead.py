"""Fig 5a — cumulative intradomain join overhead vs #hosts, per ISP,
with the CMU-ETHERNET flood baseline (paper: 37-181x more messages)."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig5a_intra_join_overhead(run_once):
    result = run_once(E.fig5a_intra_join_overhead,
                      profiles=("AS1221", "AS1239", "AS3257", "AS3967"),
                      host_counts=(10, 100, 1000), seed=0)
    print(R.format_fig5a(result))
    for profile, data in result["profiles"].items():
        # Linear scaling: per-host cost roughly flat in the host count.
        per_host = [c / h for c, h in zip(data["rofl_cumulative"],
                                          result["host_counts"])]
        assert max(per_host) < 4 * min(per_host)
        # CMU-ETHERNET is uniformly, substantially worse.
        assert all(ratio > 2 for ratio in data["cmu_over_rofl"])
