"""Fig 6c — memory entries per router vs #IDs (paper: CMU-ETHERNET needs
34-1200x more memory than ROFL)."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig6c_memory(run_once):
    result = run_once(E.fig6c_memory, profile="AS3967",
                      host_counts=(10, 100, 1000), seed=0)
    print(R.format_fig6c(result))
    rows = result["series"]
    # The gap widens with population: ROFL state is per-resident +
    # O(group), CMU is every-host-everywhere.
    ratios = [row["cmu_over_rofl"] for row in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 5
