"""Fig 6b — per-router load, ROFL vs shortest-path OSPF (paper: the
difference is slight; no significant new hot-spots)."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig6b_load_balance(run_once):
    result = run_once(E.fig6b_load_balance, profile="AS3967",
                      n_hosts=600, n_packets=3000, seed=0)
    print(R.format_fig6b(result))
    assert result["max_fraction_rofl"] < 3 * result["max_fraction_ospf"]
    assert 0.3 < result["top_decile_ratio"] < 3.0
