"""§4.2/6.3 — bloom-filter peering vs virtual-AS peering (paper: bloom
filters cut the peering join to the multihomed level, at the cost of
per-AS filter state and somewhat higher stretch, 3.29 vs 2.8)."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig8e_bloom_peering(run_once):
    result = run_once(E.fig8e_bloom_peering, n_ases=100, n_hosts=400,
                      n_packets=400, seed=0)
    print(R.format_fig8e(result))
    assert result["bloom"]["mean_join"] < result["virtual_as"]["mean_join"]
    assert result["bloom"]["delivery_rate"] == 1.0
    assert result["virtual_as"]["delivery_rate"] == 1.0
    assert result["bloom"]["bloom_mbits_total"] > 0
