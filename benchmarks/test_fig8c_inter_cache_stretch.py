"""Fig 8c — interdomain stretch vs per-AS pointer-cache size (paper:
2 → 1.33 at 20M entries/AS, extrapolated)."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig8c_inter_cache_stretch(run_once):
    result = run_once(E.fig8c_inter_cache_stretch, n_ases=100, n_hosts=400,
                      cache_sizes=(0, 64, 512, 4096), n_packets=400, seed=0)
    print(R.format_fig8c(result))
    rows = result["series"]
    assert rows[-1]["mean_stretch"] <= rows[0]["mean_stretch"]
    assert rows[-1]["mean_stretch"] >= 1.0
