"""Fig 5c — CDF of join latency (paper: typically <40 ms, on the order
of the network diameter because join messages run in parallel)."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig5c_join_latency_cdf(run_once):
    result = run_once(E.fig5c_join_latency_cdf,
                      profiles=("AS1221", "AS1239", "AS3257", "AS3967"),
                      n_hosts=500, seed=0)
    print(R.format_fig5c(result))
    for profile, data in result.items():
        assert 0 < data["median_ms"] < 200
        assert data["median_ms"] <= data["p95_ms"]
