"""Ablation — control-packet cache filling (DESIGN.md §4).

The paper fills pointer caches "only with contents available from
control packets".  This bench shows that design choice carries the
entire Fig 6a effect: with filling disabled, caches stay empty and
stretch reverts to the successor-walk baseline."""

from repro.intra.network import IntraDomainNetwork
from repro.topology.isp import synthetic_isp


def run_ablation():
    out = {}
    for fill in (True, False):
        topo = synthetic_isp(n_routers=67, seed=0, name="AS3967")
        net = IntraDomainNetwork(topo, seed=0, cache_entries=8192,
                                 cache_fill_enabled=fill)
        net.join_random_hosts(500)
        stretches = []
        for _ in range(300):
            a, b = net.random_host_pair()
            result = net.send(a, b)
            if result.delivered and result.optimal_hops > 0:
                stretches.append(result.stretch)
        out[fill] = {
            "stretch": sum(stretches) / len(stretches),
            "cache_entries": net.cache_stats()["entries"],
        }
    return out


def test_ablation_cache_fill(run_once):
    out = run_once(run_ablation)
    print("\nAblation — control-packet cache fill")
    for fill, row in out.items():
        print("fill={!s:<6} entries={:>7} stretch={:.2f}".format(
            fill, row["cache_entries"], row["stretch"]))
    assert out[False]["cache_entries"] == 0
    assert out[True]["stretch"] < out[False]["stretch"]
