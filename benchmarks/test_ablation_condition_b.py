"""Ablation — Canon's condition (b) pointer pruning (Section 4.1).

"Condition (b) thus limits the number of external pointers … the
expected total number of pointers (both internal and external) is
O(log(n))."  This bench measures how much per-ID successor state the
pruning (plus redundant-lookup elimination) saves relative to storing a
pointer at every joined level."""

from repro.inter.network import InterDomainNetwork
from repro.inter.policy import JoinStrategy
from repro.topology.asgraph import synthetic_as_graph


def run_ablation():
    graph = synthetic_as_graph(n_ases=100, seed=0)
    net = InterDomainNetwork(graph, n_fingers=0, seed=0,
                             strategy=JoinStrategy.MULTIHOMED)
    net.join_random_hosts(500)
    levels = sum(len(vn.joined_levels) for vn in net.hosts.values())
    stored = sum(len(vn.succ_by_level) for vn in net.hosts.values())
    join_msgs = net.stats.operation_costs("join")
    return {
        "joined_levels": levels,
        "stored_pointers": stored,
        "savings": 1 - stored / levels,
        "mean_join": sum(join_msgs) / len(join_msgs),
    }


def test_ablation_condition_b(run_once):
    out = run_once(run_ablation)
    print("\nAblation — condition (b) pruning")
    print("joined levels {} → stored successor pointers {} "
          "({:.0%} state saved); mean join {:.1f} msgs".format(
              out["joined_levels"], out["stored_pointers"],
              out["savings"], out["mean_join"]))
    assert out["stored_pointers"] < out["joined_levels"]
    # The absolute saving grows with hierarchy depth and ring density
    # (toward the paper's O(log n) bound); at this synthetic scale the
    # hierarchy is ~4 levels deep, so a >10% cut already demonstrates the
    # mechanism.
    assert out["savings"] > 0.1
