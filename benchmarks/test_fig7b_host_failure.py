"""§6.2 (text) — host-failure repair vs join overhead (paper: "the
overhead triggered by host failure and mobility [is] comparable to join
overhead")."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig7b_host_failure(run_once):
    result = run_once(E.fig7b_host_failure, profile="AS3967",
                      n_hosts=800, n_failures=200, seed=0)
    print(R.format_fig7b(result))
    assert result["failure_over_join"] < 5.0
    assert result["avg_failure"] > 0
