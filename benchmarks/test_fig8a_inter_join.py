"""Fig 8a — interdomain join overhead by strategy (paper, extrapolated
to 600M IDs: ephemeral ~14, single-homed ~80, multihomed ~100, peering
up to ~445 messages with 340 fingers)."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig8a_inter_join(run_once):
    result = run_once(E.fig8a_inter_join, n_ases=100, n_hosts=500,
                      seed=0, n_fingers=8)
    print(R.format_fig8a(result))
    s = result["strategies"]
    assert s["ephemeral"]["mean"] < s["single-homed"]["mean"]
    assert s["single-homed"]["mean"] <= s["multihomed"]["mean"] * 1.1
    assert s["multihomed"]["mean"] < s["peering"]["mean"]
    # Every distributed lookup agreed with the authoritative rings.
    assert all(d["mismatches"] == 0 for d in s.values())
    # The 600M extrapolation reproduces the paper's ordering and the
    # peering headline (~445 with 340 fingers).
    extrap = result["extrapolation_600M"]
    assert 300 < extrap["peering"] < 700
    assert extrap["ephemeral"] < extrap["single-homed"] <= extrap["multihomed"]
