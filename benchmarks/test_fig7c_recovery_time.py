"""§6.2 (text) — non-partition link/router failure recovery time
(paper: "link/router failures that do not trigger partitions [are]
comparable to OSPF recovery times").

ROFL's recovery for these events is exactly the link-state substrate's:
detection + LSA flood + SPF, plus a purely local cache-invalidation pass
(zero network messages, modelled at a small per-router processing cost).
The bench measures both clocks over random single-link failures.
"""

from repro.linkstate.protocol import FloodModel, OspfTimers
from repro.linkstate.spf import PathCache
from repro.intra.network import IntraDomainNetwork
from repro.topology.isp import synthetic_isp
from repro.util.rng import derive_rng

#: Local cache-walk cost a router pays to invalidate entries over a
#: failed link (no messages; purely CPU).
LOCAL_INVALIDATION_MS = 1.0


def run_experiment():
    topo = synthetic_isp(n_routers=67, seed=0, name="AS3967")
    net = IntraDomainNetwork(topo, seed=0)
    net.join_random_hosts(300)
    model = FloodModel(net.lsmap, timers=OspfTimers())
    rng = derive_rng(0, "fig7c")
    rows = []
    edges = list(net.lsmap.live_graph.edges())
    rng.shuffle(edges)
    for a, b in edges[:20]:
        net.lsmap.fail_link(a, b)
        if len(net.lsmap.components()) > 1:
            net.lsmap.restore_link(a, b)
            continue
        ospf_ms = model.recovery_time_ms(a, PathCache(net.lsmap))
        dropped = 0
        for router in net.routers.values():
            dropped += router.cache.invalidate_where(
                lambda p: p.uses_link(a, b))
        rofl_ms = ospf_ms + LOCAL_INVALIDATION_MS
        rows.append({"link": (a, b), "ospf_ms": ospf_ms,
                     "rofl_ms": rofl_ms, "cache_dropped": dropped})
        net.lsmap.restore_link(a, b)
    return rows


def test_fig7c_recovery_time(run_once):
    rows = run_once(run_experiment)
    assert rows
    print("\n§6.2 — link-failure recovery time (no partition)")
    print("{:>12} {:>12} {:>14}".format("OSPF [ms]", "ROFL [ms]",
                                        "cache dropped"))
    for row in rows[:8]:
        print("{:>12.1f} {:>12.1f} {:>14}".format(
            row["ospf_ms"], row["rofl_ms"], row["cache_dropped"]))
    for row in rows:
        # ROFL adds only local work on top of OSPF convergence.
        assert row["rofl_ms"] <= row["ospf_ms"] * 1.1 + 5.0
    print("paper: ROFL recovery for non-partition failures is comparable"
          " to OSPF recovery times")
