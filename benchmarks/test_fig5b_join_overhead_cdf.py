"""Fig 5b — CDF of per-host join overhead (paper: <45 packets,
roughly 4x network diameter)."""

from repro.harness import experiments as E
from repro.harness import report as R


def test_fig5b_join_overhead_cdf(run_once):
    result = run_once(E.fig5b_join_overhead_cdf,
                      profiles=("AS1221", "AS1239", "AS3257", "AS3967"),
                      n_hosts=800, seed=0)
    print(R.format_fig5b(result))
    for profile, data in result.items():
        assert data["p95"] < 10 * data["diameter"]
        assert 1.0 < data["per_diameter"] < 8.0
        assert data["median"] <= data["p95"]
