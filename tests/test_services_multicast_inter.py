"""Interdomain multicast tests, plus the data-snooping cache option."""

import pytest

from repro.intra.network import IntraDomainNetwork
from repro.services.multicast_inter import InterMulticastGroup
from repro.topology.isp import synthetic_isp


@pytest.fixture()
def net(inter_net_factory):
    return inter_net_factory(n_hosts=80, seed=41, n_fingers=6)


def bearer_ases(net, n):
    return [a for a in net.asg.ases() if net.asg.hosts(a) > 0][:n]


class TestInterMulticast:
    def test_all_members_receive(self, net):
        group = InterMulticastGroup(net, "feed")
        for i, asn in enumerate(bearer_ases(net, 6)):
            group.join("m{}".format(i), asn)
        report = group.multicast("m0")
        assert report.receivers == {"m{}".format(i) for i in range(6)}

    def test_tree_is_a_tree(self, net):
        group = InterMulticastGroup(net, "tree")
        for i, asn in enumerate(bearer_ases(net, 7)):
            group.join("m{}".format(i), asn)
        nodes = set(group.tree_links) | set(group.local_members)
        assert group.tree_edge_count() == len(nodes) - 1

    def test_cheaper_than_unicast_fanout(self, net):
        """The reason multicast exists: one copy per tree edge beats one
        unicast per member."""
        group = InterMulticastGroup(net, "cdn")
        for i, asn in enumerate(bearer_ases(net, 8)):
            group.join("m{}".format(i), asn)
        report = group.multicast("m0")
        assert report.messages <= group.unicast_equivalent_cost("m0")

    def test_colocated_members_share_branch(self, net):
        group = InterMulticastGroup(net, "colo")
        asn = bearer_ases(net, 1)[0]
        group.join("a", asn)
        cost = group.join("b", asn)
        assert cost == 0
        assert group.multicast("a").receivers == {"a", "b"}

    def test_leave_prunes(self, net):
        group = InterMulticastGroup(net, "prune")
        ases = bearer_ases(net, 5)
        for i, asn in enumerate(ases):
            group.join("m{}".format(i), asn)
        before = group.tree_edge_count()
        group.leave("m4")
        assert group.tree_edge_count() <= before
        assert group.multicast("m0").receivers == {"m0", "m1", "m2", "m3"}

    def test_duplicate_and_unknown_members(self, net):
        group = InterMulticastGroup(net, "dup")
        group.join("a", bearer_ases(net, 1)[0])
        with pytest.raises(ValueError):
            group.join("a", bearer_ases(net, 1)[0])
        with pytest.raises(KeyError):
            group.leave("ghost")
        with pytest.raises(KeyError):
            group.multicast("ghost")

    def test_join_in_failed_as_rejected(self, net):
        group = InterMulticastGroup(net, "down")
        stub = next(s for s in net.asg.stubs()
                    if len(net.ases[s].hosted) == 0)
        net.fail_as(stub)
        with pytest.raises(ValueError):
            group.join("x", stub)


class TestDataSnooping:
    def test_snooping_fills_caches_from_data(self):
        topo = synthetic_isp(n_routers=40, seed=42)
        net = IntraDomainNetwork(topo, seed=42, cache_entries=4096,
                                 cache_fill_enabled=False,
                                 snoop_data_packets=True)
        net.join_random_hosts(60)
        assert net.cache_stats()["entries"] == 0  # control fill is off
        for _ in range(50):
            a, b = net.random_host_pair()
            net.send(a, b)
        assert net.cache_stats()["entries"] > 0   # …but data snooping fills

    def test_default_matches_paper(self, intra_net_factory):
        """Section 6.1: the paper's experiments do NOT snoop data."""
        net = intra_net_factory(n_hosts=5)
        assert net.snoop_data_packets is False

    def test_snooping_improves_repeat_traffic(self):
        def repeat_stretch(snoop):
            topo = synthetic_isp(n_routers=40, seed=43)
            net = IntraDomainNetwork(topo, seed=43, cache_entries=4096,
                                     cache_fill_enabled=False,
                                     snoop_data_packets=snoop)
            net.join_random_hosts(60)
            pairs = [net.random_host_pair() for _ in range(15)]
            for a, b in pairs:      # warm
                net.send(a, b)
            vals = []
            for a, b in pairs:      # measure repeats
                result = net.send(a, b)
                if result.delivered and result.optimal_hops > 0:
                    vals.append(result.stretch)
            return sum(vals) / len(vals)
        assert repeat_stretch(True) <= repeat_stretch(False)