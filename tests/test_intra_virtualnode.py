"""Virtual node and pointer data-structure tests."""

import pytest

from repro.idspace.identifier import RingSpace
from repro.intra.virtualnode import Pointer, VirtualNode

SPACE = RingSpace(bits=16)


def ptr(value, path=("r0", "r1", "r2")):
    return Pointer(SPACE.make(value), tuple(path), "successor")


class TestPointer:
    def test_endpoints(self):
        p = ptr(5)
        assert p.owner_router == "r0"
        assert p.hosting_router == "r2"
        assert p.n_hops == 2

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Pointer(SPACE.make(1), (), "successor")

    def test_traverses_and_uses_link(self):
        p = ptr(5)
        assert p.traverses("r1") and not p.traverses("rX")
        assert p.uses_link("r0", "r1") and p.uses_link("r1", "r0")
        assert not p.uses_link("r0", "r2")

    def test_rerouted_keeps_identity(self):
        p = ptr(5)
        q = p.rerouted(("r0", "r9", "r2"))
        assert q.dest_id == p.dest_id and q.kind == p.kind
        assert q.path == ("r0", "r9", "r2")

    def test_single_router_path(self):
        p = Pointer(SPACE.make(1), ("r0",), "successor")
        assert p.n_hops == 0 and p.owner_router == p.hosting_router == "r0"


class TestVirtualNode:
    def make(self):
        return VirtualNode(id=SPACE.make(100), router="r0", host_name="h")

    def test_default_detection(self):
        assert VirtualNode(id=SPACE.make(1), router="r").is_default
        assert not self.make().is_default
        eph = VirtualNode(id=SPACE.make(1), router="r", ephemeral=True)
        assert not eph.is_default

    def test_set_successors_dedups_and_caps(self):
        vn = self.make()
        vn.set_successors([ptr(200), ptr(200), ptr(300), ptr(400), ptr(500)],
                          group_size=3)
        assert [p.dest_id.value for p in vn.successors] == [200, 300, 400]

    def test_set_successors_drops_self(self):
        vn = self.make()
        vn.set_successors([ptr(100), ptr(200)], group_size=4)
        assert [p.dest_id.value for p in vn.successors] == [200]

    def test_push_successor_shifts_group(self):
        vn = self.make()
        vn.set_successors([ptr(200), ptr(300)], group_size=2)
        vn.push_successor(ptr(150), group_size=2)
        assert [p.dest_id.value for p in vn.successors] == [150, 200]

    def test_drop_successor(self):
        vn = self.make()
        vn.set_successors([ptr(200), ptr(300)], group_size=4)
        assert vn.drop_successor(SPACE.make(200))
        assert not vn.drop_successor(SPACE.make(200))
        assert vn.primary_successor().dest_id.value == 300

    def test_primary_of_empty_group(self):
        assert self.make().primary_successor() is None

    def test_state_entries_accounting(self):
        vn = self.make()
        vn.set_successors([ptr(200), ptr(300)], group_size=4)
        vn.predecessor = Pointer(SPACE.make(50), ("r0", "r5"), "predecessor")
        vn.ephemeral_children[SPACE.make(120)] = Pointer(
            SPACE.make(120), ("r0", "r7"), "ephemeral")
        assert vn.state_entries() == 1 + 2 + 1 + 1

    def test_knows_lists_all_progress_ids(self):
        vn = self.make()
        vn.set_successors([ptr(200)], group_size=4)
        vn.ephemeral_children[SPACE.make(120)] = Pointer(
            SPACE.make(120), ("r0", "r7"), "ephemeral")
        known = {k.value for k in vn.knows(SPACE)}
        assert known == {100, 200, 120}
