"""Group identifier (G, x) tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.idspace.groups import (DEFAULT_GROUP_BITS, GroupId, group_prefix,
                                  make_member_id)
from repro.idspace.identifier import DEFAULT_BITS


def test_members_share_prefix():
    a = make_member_id("dns", 1)
    b = make_member_id("dns", 99)
    gid = GroupId("dns", 0)
    assert gid.same_group(a) and gid.same_group(b)


def test_different_groups_different_prefixes():
    assert group_prefix("dns") != group_prefix("web")


def test_suffix_must_fit():
    with pytest.raises(ValueError):
        make_member_id("g", 1 << (DEFAULT_BITS - DEFAULT_GROUP_BITS))
    with pytest.raises(ValueError):
        make_member_id("g", -1)


def test_group_bits_validation():
    with pytest.raises(ValueError):
        group_prefix("g", bits=128, group_bits=128)
    with pytest.raises(ValueError):
        group_prefix("g", bits=128, group_bits=0)


def test_arc_bounds_cover_exactly_the_group():
    gid = GroupId("metrics", 0)
    low, high = gid.arc_bounds()
    assert gid.same_group(low) and gid.same_group(high)
    assert low == make_member_id("metrics", 0)
    # One past the top of the arc is a different group prefix.
    from repro.idspace.identifier import FlatId
    outside = FlatId(high.value + 1)
    assert not gid.same_group(outside)


def test_flat_id_matches_make_member_id():
    gid = GroupId("svc", 7)
    assert gid.flat_id == make_member_id("svc", 7)


@given(st.text(min_size=1, max_size=20),
       st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_member_ids_parse_back_to_suffix(name, suffix):
    member = make_member_id(name, suffix)
    gid = GroupId(name, suffix)
    assert gid.same_group(member)
    suffix_bits = DEFAULT_BITS - DEFAULT_GROUP_BITS
    assert member.value & ((1 << suffix_bits) - 1) == suffix


@given(st.text(min_size=1, max_size=20))
def test_arc_is_contiguous(name):
    gid = GroupId(name, 0)
    low, high = gid.arc_bounds()
    assert high.value - low.value == (1 << (DEFAULT_BITS - DEFAULT_GROUP_BITS)) - 1
