"""Router-level topology model and the synthetic ISP generator."""

import pytest

from repro.topology.graph import RouterTopology
from repro.topology.isp import (ROCKETFUEL_PROFILES, TCAM_ENTRIES,
                                rocketfuel_like, synthetic_isp)


class TestRouterTopology:
    def make(self):
        topo = RouterTopology("t")
        topo.add_router("a", pop=0, role="backbone")
        topo.add_router("b", pop=0)
        topo.add_router("c", pop=1)
        topo.add_link("a", "b", latency_ms=1.0)
        topo.add_link("b", "c", latency_ms=2.0)
        return topo

    def test_basic_queries(self):
        topo = self.make()
        assert topo.n_routers == 3 and topo.n_links == 2
        assert topo.pop_of("a") == 0
        assert set(topo.routers_in_pop(0)) == {"a", "b"}
        assert topo.backbone_routers() == ["a"]
        assert set(topo.edge_routers()) == {"b", "c"}
        assert topo.latency("b", "c") == 2.0
        assert topo.neighbors("b") == ["a", "c"]

    def test_duplicate_router_rejected(self):
        topo = self.make()
        with pytest.raises(ValueError):
            topo.add_router("a")

    def test_self_loop_rejected(self):
        topo = self.make()
        with pytest.raises(ValueError):
            topo.add_link("a", "a")

    def test_link_to_unknown_router_rejected(self):
        topo = self.make()
        with pytest.raises(KeyError):
            topo.add_link("a", "zz")

    def test_validate_catches_disconnection(self):
        topo = self.make()
        topo.add_router("island")
        with pytest.raises(ValueError):
            topo.validate()

    def test_validate_catches_bad_latency(self):
        topo = self.make()
        topo.graph.edges["a", "b"]["latency_ms"] = 0
        with pytest.raises(ValueError):
            topo.validate()

    def test_copy_is_independent(self):
        topo = self.make()
        clone = topo.copy()
        clone.add_router("d", pop=1)
        assert topo.n_routers == 3 and clone.n_routers == 4
        assert topo.routers_in_pop(1) == ["c"]

    def test_diameter(self):
        assert self.make().diameter() == 2


class TestSyntheticIsp:
    def test_router_count_and_connectivity(self):
        topo = synthetic_isp(n_routers=75, seed=1)
        assert topo.n_routers == 75
        assert topo.is_connected()

    def test_determinism(self):
        a = synthetic_isp(n_routers=50, seed=3)
        b = synthetic_isp(n_routers=50, seed=3)
        assert sorted(a.links()) == sorted(b.links())

    def test_seeds_differ(self):
        a = synthetic_isp(n_routers=50, seed=3)
        b = synthetic_isp(n_routers=50, seed=4)
        assert sorted(a.links()) != sorted(b.links())

    def test_pop_structure(self):
        topo = synthetic_isp(n_routers=64, seed=0, pop_size=8)
        assert len(topo.pops) == 8
        for pop, members in topo.pops.items():
            assert 7 <= len(members) <= 9
            # Every PoP elects at least one backbone router.
            assert any(topo.graph.nodes[r]["role"] == "backbone"
                       for r in members)

    def test_every_router_has_a_pop(self):
        topo = synthetic_isp(n_routers=40, seed=2)
        assert all(topo.pop_of(r) is not None for r in topo.routers)

    def test_rejects_tiny_inputs(self):
        with pytest.raises(ValueError):
            synthetic_isp(n_routers=1)
        with pytest.raises(ValueError):
            synthetic_isp(n_routers=10, pop_size=1)

    def test_latency_jitter_present(self):
        topo = synthetic_isp(n_routers=80, seed=5)
        latencies = {round(d["latency_ms"], 4)
                     for _, _, d in topo.graph.edges(data=True)}
        assert len(latencies) > 3  # not all equal

    def test_rocketfuel_profiles(self):
        for name, params in ROCKETFUEL_PROFILES.items():
            assert params["routers"] > 0 and params["hosts"] > 0
        topo = rocketfuel_like("AS3967", seed=0)
        assert topo.n_routers == ROCKETFUEL_PROFILES["AS3967"]["routers"]
        assert topo.name == "AS3967"
        with pytest.raises(KeyError):
            rocketfuel_like("AS9999")

    def test_tcam_budget_matches_paper(self):
        # "roughly 70,000 entries (corresponding to a 9Mbit cache of
        # 128-bit IDs)"
        assert 70_000 <= TCAM_ENTRIES <= 75_000
