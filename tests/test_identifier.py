"""Unit + property tests for the flat identifier namespace."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.idspace.identifier import DEFAULT_BITS, FlatId, RingSpace

SPACE = RingSpace(bits=16)  # small space so wrap-around cases are common

ids16 = st.integers(min_value=0, max_value=(1 << 16) - 1).map(
    lambda v: FlatId(v, bits=16))


class TestFlatId:
    def test_value_wraps_into_namespace(self):
        assert FlatId(1 << 16, bits=16).value == 0
        assert FlatId(-1, bits=16).value == (1 << 16) - 1

    def test_rejects_nonpositive_bits(self):
        with pytest.raises(ValueError):
            FlatId(1, bits=0)

    def test_from_bytes_is_deterministic(self):
        assert FlatId.from_bytes(b"x") == FlatId.from_bytes(b"x")
        assert FlatId.from_bytes(b"x") != FlatId.from_bytes(b"y")

    def test_default_width_is_128_bits(self):
        assert FlatId.from_bytes(b"x").bits == DEFAULT_BITS == 128

    def test_hex_round_trip(self):
        fid = FlatId.from_bytes(b"round-trip")
        assert FlatId.from_hex(fid.to_hex()) == fid

    def test_hex_is_fixed_width(self):
        assert len(FlatId(1, bits=16).to_hex()) == 4

    def test_ordering_is_numeric(self):
        assert FlatId(3, bits=16) < FlatId(5, bits=16)
        assert sorted([FlatId(9, bits=16), FlatId(2, bits=16)])[0].value == 2

    def test_ids_with_different_bits_are_unequal(self):
        assert FlatId(5, bits=16) != FlatId(5, bits=32)

    def test_hashable_and_usable_in_sets(self):
        assert len({FlatId(1, bits=16), FlatId(1, bits=16)}) == 1

    def test_prefix_bits(self):
        fid = FlatId(0b1010_0000_0000_0000, bits=16)
        assert fid.prefix_bits(4) == 0b1010
        assert fid.prefix_bits(0) == 0
        with pytest.raises(ValueError):
            fid.prefix_bits(17)

    def test_digit_rows(self):
        fid = FlatId(0xABCD, bits=16)
        assert fid.digit(0, 4) == 0xA
        assert fid.digit(3, 4) == 0xD
        with pytest.raises(ValueError):
            fid.digit(4, 4)


class TestRingSpace:
    def test_distance_cw_basic(self):
        a, b = SPACE.make(10), SPACE.make(20)
        assert SPACE.distance_cw(a, b) == 10
        assert SPACE.distance_cw(b, a) == SPACE.size - 10

    def test_distance_to_self_is_zero(self):
        a = SPACE.make(42)
        assert SPACE.distance_cw(a, a) == 0

    def test_interval_oc_wraps(self):
        a, b = SPACE.make(SPACE.size - 5), SPACE.make(5)
        assert SPACE.in_interval_oc(SPACE.make(0), a, b)
        assert SPACE.in_interval_oc(b, a, b)
        assert not SPACE.in_interval_oc(a, a, b)

    def test_interval_oc_degenerate_is_full_ring(self):
        a = SPACE.make(7)
        assert SPACE.in_interval_oc(SPACE.make(123), a, a)

    def test_interval_oo_excludes_endpoints(self):
        a, b = SPACE.make(10), SPACE.make(20)
        assert SPACE.in_interval_oo(SPACE.make(15), a, b)
        assert not SPACE.in_interval_oo(a, a, b)
        assert not SPACE.in_interval_oo(b, a, b)

    def test_progress_rejects_overshoot(self):
        cur, dest = SPACE.make(0), SPACE.make(10)
        assert SPACE.progress(cur, SPACE.make(11), dest) is None
        assert SPACE.progress(cur, SPACE.make(10), dest) == 10
        assert SPACE.progress(cur, SPACE.make(4), dest) == 4

    def test_closest_not_past_picks_max_progress(self):
        cur, dest = SPACE.make(0), SPACE.make(100)
        cands = [SPACE.make(v) for v in (5, 99, 101, 250)]
        assert SPACE.closest_not_past(cur, dest, cands) == SPACE.make(99)

    def test_closest_not_past_none_when_all_overshoot(self):
        cur, dest = SPACE.make(0), SPACE.make(10)
        assert SPACE.closest_not_past(cur, dest,
                                      [SPACE.make(20), SPACE.make(50)]) is None

    def test_midpoint_wraps(self):
        a = SPACE.make(SPACE.size - 10)
        b = SPACE.make(10)
        assert SPACE.distance_cw(a, SPACE.midpoint(a, b)) == 10


# -- property tests --------------------------------------------------------------


@given(ids16, ids16, ids16)
def test_distance_triangle_identity(a, b, c):
    """Clockwise distances around the ring compose modulo the ring size."""
    lhs = (SPACE.distance_cw(a, b) + SPACE.distance_cw(b, c)) % SPACE.size
    assert lhs == SPACE.distance_cw(a, c)


@given(ids16, ids16)
def test_distance_antisymmetry(a, b):
    if a != b:
        assert SPACE.distance_cw(a, b) + SPACE.distance_cw(b, a) == SPACE.size
    else:
        assert SPACE.distance_cw(a, b) == 0


@given(ids16, ids16, st.lists(ids16, min_size=1, max_size=20))
def test_closest_not_past_matches_brute_force(cur, dest, candidates):
    expected = None
    best = 0
    for cand in candidates:
        adv = SPACE.progress(cur, cand, dest)
        if adv is not None and adv > best:
            expected, best = cand, adv
    assert SPACE.closest_not_past(cur, dest, candidates) == expected


@given(ids16, ids16, ids16)
def test_progress_never_exceeds_distance_to_dest(cur, cand, dest):
    adv = SPACE.progress(cur, cand, dest)
    if adv is not None:
        assert 0 <= adv <= SPACE.distance_cw(cur, dest)


@given(ids16, ids16, ids16)
def test_interval_oc_consistent_with_distance(x, a, b):
    expected = (a == b) or (0 < SPACE.distance_cw(a, x) <= SPACE.distance_cw(a, b))
    assert SPACE.in_interval_oc(x, a, b) == expected
