"""Event-driven protocol simulation: concurrent joins, loss, timers."""

import pytest

from repro.intra.network import IntraDomainNetwork
from repro.intra.protocol_sim import ProtocolSimulator
from repro.topology.isp import synthetic_isp


@pytest.fixture()
def net():
    topo = synthetic_isp(n_routers=40, seed=31)
    return IntraDomainNetwork(topo, seed=31)


class TestSequentialJoins:
    def test_single_async_join_completes(self, net):
        sim = ProtocolSimulator(net, seed=0)
        pending = sim.join_host(net.next_planned_host())
        sim.run()
        assert pending.state == "done"
        assert pending.latency_ms > 0
        assert pending.messages > 0
        net.check_ring()

    def test_latency_reflects_link_delays(self, net):
        sim = ProtocolSimulator(net, seed=0)
        pending = sim.join_host(net.next_planned_host())
        sim.run()
        # At least one round trip over real links.
        assert pending.latency_ms >= 2 * 0.3

    def test_sequence_of_async_joins_is_consistent(self, net):
        sim = ProtocolSimulator(net, seed=0)
        for _ in range(15):
            sim.join_host(net.next_planned_host())
            sim.run()
        net.check_ring()
        assert all(p.state == "done" for p in sim.joins)


class TestConcurrentJoins:
    def test_batch_of_concurrent_joins_converges(self, net):
        """30 joins launched at t=0; in-flight messages interleave."""
        sim = ProtocolSimulator(net, seed=0)
        for _ in range(30):
            sim.join_host(net.next_planned_host())
        sim.run()
        assert all(p.state == "done" for p in sim.joins)
        net.check_ring()

    def test_concurrent_then_routable(self, net):
        sim = ProtocolSimulator(net, seed=0)
        for _ in range(20):
            sim.join_host(net.next_planned_host())
        sim.run()
        for _ in range(30):
            a, b = net.random_host_pair()
            assert net.send(a, b).delivered

    def test_staggered_waves(self, net):
        sim = ProtocolSimulator(net, seed=0)
        for wave in range(4):
            for _ in range(8):
                sim.join_host(net.next_planned_host())
            sim.run(until=sim.loop.now + 15.0)  # waves overlap in flight
        sim.run()
        assert all(p.state == "done" for p in sim.joins)
        net.check_ring()


class TestLossAndRetransmission:
    def test_joins_survive_lossy_network(self, net):
        sim = ProtocolSimulator(net, seed=3, loss_rate=0.12,
                                retransmit_ms=100.0, max_retries=30)
        for _ in range(20):
            sim.join_host(net.next_planned_host())
        sim.run()
        assert sim.messages_lost > 0           # loss actually happened
        assert sim.retransmissions > 0         # …and ARQ recovered it
        assert all(p.state == "done" for p in sim.joins)
        net.check_ring()

    def test_lossy_joins_cost_more_messages(self, net):
        lossless = ProtocolSimulator(net, seed=4)
        for _ in range(10):
            lossless.join_host(net.next_planned_host())
        lossless.run()
        clean_msgs = lossless.messages_sent

        topo = synthetic_isp(n_routers=40, seed=31)
        net2 = IntraDomainNetwork(topo, seed=31)
        lossy = ProtocolSimulator(net2, seed=4, loss_rate=0.15,
                                  retransmit_ms=80.0, max_retries=40)
        for _ in range(10):
            lossy.join_host(net2.next_planned_host())
        lossy.run()
        assert lossy.messages_sent > clean_msgs

    def test_extreme_loss_eventually_fails(self, net):
        sim = ProtocolSimulator(net, seed=5, loss_rate=0.95,
                                retransmit_ms=10.0, max_retries=2)
        pending = sim.join_host(net.next_planned_host())
        sim.run()
        if pending.state == "failed":
            # Rollback: the half-joined ID is gone everywhere.
            assert pending.vn.id not in net.vn_index
            assert pending.host.name not in net.hosts
        net.check_ring()

    def test_loss_rate_validation(self, net):
        with pytest.raises(ValueError):
            ProtocolSimulator(net, loss_rate=1.0)


class TestGuards:
    def test_duplicate_async_join_rejected(self, net):
        sim = ProtocolSimulator(net, seed=0)
        host = net.next_planned_host()
        sim.join_host(host)
        sim.run()
        with pytest.raises(ValueError):
            sim.join_host(host)

    def test_join_via_down_gateway_rejected(self, net):
        sim = ProtocolSimulator(net, seed=0)
        victim = net.topology.routers[0]
        net.lsmap.fail_router(victim)
        with pytest.raises(ValueError):
            sim.join_host(net.next_planned_host(), via_router=victim)

    def test_on_done_callback_fires(self, net):
        sim = ProtocolSimulator(net, seed=0)
        seen = []
        sim.join_host(net.next_planned_host(), on_done=seen.append)
        sim.run()
        assert len(seen) == 1 and seen[0].state == "done"
