"""Deterministic randomness helpers."""

import pytest

from repro.util.rng import (derive_rng, sample_zipf_counts, stable_hash,
                            weighted_choice, zipf_weights)


def test_stable_hash_is_stable_and_scoped():
    assert stable_hash(1, "a") == stable_hash(1, "a")
    assert stable_hash(1, "a") != stable_hash(1, "b")
    assert stable_hash(1, "a") != stable_hash(2, "a")


def test_derive_rng_streams_are_independent():
    a1 = derive_rng(0, "topology").random()
    a2 = derive_rng(0, "topology").random()
    b = derive_rng(0, "hosts").random()
    assert a1 == a2
    assert a1 != b


def test_zipf_weights_normalised_and_decreasing():
    w = zipf_weights(10)
    assert abs(sum(w) - 1.0) < 1e-9
    assert all(x >= y for x, y in zip(w, w[1:]))


def test_zipf_weights_rejects_bad_n():
    with pytest.raises(ValueError):
        zipf_weights(0)


def test_zipf_exponent_sharpens_head():
    flat = zipf_weights(100, exponent=0.5)
    sharp = zipf_weights(100, exponent=2.0)
    assert sharp[0] > flat[0]


def test_sample_zipf_counts_sum_and_determinism():
    rng1 = derive_rng(3, "x")
    rng2 = derive_rng(3, "x")
    c1 = sample_zipf_counts(rng1, 20, 1000)
    c2 = sample_zipf_counts(rng2, 20, 1000)
    assert sum(c1) == 1000
    assert c1 == c2
    assert min(c1) >= 0


def test_weighted_choice_respects_zero_weights():
    rng = derive_rng(0, "wc")
    picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0]) for _ in range(20)}
    assert picks == {"a"}


def test_weighted_choice_length_mismatch():
    with pytest.raises(ValueError):
        weighted_choice(derive_rng(0), ["a"], [0.5, 0.5])
