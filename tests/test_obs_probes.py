"""Live invariant probes: violations are structured, not exceptions."""

import pytest

from repro.inter.network import InterDomainNetwork
from repro.intra.network import IntraDomainNetwork
from repro.obs import trace
from repro.obs.probes import (CacheIsolationProbe, ProbeSet,
                              RingConsistencyProbe, SpfAgreementProbe)
from repro.obs.trace import TraceRecord, Tracer
from repro.topology.asgraph import synthetic_as_graph
from repro.topology.isp import synthetic_isp


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    trace.uninstall()


def _intra_net(seed=0):
    net = IntraDomainNetwork(synthetic_isp(n_routers=16, seed=seed),
                             seed=seed)
    net.join_random_hosts(30)
    return net


def _inter_net(seed=0):
    net = InterDomainNetwork(synthetic_as_graph(n_ases=24, seed=seed),
                             seed=seed, cache_entries=128)
    net.join_random_hosts(30)
    return net


class TestProbeSet:
    def test_for_network_picks_plane_specific_probes(self):
        intra = ProbeSet.for_network(_intra_net())
        assert {p.name for p in intra.probes} == {"ring-consistency",
                                                 "spf-agreement"}
        inter = ProbeSet.for_network(_inter_net())
        assert {p.name for p in inter.probes} == {"inter-ring-consistency",
                                                 "cache-isolation"}

    def test_healthy_networks_tick_clean(self):
        assert ProbeSet.for_network(_intra_net()).tick(1.0) == 0
        assert ProbeSet.for_network(_inter_net()).tick(1.0) == 0

    def test_violations_become_trace_records(self):
        tracer = Tracer()
        probes = ProbeSet([], tracer=tracer)
        report = probes._report_for(RingConsistencyProbe(None))
        report(error="synthetic")
        assert probes.violations[0].probe == "ring-consistency"
        assert [r.kind for r in tracer.sink.records()] == ["probe.violation"]

    def test_detach_stops_record_delivery(self):
        tracer = Tracer()
        probes = ProbeSet.for_network(_inter_net(), tracer=tracer)
        probes.detach()
        tracer.emit("cache.hit", asn="S-0", dest="00")
        assert probes.violations == []


class TestRingConsistency:
    def test_broken_successor_is_reported_not_raised(self):
        net = _intra_net()
        # Corrupt one member's primary successor to point at itself.
        victim = next(vn for vn in net.ring_members()
                      if vn.primary_successor() is not None)
        broken = victim.primary_successor()
        victim.successors[0] = type(broken)(
            dest_id=victim.id, path=(victim.router,), kind=broken.kind)
        probes = ProbeSet([RingConsistencyProbe(net)])
        assert probes.tick(5.0) == 1
        violation = probes.violations[0]
        assert violation.probe == "ring-consistency" and violation.t == 5.0
        assert "expects" in violation.detail["error"] \
            or "successor" in violation.detail["error"]


class TestSpfAgreement:
    def test_stale_path_cache_detected(self):
        net = _intra_net()
        probe = SpfAgreementProbe(net)
        probes = ProbeSet([probe])
        assert probes.tick(0.0) == 0
        # Poison one cached tree behind the cache's back: shortest-path
        # answers diverge from a fresh SPF until invalidation.
        src, dst = next((s, d) for s, d in probe._sample_pairs()
                        if d in net.paths._hop_tree(s))
        tree = net.paths._hop_tree(src)
        tree[dst] = list(tree[dst]) + [dst]  # one bogus extra hop
        assert probes.tick(1.0) >= 1
        assert probes.violations[0].detail["src"] == src


class TestCacheIsolation:
    def test_bloom_guard_bypass_detected_from_cache_hit_record(self):
        net = _inter_net()
        probe = CacheIsolationProbe(net)
        probes = ProbeSet([probe])
        asn = next(iter(net.ases))
        node = net.ases[asn]
        resident = next(iter(net.hosts.values()))
        node.subtree_bloom.add(resident.id)
        record = TraceRecord(seq=1, t=0.0, span=1, parent=-1,
                             kind="cache.hit",
                             data={"asn": str(asn),
                                   "dest": resident.id.to_hex()})
        probes.on_record(record)
        assert len(probes.violations) == 1
        assert probes.violations[0].detail["kind"] == "bloom-guard-bypassed"

    def test_stale_bloom_missing_resident_detected(self):
        net = _inter_net()
        probes = ProbeSet([CacheIsolationProbe(net)])
        assert probes.tick(0.0) == 0
        # Wipe one AS's bloom: its own hosted IDs are now "missing".
        victim = next(asn for asn, node in net.ases.items() if node.hosted)
        net.ases[victim].subtree_bloom._bits = 0
        assert probes.tick(1.0) >= 1
        kinds = {v.detail["kind"] for v in probes.violations}
        assert kinds == {"bloom-missing-resident"}


class TestWorkloadIntegration:
    def test_driver_runs_probes_and_reports_clean(self):
        from repro.workload import builtin_scenario, run_scenario
        scenario = builtin_scenario("steady-churn")
        result = run_scenario(scenario, probes=True)
        assert result.violations == []
        assert result.deterministic_view()["violations"] == []

    def test_traced_run_matches_untraced_run(self):
        """Enabling tracing must not perturb the seeded streams."""
        from repro.workload import builtin_scenario, run_scenario
        base = run_scenario(builtin_scenario("steady-churn"))
        tracer = Tracer()
        with trace.tracing(tracer):
            traced = run_scenario(builtin_scenario("steady-churn"),
                                  tracer=tracer, probes=True)
        assert tracer.records_emitted > 0
        a = base.deterministic_view()
        b = traced.deterministic_view()
        a.pop("violations"), b.pop("violations")
        assert a == b
