"""Stateful property testing of the intradomain ring.

Hypothesis drives arbitrary interleavings of joins, graceful leaves,
host failures, moves, link flaps and packet sends against one network,
checking after every step that

* the live members form a single consistent successor ring,
* every joined, reachable host is routable from anywhere,
* the network's host bookkeeping matches the routers' resident state.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.intra.network import IntraDomainNetwork
from repro.topology.isp import synthetic_isp


class RingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        topo = synthetic_isp(n_routers=24, seed=99)
        self.net = IntraDomainNetwork(topo, seed=99)
        self.flapped_link = None

    # -- rules -----------------------------------------------------------------

    @rule()
    def join_one(self):
        if self.net.n_hosts < 60:
            self.net.join_host(self.net.next_planned_host())

    @precondition(lambda self: self.net.n_hosts > 2)
    @rule(pick=st.integers(min_value=0, max_value=10 ** 6))
    def fail_one(self, pick):
        names = sorted(self.net.hosts)
        self.net.fail_host(names[pick % len(names)])

    @precondition(lambda self: self.net.n_hosts > 2)
    @rule(pick=st.integers(min_value=0, max_value=10 ** 6))
    def leave_one(self, pick):
        names = sorted(self.net.hosts)
        self.net.leave_host(names[pick % len(names)])

    @precondition(lambda self: self.net.n_hosts > 2)
    @rule(pick=st.integers(min_value=0, max_value=10 ** 6),
          where=st.integers(min_value=0, max_value=10 ** 6))
    def move_one(self, pick, where):
        names = sorted(self.net.hosts)
        mover = names[pick % len(names)]
        routers = self.net.topology.edge_routers()
        target = routers[where % len(routers)]
        if target != self.net.hosts[mover].router \
                and self.net.lsmap.is_router_up(target):
            self.net.move_host(mover, target)

    @precondition(lambda self: self.net.n_hosts >= 2)
    @rule(pick=st.integers(min_value=0, max_value=10 ** 6))
    def send_one(self, pick):
        names = sorted(self.net.hosts)
        a = names[pick % len(names)]
        b = names[(pick // 7 + 1) % len(names)]
        if a != b:
            assert self.net.send(a, b).delivered

    @precondition(lambda self: True)
    @rule(pick=st.integers(min_value=0, max_value=10 ** 6))
    def flap_link(self, pick):
        if self.flapped_link is not None:
            self.net.restore_link(*self.flapped_link)
            self.flapped_link = None
            return
        edges = sorted(self.net.lsmap.live_graph.edges())
        a, b = edges[pick % len(edges)]
        self.net.fail_link(a, b)
        if len(self.net.lsmap.components()) > 1:
            self.net.restore_link(a, b)  # keep the machine connected
        else:
            self.flapped_link = (a, b)

    # -- invariants ------------------------------------------------------------------

    @invariant()
    def ring_is_consistent(self):
        self.net.check_ring()

    @invariant()
    def bookkeeping_matches_router_state(self):
        for name, vn in self.net.hosts.items():
            router = self.net.routers[vn.router]
            assert router.hosts_id(vn.id)
            assert self.net.vn_index.get(vn.id) is vn

    @invariant()
    def primary_successors_are_live(self):
        # Deep group entries may go stale between repairs (the lazy
        # invariant-(b) teardown cleans them on use), but the primary
        # successor — what the ring's correctness rests on — must always
        # name a live identifier.
        for vn in self.net.ring_members():
            primary = vn.primary_successor()
            if primary is not None:
                assert primary.dest_id in self.net.vn_index


TestRingMachine = RingMachine.TestCase
TestRingMachine.settings = settings(max_examples=25,
                                    stateful_step_count=30,
                                    deadline=None)
