"""Proximity finger tables (Section 4.1)."""

import pytest

from repro.idspace.identifier import FlatId
from repro.inter.fingers import (lowest_containing_level, slot_arc,
                                 up_links_between)
from repro.inter.network import InterDomainNetwork
from repro.inter.policy import JoinStrategy
from repro.topology.asgraph import synthetic_as_graph


class TestSlotArcs:
    def test_arc_shares_prefix_and_digit(self):
        fid = FlatId(0xABCD << 112)
        low, high = slot_arc(fid, row=1, digit=0x3)
        assert low.digit(0, 4) == 0xA
        assert low.digit(1, 4) == 0x3
        assert high.value - low.value == (1 << 120) - 1

    def test_row_zero_partitions_space(self):
        fid = FlatId(0)
        covered = 0
        for digit in range(16):
            low, high = slot_arc(fid, 0, digit)
            covered += high.value - low.value + 1
        assert covered == 1 << 128

    def test_out_of_range_row(self):
        with pytest.raises(ValueError):
            slot_arc(FlatId(0), row=32, digit=0)


class TestFingerAcquisition:
    @pytest.fixture()
    def net(self, inter_net_factory):
        return inter_net_factory(n_hosts=120, n_fingers=12, seed=8)

    def test_fingers_acquired_up_to_budget(self, net):
        for vn in net.hosts.values():
            assert len(vn.fingers) <= 12

    def test_fingers_spread_over_digits(self, net):
        vn = max(net.hosts.values(), key=lambda v: len(v.fingers))
        digits = {f.dest_id.digit(0, 4) for f in vn.fingers}
        assert len(digits) >= min(6, len(vn.fingers))

    def test_finger_targets_exist(self, net):
        for vn in net.hosts.values():
            for f in vn.fingers:
                assert f.dest_id in net.id_owner_index
                assert net.id_owner_index[f.dest_id].home_as == f.dest_as

    def test_finger_level_preserves_isolation(self, net):
        """Each finger is formed at the lowest joined level containing its
        target — the table maintenance rule that preserves isolation."""
        for vn in list(net.hosts.values())[:30]:
            for f in vn.fingers:
                if f.level is None:
                    continue
                assert net.policy.level_contains(f.level, f.dest_as)
                expected = lowest_containing_level(net, vn, f.dest_as)
                assert len(net.policy.subtree(f.level)) == \
                    len(net.policy.subtree(expected))

    def test_ephemeral_strategy_skips_fingers(self, inter_net_factory):
        net = inter_net_factory(n_hosts=40, n_fingers=12, seed=9,
                                strategy=JoinStrategy.EPHEMERAL)
        assert all(len(vn.fingers) == 0 for vn in net.hosts.values())


class TestProximity:
    def test_up_links_metric(self, inter_net_readonly):
        net = inter_net_readonly
        stub = net.asg.stubs()[0]
        provider = net.asg.providers(stub)[0]
        ups, hops = up_links_between(net, stub, provider)
        assert (ups, hops) == (1, 1)
        assert up_links_between(net, stub, stub) == (0, 0)

    def test_proximity_choice_beats_random_on_stretch(self):
        """Ablation: proximity-selected fingers give lower mean stretch
        than no fingers at all, and fingers with more slots do better."""
        def stretch_for(n_fingers, seed=22):
            graph = synthetic_as_graph(n_ases=60, seed=seed)
            net = InterDomainNetwork(graph, n_fingers=n_fingers, seed=seed)
            net.join_random_hosts(100)
            vals = []
            for _ in range(120):
                a, b = net.random_host_pair()
                r = net.send(a, b)
                if r.delivered and r.optimal_hops > 0:
                    vals.append(r.stretch)
            return sum(vals) / len(vals)
        none = stretch_for(0)
        many = stretch_for(20)
        assert many < none
