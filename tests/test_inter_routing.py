"""Interdomain data routing: delivery, isolation, caches, bloom peering."""

import pytest

from repro.idspace.identifier import FlatId
from repro.inter import routing
from repro.inter.network import InterDomainNetwork
from repro.inter.policy import JoinStrategy
from repro.topology.asgraph import synthetic_as_graph


class TestDelivery:
    def test_many_pairs_deliver(self, inter_net_readonly):
        net = inter_net_readonly
        for _ in range(80):
            a, b = net.random_host_pair()
            result = net.send(a, b)
            assert result.delivered

    def test_path_endpoints(self, inter_net_readonly):
        net = inter_net_readonly
        a, b = net.random_host_pair()
        result = net.send(a, b)
        assert result.path[0] == net.hosts[a].home_as
        assert result.path[-1] == net.hosts[b].home_as

    def test_path_hops_are_real_adjacencies(self, inter_net_readonly):
        net = inter_net_readonly
        a, b = net.random_host_pair()
        result = net.send(a, b)
        for x, y in zip(result.path, result.path[1:]):
            assert net.policy.step_type(x, y) is not None

    def test_same_as_delivery(self, inter_net_factory):
        net = inter_net_factory(n_hosts=0)
        h1 = net.next_planned_host()
        h2 = net.next_planned_host()
        while h2.attach_at != h1.attach_at:
            h2 = net.next_planned_host()
        net.join_host(h1)
        net.join_host(h2)
        result = net.send(h1.name, h2.name)
        assert result.delivered and result.hops == 0

    def test_nonexistent_id_fails(self, inter_net_readonly):
        net = inter_net_readonly
        missing = FlatId(0x1234_5678_9ABC)
        assert missing not in net.id_owner_index
        result = net.send_to_id(net.asg.ases()[0], missing)
        assert not result.delivered


class TestIsolation:
    def test_isolation_holds_on_every_delivered_path(self, inter_net_readonly):
        """The paper: "we verified there were no cases in any of our
        experiments when the isolation property was broken"."""
        net = inter_net_readonly
        for _ in range(150):
            a, b = net.random_host_pair()
            result = net.send(a, b)
            if result.delivered:
                assert net.check_isolation(net.hosts[a].home_as,
                                           net.hosts[b].home_as, result.path)

    def test_intra_as_traffic_stays_internal(self, inter_net_factory):
        """"As a corollary, traffic internal to an AS stays internal."""
        net = inter_net_factory(n_hosts=0, seed=21)
        h1 = net.next_planned_host()
        h2 = net.next_planned_host()
        while h2.attach_at != h1.attach_at:
            h2 = net.next_planned_host()
        net.join_host(h1)
        net.join_host(h2)
        result = net.send(h1.name, h2.name)
        assert result.delivered
        assert set(result.path) == {h1.attach_at}


class TestStretch:
    def test_stretch_vs_bgp_reasonable(self, inter_net_readonly):
        net = inter_net_readonly
        stretches = []
        for _ in range(120):
            a, b = net.random_host_pair()
            result = net.send(a, b)
            if result.delivered and result.optimal_hops > 0:
                stretches.append(result.stretch)
        mean = sum(stretches) / len(stretches)
        assert 1.0 <= mean < 5.0  # the paper's regime is ~2-3

    def test_fingers_reduce_stretch(self):
        def mean_stretch(n_fingers, seed=15):
            graph = synthetic_as_graph(n_ases=60, seed=seed)
            net = InterDomainNetwork(graph, n_fingers=n_fingers, seed=seed)
            net.join_random_hosts(120)
            vals = []
            for _ in range(150):
                a, b = net.random_host_pair()
                r = net.send(a, b)
                if r.delivered and r.optimal_hops > 0:
                    vals.append(r.stretch)
            return sum(vals) / len(vals)
        assert mean_stretch(16) < mean_stretch(0)


class TestCaches:
    def test_caches_enabled_reduce_or_keep_stretch(self):
        def run(cache):
            graph = synthetic_as_graph(n_ases=60, seed=16)
            net = InterDomainNetwork(graph, n_fingers=4, seed=16,
                                     cache_entries=cache)
            net.join_random_hosts(120)
            vals = []
            for _ in range(150):
                a, b = net.random_host_pair()
                r = net.send(a, b)
                if r.delivered and r.optimal_hops > 0:
                    vals.append(r.stretch)
            return sum(vals) / len(vals)
        assert run(2048) <= run(0) + 0.05

    def test_cache_guarded_by_bloom_isolation(self, inter_net_factory):
        """A cached pointer must not be used when the destination is
        below the caching AS (Section 4.1's isolation guard)."""
        net = inter_net_factory(n_hosts=60, cache_entries=512, seed=17)
        # Find a transit AS with cache entries and a destination below it.
        for asn, node in net.ases.items():
            subtree = net.policy.subtree(asn)
            below = [vn for vn in net.hosts.values()
                     if vn.home_as in subtree and vn.home_as != asn]
            if len(node.cache) and below:
                match = node._cache_match(net, below[0].id, None, None, None)
                if below[0].id in node.subtree_bloom:
                    assert match is None
                break


class TestBloomPeering:
    def test_bloom_mode_delivers(self, inter_net_factory):
        net = inter_net_factory(n_hosts=100, peering_mode="bloom",
                                strategy=JoinStrategy.PEERING, seed=18,
                                n_fingers=4)
        delivered = 0
        for _ in range(60):
            a, b = net.random_host_pair()
            delivered += net.send(a, b).delivered
        assert delivered == 60

    def test_bloom_mode_joins_cost_less_than_virtual_as(self):
        g1 = synthetic_as_graph(n_ases=60, seed=19)
        vas = InterDomainNetwork(g1, n_fingers=4, seed=19,
                                 strategy=JoinStrategy.PEERING,
                                 peering_mode="virtual_as")
        vas.join_random_hosts(80)
        g2 = synthetic_as_graph(n_ases=60, seed=19)
        blm = InterDomainNetwork(g2, n_fingers=4, seed=19,
                                 strategy=JoinStrategy.PEERING,
                                 peering_mode="bloom")
        blm.join_random_hosts(80)
        assert (sum(blm.stats.operation_costs("join"))
                < sum(vas.stats.operation_costs("join")))

    def test_invalid_mode_rejected(self, as_graph):
        with pytest.raises(ValueError):
            InterDomainNetwork(as_graph, peering_mode="nope")


class TestScopedRouting:
    def test_scoped_lookup_stays_in_subtree(self, inter_net_readonly):
        net = inter_net_readonly
        # Pick a tier-2 level with a populated ring.
        for level, ring in net.rings.items():
            if isinstance(level, str) and level.startswith("T2") and len(ring) > 3:
                probe = FlatId(ring.keys()[1].value + 1)
                outcome = routing.route(net, ring[ring.keys()[0]].home_as,
                                        probe, mode="lookup", scope=level,
                                        category="test", use_cache=False)
                if outcome.delivered:
                    subtree = net.policy.subtree(level)
                    assert all(asn in subtree for asn in outcome.as_path)
                break
