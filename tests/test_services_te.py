"""Traffic-engineering services (Section 5.1)."""

import pytest

from repro.idspace.crypto import KeyPair
from repro.inter.network import InterDomainNetwork
from repro.services.traffic_eng import (MultihomedSuffixJoin,
                                        build_regional_hierarchy,
                                        negotiate_path_set, send_negotiated)
from repro.topology.hosts import PlannedHost


@pytest.fixture()
def net(inter_net_factory):
    return inter_net_factory(n_hosts=100, seed=6, n_fingers=6)


class TestNegotiation:
    def test_negotiated_set_covers_both_hierarchies(self, net):
        a, b = net.random_host_pair()
        src, dst = net.hosts[a].home_as, net.hosts[b].home_as
        neg = negotiate_path_set(net, src, dst)
        assert src in neg.allowed_ases and dst in neg.allowed_ases

    def test_post_negotiation_stretch_is_one(self, net):
        """"stretch for remaining packets can be reduced to one"."""
        stretches = []
        for _ in range(25):
            a, b = net.random_host_pair()
            neg = negotiate_path_set(net, net.hosts[a].home_as,
                                     net.hosts[b].home_as)
            result, within = send_negotiated(net, a, b, neg)
            assert result.delivered
            if within and result.optimal_hops > 0:
                stretches.append(result.stretch)
        assert stretches and sum(stretches) / len(stretches) <= 1.3

    def test_destination_selection_validated(self, net):
        a, b = net.random_host_pair()
        with pytest.raises(ValueError):
            negotiate_path_set(net, net.hosts[a].home_as,
                               net.hosts[b].home_as,
                               dst_selection={"not-an-upstream"})

    def test_destination_can_prune_providers(self, net):
        a, b = net.random_host_pair()
        dst_as = net.hosts[b].home_as
        up = net.policy.hierarchy.up_chain(dst_as)
        neg = negotiate_path_set(net, net.hosts[a].home_as, dst_as,
                                 dst_selection=set(up[:2]))
        assert dst_as in neg.allowed_ases

    def test_negotiation_charged(self, net):
        before = net.stats.total_messages("negotiation")
        a, b = net.random_host_pair()
        negotiate_path_set(net, net.hosts[a].home_as, net.hosts[b].home_as)
        assert net.stats.total_messages("negotiation") > before


class TestMultihomedSuffixes:
    def make_te(self, net):
        home = next(asn for asn in net.asg.ases()
                    if len(net.asg.providers(asn)) >= 2
                    and net.asg.hosts(asn) > 0)
        host = PlannedHost(name="te-host", attach_at=home,
                           key_pair=KeyPair.generate(b"te-key",
                                                     net.authority))
        return MultihomedSuffixJoin(net, host, "te-group")

    def test_one_suffix_per_provider(self, net):
        te = self.make_te(net)
        suffix_map = te.join_all()
        providers = set(net.asg.providers(te.host.attach_at))
        assert {p for p, _ in suffix_map.values()} == providers

    def test_suffix_selects_entry_provider(self, net):
        """Traffic arriving over an *access (provider) link* must use the
        engineered provider.  (A ring predecessor inside the home AS's own
        customer cone may hand packets up from below — that is not an
        access link, so the multihoming policy does not apply to it.)"""
        te = self.make_te(net)
        te.join_all()
        home = te.host.attach_at
        src_as = next(vn.home_as for vn in net.hosts.values()
                      if vn.home_as != home)
        checked = 0
        for suffix, (provider, _) in te.suffix_map.items():
            result, engineered = te.send_via(src_as, suffix)
            assert result.delivered
            entered = te.entry_provider(result.path)
            if entered is not None and net.asg.is_provider_of(entered, home):
                assert entered == engineered == provider
                checked += 1
        assert checked >= 1

    def test_requires_multihomed_as(self, net):
        stub = next(asn for asn in net.asg.ases()
                    if len(net.asg.providers(asn)) == 0)
        host = PlannedHost(name="x", attach_at=stub,
                           key_pair=KeyPair.generate(b"x", net.authority))
        with pytest.raises(ValueError):
            MultihomedSuffixJoin(net, host, "g").join_all()


class TestRegionalRings:
    def test_regional_hierarchy_shape(self):
        asg = build_regional_hierarchy({"EU": 100, "US": 200})
        assert set(asg.ases()) == {"GLOBAL", "EU", "US"}
        assert asg.providers("EU") == ["GLOBAL"]
        assert asg.hosts("US") == 200

    def test_regional_isolation(self):
        """Intra-region traffic must not transit inter-region links."""
        asg = build_regional_hierarchy({"EU": 50, "US": 50, "APAC": 50})
        net = InterDomainNetwork(asg, n_fingers=4, seed=9)
        net.join_random_hosts(60)
        net.check_rings()
        same_region_pairs = 0
        for _ in range(200):
            a, b = net.random_host_pair()
            if net.hosts[a].home_as != net.hosts[b].home_as:
                continue
            same_region_pairs += 1
            result = net.send(a, b)
            assert result.delivered
            assert set(result.path) == {net.hosts[a].home_as}
        assert same_region_pairs > 0
