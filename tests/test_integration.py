"""End-to-end scenarios crossing module boundaries, including churn mixes."""

import random


from repro import quick_interdomain, quick_intradomain
from repro.inter.policy import JoinStrategy
from repro.services.anycast import AnycastGroup
from repro.services.multicast import MulticastGroup


class TestQuickstarts:
    def test_quick_intradomain(self):
        net = quick_intradomain(n_routers=30, n_hosts=40, seed=1)
        net.check_ring()
        a, b = net.random_host_pair()
        assert net.send(a, b).delivered

    def test_quick_interdomain(self):
        net = quick_interdomain(n_ases=40, n_hosts=60, seed=1)
        net.check_rings()
        a, b = net.random_host_pair()
        assert net.send(a, b).delivered


class TestIntradomainChurn:
    def test_mixed_churn_keeps_invariants(self, intra_net_factory):
        net = intra_net_factory(n_hosts=50, seed=11)
        rng = random.Random(11)
        for step in range(60):
            op = rng.random()
            if op < 0.45:
                net.join_random_hosts(1)
            elif op < 0.75 and len(net.hosts) > 5:
                net.fail_host(rng.choice(sorted(net.hosts)))
            elif op < 0.9:
                a, b = rng.choice(list(net.lsmap.live_graph.edges()))
                net.fail_link(a, b)
                if len(net.lsmap.components()) > 1:
                    net.restore_link(a, b)
            else:
                a, b = net.random_host_pair()
                assert net.send(a, b).delivered
            net.check_ring()
        # Final sweep: everyone reaches everyone.
        for _ in range(40):
            a, b = net.random_host_pair()
            assert net.send(a, b).delivered

    def test_router_failures_then_partition(self, intra_net_factory):
        net = intra_net_factory(n_hosts=60, seed=12)
        victims = [r for r in net.topology.routers[:3]]
        for victim in victims:
            if net.lsmap.is_router_up(victim):
                net.fail_router(victim)
                net.check_ring()
        pops = sorted(net.topology.pops)
        net.partition_pop(pops[-1])
        net.check_ring()

    def test_services_coexist_with_churn(self, intra_net_factory):
        net = intra_net_factory(n_hosts=40, seed=13)
        anycast = AnycastGroup(net, "resolver")
        mcast = MulticastGroup(net, "feed")
        routers = net.topology.edge_routers()
        for i in range(3):
            anycast.add_server(routers[i])
            mcast.join("m{}".format(i), routers[i + 5])
        rng = random.Random(13)
        for _ in range(10):
            net.fail_host(rng.choice(sorted(
                h for h, vn in net.hosts.items()
                if vn.host_name and vn.host_name.startswith("h"))))
            net.check_ring()
        assert anycast.send(routers[10]).delivered
        assert len(mcast.multicast("m0").receivers) == 3


class TestInterdomainChurn:
    def test_join_fail_interleave(self, inter_net_factory):
        net = inter_net_factory(n_hosts=80, seed=14, n_fingers=4)
        rng = random.Random(14)
        stubs = [s for s in net.asg.stubs()]
        for step in range(6):
            net.join_random_hosts(10)
            candidates = [s for s in stubs
                          if net.as_is_up(s) and len(net.ases[s].hosted) > 0]
            if len(candidates) > 4:
                net.fail_as(rng.choice(candidates))
            net.check_rings()
        for _ in range(40):
            a, b = net.random_host_pair()
            assert net.send(a, b).delivered

    def test_mixed_strategies_coexist(self, inter_net_factory):
        """Hosts with different joining strategies share one Internet and
        can all reach each other through the global ring."""
        net = inter_net_factory(n_hosts=0, seed=15, n_fingers=4)
        strategies = list(JoinStrategy)
        names = []
        for i in range(60):
            host = net.next_planned_host()
            net.join_host(host, strategy=strategies[i % len(strategies)])
            names.append(host.name)
        rng = random.Random(15)
        for _ in range(60):
            a, b = rng.sample(names, 2)
            assert net.send(a, b).delivered


class TestCrossScale:
    def test_intra_results_scale_with_topology(self):
        small = quick_intradomain(n_routers=24, n_hosts=40, seed=5)
        large = quick_intradomain(n_routers=96, n_hosts=40, seed=5)
        small_cost = sum(small.stats.operation_costs("join")) / 40
        large_cost = sum(large.stats.operation_costs("join")) / 40
        # Bigger diameter → proportionally more join messages.
        assert large_cost > small_cost

    def test_deterministic_replay(self):
        a = quick_intradomain(n_routers=30, n_hosts=50, seed=42)
        b = quick_intradomain(n_routers=30, n_hosts=50, seed=42)
        assert a.stats.operation_costs("join") == b.stats.operation_costs("join")
        pa, pb = a.random_host_pair(), b.random_host_pair()
        assert pa == pb
        assert a.send(*pa).path == b.send(*pb).path
