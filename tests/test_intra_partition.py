"""Partition detection and zero-ID ring merging (Section 3.2, Fig 7)."""

import random

import pytest

from repro.intra.partition import pop_boundary_links, zero_id


class TestBoundary:
    def test_boundary_links_have_one_foot_in_pop(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        members = set(net.topology.routers_in_pop(0))
        for a, b in pop_boundary_links(net, 0):
            assert (a in members) != (b in members)

    def test_unknown_pop_raises(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        with pytest.raises(KeyError):
            pop_boundary_links(net, "no-such-pop")


class TestZeroId:
    def test_zero_id_is_component_minimum(self, intra_net_factory):
        net = intra_net_factory(n_hosts=30)
        component = set(net.lsmap.live_routers())
        zid = zero_id(net, component)
        assert zid == min(vn.id for vn in net.ring_members())

    def test_zero_id_empty_component(self, intra_net_factory):
        net = intra_net_factory(n_hosts=5)
        assert zero_id(net, set()) is None


class TestPartitionCycle:
    def test_single_cycle_converges(self, intra_net_factory):
        net = intra_net_factory(n_hosts=60, seed=3)
        report = net.partition_pop(0)  # includes the consistency check
        assert report.disconnect_messages >= 0
        assert report.reconnect_messages > 0
        assert report.cut_links

    def test_every_pop_converges(self, intra_net_factory):
        """The paper: "our approach converged correctly in every case"."""
        net = intra_net_factory(n_hosts=80, seed=4)
        for pop in sorted(net.topology.pops):
            net.partition_pop(pop)
            net.check_ring()

    def test_delivery_restored_after_cycle(self, intra_net_factory):
        net = intra_net_factory(n_hosts=60, seed=5)
        net.partition_pop(1)
        for _ in range(40):
            a, b = net.random_host_pair()
            assert net.send(a, b).delivered

    def test_rings_heal_separately_while_disconnected(self, intra_net_factory):
        from repro.intra import partition as P
        net = intra_net_factory(n_hosts=60, seed=6)
        cut = P.pop_boundary_links(net, 0)
        for a, b in cut:
            net.lsmap.fail_link(a, b)
        P.heal_components(net)
        # Each component's members form a consistent ring.
        net.check_ring()
        assert len(net.lsmap.components()) >= 2
        for a, b in cut:
            net.lsmap.restore_link(a, b)
        P.merge_rings(net, set(net.topology.routers_in_pop(0)))
        net.check_ring()

    def test_repair_cost_tracks_pop_population(self, intra_net_factory):
        """Fig 7's shape: overhead grows with the IDs in the PoP and is
        on the order of rejoining them."""
        net_small = intra_net_factory(n_hosts=20, seed=7)
        net_big = intra_net_factory(n_hosts=160, seed=7)
        rep_small = net_small.partition_pop(0)
        rep_big = net_big.partition_pop(0)
        assert rep_big.ids_in_pop > rep_small.ids_in_pop
        assert rep_big.total_messages > rep_small.total_messages
        join_costs = net_big.stats.operation_costs("join")
        avg_join = sum(join_costs) / len(join_costs)
        rejoin_baseline = max(1.0, rep_big.ids_in_pop * avg_join)
        assert rep_big.total_messages < 20 * rejoin_baseline

    def test_repeated_cycles_on_same_pop(self, intra_net_factory):
        net = intra_net_factory(n_hosts=50, seed=8)
        for _ in range(3):
            net.partition_pop(2)
            net.check_ring()

    def test_churn_between_cycles(self, intra_net_factory):
        net = intra_net_factory(n_hosts=50, seed=9)
        rng = random.Random(0)
        for pop in (0, 1):
            net.partition_pop(pop)
            net.join_random_hosts(10)
            net.fail_host(rng.choice(sorted(net.hosts)))
            net.check_ring()
