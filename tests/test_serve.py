"""The persistent request-serving mode (``repro.serve``)."""

import io
import json
import socket
import struct
import threading

import pytest

from repro import snapshot
from repro.serve import ReproServer, build_network
from repro.util import perf


@pytest.fixture(scope="module")
def server():
    """One resident intradomain network shared by the read-only tests."""
    return ReproServer(build_network(kind="intra", seed=1, n_routers=20,
                                     hosts=40))


def ok(server, **request):
    response = server.handle(request)
    assert response["ok"], response
    return response


def err(server, **request):
    response = server.handle(request)
    assert not response["ok"], response
    return response["error"]


class TestDispatch:
    def test_ping(self, server):
        assert ok(server, op="ping")["pong"] is True

    def test_id_echoed(self, server):
        assert ok(server, op="ping", id=42)["id"] == 42

    def test_info(self, server):
        info = ok(server, op="info")
        assert info["kind"] == "intra"
        assert info["routers"] == 20
        assert info["hosts"] >= 40
        assert info["rng_streams"] >= 2

    def test_send(self, server):
        result = ok(server, op="send", n=25)
        assert result["sent"] == 25
        assert result["delivered"] == 25
        assert result["mean_stretch"] >= 1.0 or result["mean_stretch"] == 0.0

    def test_route(self, server):
        result = ok(server, op="route", src="h0", dst="h1")
        assert result["delivered"] is True
        assert result["hops"] == len(result["path"]) - 1
        assert result["stretch"] >= 0.0

    def test_route_unknown_host(self, server):
        assert "unknown host" in err(server, op="route", src="h0",
                                     dst="nope")

    def test_state_hash_and_verify(self, server):
        digest = ok(server, op="state_hash")["state_hash"]
        assert digest == snapshot.state_hash(server.net)
        verdict = ok(server, op="verify")
        assert verdict["clean"] is True and verdict["violations"] == []

    def test_metrics_include_request_latency(self, server):
        ok(server, op="ping")
        metrics = ok(server, op="metrics")
        assert "serve.request.ping" in metrics["perf"]["timers"]
        assert metrics["perf"]["timers"]["serve.request.ping"]["calls"] >= 1
        assert "messages_total" in metrics["stats"] or metrics["stats"]

    def test_metrics_latency_percentiles(self, server):
        ok(server, op="ping")
        latency = ok(server, op="metrics")["latency"]
        assert "ping" in latency
        row = latency["ping"]
        assert row["count"] >= 1
        assert 0 <= row["p50"] <= row["p95"] <= row["p99"] <= row["max"]

    def test_metrics_text_renders_prometheus(self, server):
        ok(server, op="ping")
        reply = ok(server, op="metrics_text")
        assert reply["content_type"].startswith("text/plain")
        text = reply["text"]
        assert "# TYPE repro_net_hosts gauge" in text
        assert "repro_net_hosts 40" in text
        assert "repro_serve_request_ping_calls_total" in text
        assert 'quantile="0.99"' in text  # serve.latency summaries

    def test_unknown_op_lists_choices(self, server):
        message = err(server, op="frobnicate")
        assert "unknown op" in message and "ping" in message

    def test_malformed_request_shapes(self, server):
        assert not server.handle(["not", "a", "dict"])["ok"]
        assert not server.handle({})["ok"]
        assert not server.handle({"op": 7})["ok"]

    def test_bad_params_do_not_kill_server(self, server):
        assert "n must be" in err(server, op="send", n=0)
        assert "n must be" in err(server, op="join", n=-1)
        assert ok(server, op="ping")["pong"] is True


class TestMutatingOps:
    def test_join_leave_cycle(self):
        server = ReproServer(build_network(kind="intra", seed=2,
                                           n_routers=16, hosts=10))
        joined = ok(server, op="join", n=5)
        assert joined["joined"] == 5 and joined["total_hosts"] == 15
        left = ok(server, op="leave", host=joined["hosts"][0])
        assert left["total_hosts"] == 14 and left["messages"] >= 0
        server.net.check_ring()

    def test_leave_needs_intra(self):
        server = ReproServer(build_network(kind="inter", seed=2, n_ases=20,
                                           hosts=10))
        name = ok(server, op="join", n=1)["hosts"][0]
        assert "intradomain" in err(server, op="leave", host=name)

    def test_save_then_warm_start_equivalence(self, tmp_path):
        server = ReproServer(build_network(kind="intra", seed=4,
                                           n_routers=16, hosts=20))
        path = str(tmp_path / "resident.snap")
        saved = ok(server, op="save", path=path)
        assert saved["state_hash"] == snapshot.describe(path)["state_hash"]
        twin = ReproServer(snapshot.load(path, verify=True))
        assert (ok(server, op="send", n=10) == {
            k: v for k, v in ok(twin, op="send", n=10).items()})

    def test_workload_runs_on_resident_network(self):
        server = ReproServer(build_network(kind="intra", seed=0,
                                           n_routers=40, hosts=0))
        result = ok(server, op="workload", scenario="steady-churn")
        assert result["scenario"] == "steady-churn"
        assert result["totals"]["joins"] > 0
        assert server.net.n_hosts > 0      # the resident network mutated

    def test_workload_kind_mismatch(self, server):
        assert "resident network" in err(server, op="workload",
                                         scenario="depeering")

    def test_workload_needs_scenario(self, server):
        assert "scenario" in err(server, op="workload")


class TestLineProtocol:
    def test_twenty_request_session(self):
        server = ReproServer(build_network(kind="intra", seed=5,
                                           n_routers=16, hosts=30))
        requests = [{"op": "ping", "id": i} for i in range(10)]
        requests += [{"op": "send", "n": 2, "id": 10 + i} for i in range(9)]
        requests.append({"op": "shutdown", "id": 19})
        stdin = io.StringIO(
            "\n".join(json.dumps(r) for r in requests) + "\n")
        stdout = io.StringIO()
        answered = server.serve_stdio(stdin, stdout)
        lines = stdout.getvalue().splitlines()
        assert answered == 20 and len(lines) == 20
        for i, line in enumerate(lines):
            response = json.loads(line)
            assert response["ok"] and response["id"] == i

    def test_blank_lines_and_garbage_tolerated(self, server):
        out = io.StringIO()
        server.serve_lines(["", "   ", "not json", '{"op": "ping"}'], out)
        lines = [json.loads(l) for l in out.getvalue().splitlines()]
        assert [r["ok"] for r in lines] == [False, True]

    def test_shutdown_stops_the_loop(self, server):
        out = io.StringIO()
        answered = server.serve_lines(
            ['{"op": "shutdown"}', '{"op": "ping"}'], out)
        assert answered == 1
        server._shutdown = False           # shared fixture: re-arm

    def test_tcp_transport(self):
        server = ReproServer(build_network(kind="intra", seed=6,
                                           n_routers=16, hosts=20))
        port_box = []
        ready = threading.Event()

        def run():
            server.serve_tcp(port=0, ready=lambda p: (port_box.append(p),
                                                      ready.set()))

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10)
        with socket.create_connection(("127.0.0.1", port_box[0]),
                                      timeout=10) as sock:
            fh = sock.makefile("rw", encoding="utf-8")
            for request in ({"op": "ping"}, {"op": "info"},
                            {"op": "send", "n": 3}, {"op": "shutdown"}):
                fh.write(json.dumps(request) + "\n")
                fh.flush()
                response = json.loads(fh.readline())
                assert response["ok"], response
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestSustainedLoad:
    def test_thousand_sends_against_resident_2k_network(self):
        """Acceptance: >=1000 route/send requests against a resident
        2k-host network, every one delivered and timed."""
        server = ReproServer(build_network(kind="intra", seed=0,
                                           n_routers=40, hosts=2000))
        perf.reset()
        delivered = 0
        for i in range(1000):
            delivered += ok(server, op="send", n=1, id=i)["delivered"]
        assert delivered == 1000
        timer = perf.snapshot()["timers"]["serve.request.send"]
        assert timer["calls"] == 1000


class TestTcpHardening:
    @staticmethod
    def _start_tcp(server, port=0, timeout=None):
        port_box, ready = [], threading.Event()
        thread = threading.Thread(
            target=lambda: server.serve_tcp(
                port=port, timeout=timeout,
                ready=lambda p: (port_box.append(p), ready.set())),
            daemon=True)
        thread.start()
        assert ready.wait(10)
        return thread, port_box[0]

    @staticmethod
    def _rpc(port, *requests):
        """One connection, N request/response lines, then a clean close.

        Closing the makefile handle matters: it holds a dup of the
        socket fd, and the single-threaded server would stay blocked on
        a connection whose handle merely went out of scope.
        """
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            fh = s.makefile("rw", encoding="utf-8")
            try:
                replies = []
                for request in requests:
                    fh.write(request + "\n")
                    fh.flush()
                    replies.append(json.loads(fh.readline()))
                return replies
            finally:
                fh.close()

    @classmethod
    def _shutdown(cls, port):
        assert cls._rpc(port, '{"op": "shutdown"}')[0]["ok"]

    def test_reuse_addr_is_set_before_bind(self):
        from repro.serve import _ReuseAddrTCPServer
        # The class attribute is what TCPServer.__init__ consults before
        # it binds; an instance attribute set afterwards never could.
        assert _ReuseAddrTCPServer.allow_reuse_address is True
        server = _ReuseAddrTCPServer(("127.0.0.1", 0), None,
                                     bind_and_activate=True)
        try:
            assert server.socket.getsockopt(socket.SOL_SOCKET,
                                            socket.SO_REUSEADDR) != 0
        finally:
            server.server_close()

    def test_bind_twice_regression(self):
        """A restart must be able to rebind the port a previous server
        (with live TIME_WAIT connections) just released."""
        first = ReproServer(build_network(kind="intra", seed=6,
                                          n_routers=16, hosts=10))
        thread, port = self._start_tcp(first)
        self._shutdown(port)
        thread.join(timeout=10)
        assert not thread.is_alive()

        second = ReproServer(build_network(kind="intra", seed=6,
                                           n_routers=16, hosts=10))
        thread, port_again = self._start_tcp(second, port=port)
        assert port_again == port
        self._shutdown(port)
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_survives_mid_request_hangup(self):
        server = ReproServer(build_network(kind="intra", seed=6,
                                           n_routers=16, hosts=10))
        thread, port = self._start_tcp(server)
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        sock.sendall(b'{"op": "ping"}\n')
        buf = b""
        while not buf.endswith(b"\n"):
            buf += sock.recv(4096)
        assert json.loads(buf)["ok"]
        # Half a request, then an abrupt RST instead of a newline.
        # (No makefile() here: its dup'd fd would keep the connection
        # alive past close() and the RST would never go out.)
        sock.sendall(b'{"op": "se')
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
        sock.close()
        # The server must shrug and answer the next connection.
        assert self._rpc(port, '{"op": "ping"}')[0]["ok"]
        self._shutdown(port)
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_idle_connection_times_out(self):
        server = ReproServer(build_network(kind="intra", seed=6,
                                           n_routers=16, hosts=10))
        thread, port = self._start_tcp(server, timeout=0.3)
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            s.settimeout(10)
            # Say nothing; the server must hang up on us, not wedge.
            assert s.recv(4096) == b""
        assert self._rpc(port, '{"op": "ping"}')[0]["ok"]
        self._shutdown(port)
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestTransportEquivalence:
    SCRIPT = ['{"op": "ping", "id": 1}',
              '{"op": "join", "n": 5, "id": 2}',
              '{"op": "send", "n": 10, "id": 3}',
              '{"op": "route", "src": "h0", "dst": "h3", "id": 4}',
              '{"op": "state_hash", "id": 5}',
              '{"op": "shutdown", "id": 6}']

    @staticmethod
    def _fresh():
        return ReproServer(build_network(kind="intra", seed=9,
                                         n_routers=16, hosts=20))

    def test_stdio_and_tcp_tapes_are_byte_identical(self):
        stdio_out = io.StringIO()
        self._fresh().serve_lines(self.SCRIPT, stdio_out)

        tcp_server = self._fresh()
        thread, port = TestTcpHardening._start_tcp(tcp_server)
        tape = []
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            fh = s.makefile("rw", encoding="utf-8")
            for line in self.SCRIPT:
                fh.write(line + "\n")
                fh.flush()
                tape.append(fh.readline())
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert "".join(tape) == stdio_out.getvalue()


class TestShardedServer:
    @pytest.fixture(scope="class")
    def sharded_server(self):
        from repro.serve import ShardedReproServer
        from repro.sim.shard import ShardCoordinator
        sim = ShardCoordinator({"n_ases": 40, "seed": 3,
                                "cache_entries": 0},
                               n_shards=2, window_ops=32).start()
        try:
            yield ShardedReproServer(sim)
        finally:
            sim.close()

    def test_join_send_metrics(self, sharded_server):
        assert ok(sharded_server, op="ping")["pong"] is True
        joined = ok(sharded_server, op="join", n=60)
        assert joined["joined"] == 60
        assert joined["total_hosts"] == 60
        sent = ok(sharded_server, op="send", n=20)
        assert sent["sent"] == 20
        assert sent["delivered"] >= 19
        metrics = ok(sharded_server, op="metrics")
        assert metrics["stats"]
        assert metrics["lookup_mismatches"] == 0
        assert metrics["perf"]["gauges"]["shard.count"] == 2

    def test_info_and_state_hash(self, sharded_server):
        info = ok(sharded_server, op="info")
        assert info["kind"] == "inter"
        assert info["shards"] == 2
        digest = ok(sharded_server, op="state_hash")["state_hash"]
        assert len(digest) == 64

    def test_unsupported_ops_reject_cleanly(self, sharded_server):
        for op in ("route", "leave", "workload", "verify"):
            assert "--shards" in err(sharded_server, op=op)

    def test_save_writes_canonical_replica(self, sharded_server,
                                           tmp_path):
        path = str(tmp_path / "sharded-serve.snap")
        saved = ok(sharded_server, op="save", path=path)
        assert saved["state_hash"] == ok(
            sharded_server, op="state_hash")["state_hash"]
        net = snapshot.load(path, verify=True)
        assert len(net.hosts) == 60

    def test_metrics_merge_shard_registries_live(self, sharded_server):
        """Regression: metrics must expose per-shard gauges and the
        coordinator's live window-fold, not just coordinator-local perf."""
        ok(sharded_server, op="ping")
        metrics = ok(sharded_server, op="metrics")
        gauges = metrics["perf"]["gauges"]
        assert gauges["shard.count"] == 2
        for k in (0, 1):
            assert "shard.{}.hosts".format(k) in gauges
            assert "shard.{}.owned_ases".format(k) in gauges
        # Installs run lock-step on every replica, so each shard's full
        # replica holds all hosts; AS ownership is what's partitioned.
        assert gauges["shard.0.hosts"] == gauges["shard.1.hosts"] == 60
        assert (gauges["shard.0.owned_ases"]
                + gauges["shard.1.owned_ases"]) == 40
        # Worker-side simulation timers reach the merged snapshot.
        assert "inter.join" in metrics["perf"]["timers"]
        # Coordinator-side request latency histograms ride along too.
        assert metrics["latency"]["ping"]["count"] >= 1
        live = metrics["live"]
        assert live["windows_synced"] >= 1
        assert live["counters"].get("shard.windows") == \
            live["windows_synced"]
        assert metrics["requests_served"] >= 1

    def test_metrics_text_includes_shard_lines(self, sharded_server):
        reply = ok(sharded_server, op="metrics_text")
        assert reply["content_type"].startswith("text/plain")
        text = reply["text"]
        assert "repro_shard_count 2" in text
        assert "repro_shard_0_hosts" in text
        assert "repro_inter_join_calls_total" in text
