"""Discrete-event kernel tests."""

import pytest

from repro.sim.engine import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(3.0, lambda: fired.append("c"))
    loop.schedule(1.0, lambda: fired.append("a"))
    loop.schedule(2.0, lambda: fired.append("b"))
    loop.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(1.0, lambda: fired.append(2))
    loop.run()
    assert fired == [1, 2]


def test_now_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(5.0, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [5.0]
    assert loop.now == 5.0


def test_cannot_schedule_in_past():
    with pytest.raises(ValueError):
        EventLoop().schedule(-1.0, lambda: None)


def test_cancelled_events_do_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    loop.run()
    assert fired == []
    assert loop.pending == 0


def test_run_until_stops_at_boundary():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(10.0, lambda: fired.append(2))
    ran = loop.run(until=5.0)
    assert ran == 1 and fired == [1]
    assert loop.now == 5.0
    loop.run()
    assert fired == [1, 2]


def test_max_events_bound():
    loop = EventLoop()
    for i in range(10):
        loop.schedule(float(i), lambda: None)
    assert loop.run(max_events=4) == 4
    assert loop.pending == 6


def test_events_may_schedule_more_events():
    loop = EventLoop()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            loop.schedule(1.0, lambda: chain(depth + 1))

    loop.schedule(0.0, lambda: chain(0))
    loop.run()
    assert fired == [0, 1, 2, 3]
    assert loop.now == 3.0


def test_schedule_at_absolute_time():
    loop = EventLoop()
    seen = []
    loop.schedule_at(7.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [7.5]


def test_peek_time_skips_cancelled():
    loop = EventLoop()
    first = loop.schedule(1.0, lambda: None)
    loop.schedule(2.0, lambda: None)
    first.cancel()
    assert loop.peek_time() == 2.0
