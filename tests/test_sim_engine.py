"""Discrete-event kernel tests."""

import pytest

from repro.sim.engine import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(3.0, lambda: fired.append("c"))
    loop.schedule(1.0, lambda: fired.append("a"))
    loop.schedule(2.0, lambda: fired.append("b"))
    loop.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(1.0, lambda: fired.append(2))
    loop.run()
    assert fired == [1, 2]


def test_now_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(5.0, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [5.0]
    assert loop.now == 5.0


def test_cannot_schedule_in_past():
    with pytest.raises(ValueError):
        EventLoop().schedule(-1.0, lambda: None)


def test_cancelled_events_do_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    loop.run()
    assert fired == []
    assert loop.pending == 0


def test_run_until_stops_at_boundary():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(10.0, lambda: fired.append(2))
    ran = loop.run(until=5.0)
    assert ran == 1 and fired == [1]
    assert loop.now == 5.0
    loop.run()
    assert fired == [1, 2]


def test_max_events_bound():
    loop = EventLoop()
    for i in range(10):
        loop.schedule(float(i), lambda: None)
    assert loop.run(max_events=4) == 4
    assert loop.pending == 6


def test_events_may_schedule_more_events():
    loop = EventLoop()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            loop.schedule(1.0, lambda: chain(depth + 1))

    loop.schedule(0.0, lambda: chain(0))
    loop.run()
    assert fired == [0, 1, 2, 3]
    assert loop.now == 3.0


def test_schedule_at_absolute_time():
    loop = EventLoop()
    seen = []
    loop.schedule_at(7.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [7.5]


def test_peek_time_skips_cancelled():
    loop = EventLoop()
    first = loop.schedule(1.0, lambda: None)
    loop.schedule(2.0, lambda: None)
    first.cancel()
    assert loop.peek_time() == 2.0


def test_pending_is_exact_with_cancellations():
    loop = EventLoop()
    events = [loop.schedule(float(i), lambda: None) for i in range(10)]
    assert loop.pending == 10
    for event in events[:4]:
        event.cancel()
    assert loop.pending == 6
    loop.run()
    assert loop.pending == 0
    assert loop.events_run == 6


def test_double_cancel_counts_once():
    loop = EventLoop()
    event = loop.schedule(1.0, lambda: None)
    loop.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    assert loop.pending == 1


def test_cancel_after_run_is_harmless():
    loop = EventLoop()
    event = loop.schedule(1.0, lambda: None)
    loop.schedule(2.0, lambda: None)
    loop.step()
    event.cancel()  # already executed; must not skew the live count
    assert loop.pending == 1
    assert loop.run() == 1


def test_negative_delay_message_names_now():
    loop = EventLoop()
    loop.schedule(2.0, lambda: None)
    loop.run()
    with pytest.raises(ValueError, match="negative delay"):
        loop.schedule(-0.5, lambda: None)


def test_schedule_at_past_raises():
    loop = EventLoop()
    loop.schedule(5.0, lambda: None)
    loop.run()
    assert loop.now == 5.0
    with pytest.raises(ValueError, match="before now"):
        loop.schedule_at(4.9, lambda: None)
    # Scheduling exactly at `now` is allowed (fires immediately on run).
    fired = []
    loop.schedule_at(5.0, lambda: fired.append(loop.now))
    loop.run()
    assert fired == [5.0]


def test_run_until_and_max_events_interact():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule(float(i), lambda i=i: fired.append(i))
    # max_events binds first: only 2 of the 5 events before t=4.5 run.
    assert loop.run(until=4.5, max_events=2) == 2
    assert fired == [0, 1]
    assert loop.now == 1.0  # stopped by the event bound, not the clock
    # until binds next: events at t=2,3,4 run, clock parks at the boundary.
    assert loop.run(until=4.5, max_events=100) == 3
    assert fired == [0, 1, 2, 3, 4]
    assert loop.now == 4.5
    assert loop.pending == 5


def test_cancelled_event_accounting():
    loop = EventLoop()
    events = [loop.schedule(float(i), lambda: None) for i in range(6)]
    events[0].cancel()
    events[1].cancel()
    events[1].cancel()  # double-cancel counts once
    assert loop.events_cancelled == 2
    loop.run()
    assert loop.events_run == 4
    # Cancelling an already-run event is a no-op for the tally.
    events[5].cancel()
    assert loop.events_cancelled == 2
    assert loop.pending == 0


def test_heap_compacts_when_cancelled_dominate():
    loop = EventLoop()
    keep = loop.schedule(100.0, lambda: None)
    doomed = [loop.schedule(float(i), lambda: None) for i in range(1000)]
    for event in doomed:
        event.cancel()
    # Compaction keeps the heap near the live size instead of 1001.
    assert len(loop._heap) <= 2 * loop.pending + 1
    assert loop.pending == 1
    assert loop.peek_time() == 100.0
    keep.cancel()
    assert loop.pending == 0
    assert not loop.run()


class TestOnEventObserver:
    def test_observer_sees_live_events_before_callbacks(self):
        seen = []
        loop = EventLoop()
        loop.on_event = lambda ev: seen.append((loop.now, ev.seq))
        fired = []
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(2.0, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a", "b"]
        # Observer fires once per event, after now advances.
        assert seen == [(1.0, 0), (2.0, 1)]

    def test_cancelled_events_never_reach_observer(self):
        seen = []
        loop = EventLoop(on_event=seen.append)
        live = loop.schedule(2.0, lambda: None)
        doomed = loop.schedule(1.0, lambda: None)
        doomed.cancel()
        loop.run()
        assert [ev.seq for ev in seen] == [live.seq]

    def test_event_cancelled_by_earlier_callback_skips_observer(self):
        seen = []
        loop = EventLoop(on_event=seen.append)
        victim = loop.schedule(2.0, lambda: None)
        loop.schedule(1.0, victim.cancel)
        loop.run()
        # Only the cancelling event itself is observed.
        assert len(seen) == 1 and seen[0] is not victim


class TestClockNeverRewinds:
    """``run(until=t)`` with ``t`` in the past must clamp, not rewind:
    the past-scheduling guards assume ``now`` is monotone."""

    def test_run_until_in_the_past_keeps_now(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.schedule(15.0, lambda: None)
        assert loop.run(until=10.0) == 1
        assert loop.now == 10.0
        # The regression: this used to set now back to 3.0, after which
        # schedule_at(5.0, ...) would "re-open" the already-elapsed past.
        assert loop.run(until=3.0) == 0
        assert loop.now == 10.0
        loop.schedule_at(12.0, lambda: None)  # must not raise

    def test_run_until_now_is_a_no_op(self):
        loop = EventLoop()
        loop.schedule(2.0, lambda: None)
        loop.run()
        assert loop.now == 2.0
        assert loop.run(until=2.0) == 0
        assert loop.now == 2.0


class TestClockMonotoneProperty:
    """Property: ``now`` is non-decreasing under arbitrary interleavings
    of schedule / schedule_at / cancel / run(until=...) / step."""

    def test_monotone_under_arbitrary_interleavings(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")

        op = st.tuples(
            st.sampled_from(("schedule", "schedule_at", "cancel",
                             "run_until", "run_all", "step")),
            st.floats(min_value=0.0, max_value=50.0,
                      allow_nan=False, allow_infinity=False))

        @hypothesis.given(st.lists(op, max_size=60))
        @hypothesis.settings(max_examples=200, deadline=None)
        def check(ops):
            loop = EventLoop()
            events = []
            floor = loop.now
            for name, x in ops:
                if name == "schedule":
                    events.append(loop.schedule(x, lambda: None))
                elif name == "schedule_at":
                    events.append(loop.schedule_at(loop.now + x,
                                                   lambda: None))
                elif name == "cancel" and events:
                    events[int(x) % len(events)].cancel()
                elif name == "run_until":
                    # x is absolute and may lie before now — the
                    # rewind-prone case this property exists to pin.
                    loop.run(until=x)
                elif name == "run_all":
                    loop.run(max_events=int(x))
                elif name == "step":
                    loop.step()
                assert loop.now >= floor, (name, x, loop.now, floor)
                floor = loop.now

        check()
