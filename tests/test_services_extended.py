"""Extended services: Sybil auditing, G_X pruning, interdomain anycast."""

import pytest

from repro.inter.policy import JoinStrategy
from repro.services.anycast_inter import InterAnycastGroup
from repro.services.auditing import (QuotaExceeded, QuotaPolicy,
                                     SybilAuditor)


class TestSybilAuditing:
    def test_quota_gate_blocks_overfull_router(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        router = net.topology.edge_routers()[0]
        policy = QuotaPolicy(default_limit=3)
        for _ in range(3):
            host = net.next_planned_host()
            policy.admit_join(net, router)
            net.join_host(host, via_router=router)
        with pytest.raises(QuotaExceeded):
            policy.admit_join(net, router)

    def test_per_router_limits_override_default(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        router = net.topology.edge_routers()[0]
        policy = QuotaPolicy(default_limit=1, per_router={router: 10})
        for _ in range(5):
            policy.admit_join(net, router)
            net.join_host(net.next_planned_host(), via_router=router)

    def test_audit_detects_concocted_footprint(self, intra_net_factory):
        """A misbehaving router that bypasses the gate is caught by the
        sweep (the paper's Sybil damage-control mechanism)."""
        net = intra_net_factory(n_hosts=0)
        sybil_router = net.topology.edge_routers()[0]
        for _ in range(8):
            net.join_host(net.next_planned_host(), via_router=sybil_router)
        auditor = SybilAuditor(net, QuotaPolicy(default_limit=4))
        findings = auditor.audit()
        assert findings and findings[0].router == sybil_router
        assert findings[0].excess == 4

    def test_footprint_report_sums_to_one(self, intra_net_factory):
        net = intra_net_factory(n_hosts=40)
        report = SybilAuditor(net).footprint_report()
        assert abs(sum(report.values()) - 1.0) < 1e-9

    def test_evict_excess_rebalances(self, intra_net_factory):
        net = intra_net_factory(n_hosts=0)
        sybil_router = net.topology.edge_routers()[0]
        for _ in range(8):
            net.join_host(net.next_planned_host(), via_router=sybil_router)
        auditor = SybilAuditor(net, QuotaPolicy(default_limit=4))
        moved = auditor.evict_excess()
        assert moved == 4
        assert not auditor.audit()
        net.check_ring()

    def test_clean_network_has_no_findings(self, intra_net_factory):
        net = intra_net_factory(n_hosts=30)
        assert SybilAuditor(net, QuotaPolicy(default_limit=100)).audit() == []


class TestGxPruning:
    def test_pruned_chain_is_smaller(self, inter_net_factory):
        net = inter_net_factory(n_hosts=0)
        home = next(asn for asn in net.asg.ases()
                    if len(net.asg.providers(asn)) >= 2)
        full = net.policy.join_chain(home, JoinStrategy.MULTIHOMED)
        victim = net.asg.providers(home)[1]
        pruned = net.policy.join_chain(home, JoinStrategy.MULTIHOMED,
                                       prune={victim})
        assert victim not in pruned
        assert len(pruned) <= len(full)
        assert pruned[-1] == net.policy.root  # still globally reachable

    def test_cannot_prune_home(self, inter_net_factory):
        net = inter_net_factory(n_hosts=0)
        home = net.asg.stubs()[0]
        with pytest.raises(ValueError):
            net.policy.join_chain(home, JoinStrategy.MULTIHOMED,
                                  prune={home})

    def test_pruned_join_costs_less_and_still_works(self, inter_net_factory):
        net = inter_net_factory(n_hosts=60, seed=33)
        home = next(asn for asn in net.asg.ases()
                    if len(net.asg.providers(asn)) >= 2
                    and net.asg.hosts(asn) > 0)
        victim = net.asg.providers(home)[1]
        h_full = net.next_planned_host()
        h_pruned = net.next_planned_host()
        r_full = net.join_host(h_full)
        # attach the pruned host at the multihomed AS for a fair compare
        from repro.topology.hosts import PlannedHost
        h_pruned = PlannedHost(name=h_pruned.name, attach_at=home,
                               key_pair=h_pruned.key_pair)
        r_pruned = net.join_host(h_pruned, prune={victim})
        assert r_pruned.levels_joined <= r_full.levels_joined + 2
        net.check_rings()
        other = next(n for n in net.hosts if n != h_pruned.name)
        assert net.send(other, h_pruned.name).delivered


class TestInterAnycast:
    @pytest.fixture()
    def net(self, inter_net_factory):
        return inter_net_factory(n_hosts=100, seed=34, n_fingers=6)

    def test_reaches_a_replica(self, net):
        group = InterAnycastGroup(net, "resolver")
        bearers = [a for a in net.asg.ases() if net.asg.hosts(a) > 0]
        for asn in bearers[:4]:
            group.add_replica(asn)
        net.check_rings()
        src = bearers[10]
        result = group.send(src)
        assert result.delivered
        terminal = net.ases[result.path[-1]]
        assert any(group._is_member_id(h) for h in terminal.hosted)

    def test_empty_group_fails(self, net):
        group = InterAnycastGroup(net, "empty")
        assert not group.send(net.asg.ases()[0]).delivered

    def test_duplicate_suffix_rejected(self, net):
        group = InterAnycastGroup(net, "dup")
        bearers = [a for a in net.asg.ases() if net.asg.hosts(a) > 0]
        group.add_replica(bearers[0], suffix=1)
        with pytest.raises(ValueError):
            group.add_replica(bearers[1], suffix=1)

    def test_cost_bounded_by_nearest_replica_regime(self, net):
        group = InterAnycastGroup(net, "cdn")
        bearers = [a for a in net.asg.ases() if net.asg.hosts(a) > 0]
        for asn in bearers[:5]:
            group.add_replica(asn)
        src = bearers[12]
        result = group.send(src)
        nearest = group.nearest_replica_distance(src)
        assert result.delivered and nearest is not None
        assert result.hops <= max(6 * nearest, 12)

    def test_member_ases_tracked(self, net):
        group = InterAnycastGroup(net, "track")
        bearers = [a for a in net.asg.ases() if net.asg.hosts(a) > 0]
        group.add_replica(bearers[0])
        group.add_replica(bearers[1])
        assert set(group.member_ases()) == {bearers[0], bearers[1]}
