"""Checkpoint/restore determinism: build → save → load → identical future.

The contract under test (DESIGN.md §10): the canonical state hash is a
pure function of simulation state — same seed gives the same hash across
fresh builds, a loaded snapshot hashes identically to the network it was
saved from, and every random draw after a load replays byte-for-byte
what the original network would have produced.
"""

import json
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import snapshot
from repro.inter.network import InterDomainNetwork
from repro.intra.network import IntraDomainNetwork
from repro.sim.engine import EventLoop
from repro.snapshot.codec import state_hash_of
from repro.topology.asgraph import synthetic_as_graph
from repro.topology.isp import synthetic_isp
from repro.util.rng import RngRegistry, derive_rng


def build_intra(seed=3, hosts=60, routers=20):
    net = IntraDomainNetwork(synthetic_isp(n_routers=routers, seed=seed),
                             seed=seed)
    net.join_random_hosts(hosts)
    return net


def build_inter(seed=7, hosts=80, ases=30, **kwargs):
    net = InterDomainNetwork(
        synthetic_as_graph(n_ases=ases, seed=seed, total_hosts=4000),
        seed=seed, **kwargs)
    net.join_random_hosts(hosts)
    return net


# ---------------------------------------------------------------------------
# The canonical codec.
# ---------------------------------------------------------------------------

class TestCanonicalCodec:
    def test_primitives_distinguished(self):
        # 1 / 1.0 / True hash apart (dict keys collide in Python, not here).
        assert state_hash_of(1) != state_hash_of(1.0)
        assert state_hash_of(1) != state_hash_of(True)
        assert state_hash_of("a") != state_hash_of(b"a")
        assert state_hash_of([1, 2]) != state_hash_of((1, 2))

    def test_set_order_independent(self):
        # Equal sets built in different insertion orders hash equal even
        # though their iteration order differs.
        a = set(["r{}".format(i) for i in range(100)])
        b = set(["r{}".format(i) for i in reversed(range(100))])
        assert state_hash_of(a) == state_hash_of(b)

    def test_dict_order_independent(self):
        a = {i: str(i) for i in range(50)}
        b = {i: str(i) for i in reversed(range(50))}
        assert state_hash_of(a) == state_hash_of(b)

    def test_huge_int_encodes(self):
        # Bloom bitfields exceed CPython's int→str digit limit.
        assert state_hash_of(1 << 100_000) != state_hash_of(1 << 100_001)

    def test_cycles_and_shared_refs(self):
        a = []
        a.append(a)
        b = []
        b.append(b)
        assert state_hash_of(a) == state_hash_of(b)
        shared = [1, 2]
        assert (state_hash_of([shared, shared])
                != state_hash_of([[1, 2], [1, 2]]))

    json_values = st.recursive(
        st.none() | st.booleans() | st.integers() | st.text(max_size=8)
        | st.floats(allow_nan=False),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=6), children, max_size=4),
        max_leaves=12)

    @given(value=json_values)
    @settings(max_examples=60, deadline=None)
    def test_hash_is_pure_and_pickle_stable(self, value):
        # Hashing is a pure function, and a pickle round trip (exactly
        # what save/load does) never changes the hash.
        assert state_hash_of(value) == state_hash_of(value)
        assert state_hash_of(pickle.loads(pickle.dumps(value))) \
            == state_hash_of(value)

    @given(items=st.lists(st.tuples(st.integers(), st.text(max_size=6)),
                          max_size=10, unique_by=lambda kv: kv[0]),
           seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_dict_hash_insertion_order_free(self, items, seed):
        shuffled = list(items)
        random.Random(seed).shuffle(shuffled)
        assert state_hash_of(dict(items)) == state_hash_of(dict(shuffled))

    def test_rng_position_is_state(self):
        r1, r2 = random.Random(9), random.Random(9)
        assert state_hash_of(r1) == state_hash_of(r2)
        r1.random()
        assert state_hash_of(r1) != state_hash_of(r2)


# ---------------------------------------------------------------------------
# Same seed, same hash.
# ---------------------------------------------------------------------------

class TestSameSeedSameHash:
    def test_intra_fresh_builds_agree(self):
        assert (snapshot.state_hash(build_intra())
                == snapshot.state_hash(build_intra()))

    def test_inter_fresh_builds_agree(self):
        assert (snapshot.state_hash(build_inter())
                == snapshot.state_hash(build_inter()))

    def test_different_seed_differs(self):
        assert (snapshot.state_hash(build_intra(seed=3))
                != snapshot.state_hash(build_intra(seed=4)))

    def test_hash_tracks_state_changes(self):
        net = build_intra()
        before = snapshot.state_hash(net)
        net.join_random_hosts(1)
        assert snapshot.state_hash(net) != before

    def test_hash_ignores_derived_cache_warmth(self):
        cold = build_intra()
        warm = build_intra()
        for _ in range(30):
            warm.paths.hop_path(*sorted(warm.routers)[:2])
        # SPF trees are rebuild-on-load, so oracle warmth is not state...
        # but the send itself advances RNGs/caches, so only *oracle*
        # queries are transparent.
        assert snapshot.state_hash(cold) == snapshot.state_hash(warm)


# ---------------------------------------------------------------------------
# Round trips.
# ---------------------------------------------------------------------------

class TestRoundTrip:
    def test_intra_save_load_hash_equal(self, tmp_path):
        net = build_intra()
        path = str(tmp_path / "intra.snap")
        digest = snapshot.save(net, path)
        loaded = snapshot.load(path, verify=True)
        assert snapshot.state_hash(loaded) == digest

    def test_inter_save_load_hash_equal(self, tmp_path):
        net = build_inter(cache_entries=64)
        path = str(tmp_path / "inter.snap")
        digest = snapshot.save(net, path)
        loaded = snapshot.load(path, verify=True)
        assert snapshot.state_hash(loaded) == digest

    def test_bloom_peering_round_trips(self, tmp_path):
        net = build_inter(hosts=40, peering_mode="bloom")
        path = str(tmp_path / "bloom.snap")
        digest = snapshot.save(net, path)
        loaded = snapshot.load(path, verify=True)
        assert snapshot.state_hash(loaded) == digest
        assert (net.send(*net.random_host_pair())
                == loaded.send(*loaded.random_host_pair()))

    def test_hundred_sends_byte_identical(self, tmp_path):
        net = build_inter()
        path = str(tmp_path / "inter.snap")
        snapshot.save(net, path)
        loaded = snapshot.load(path)
        for _ in range(100):
            pair = net.random_host_pair()
            assert pair == loaded.random_host_pair()
            assert net.send(*pair) == loaded.send(*pair)

    def test_joins_continue_identically_after_load(self, tmp_path):
        net = build_intra()
        path = str(tmp_path / "intra.snap")
        snapshot.save(net, path)
        loaded = snapshot.load(path)
        original = [(r.host_name, r.flat_id, r.router)
                    for r in net.join_random_hosts(15)]
        revived = [(r.host_name, r.flat_id, r.router)
                   for r in loaded.join_random_hosts(15)]
        assert original == revived

    def test_loaded_network_passes_invariant_probes(self, tmp_path):
        net = build_intra()
        path = str(tmp_path / "intra.snap")
        snapshot.save(net, path)
        loaded = snapshot.load(path)
        loaded.check_ring()
        assert snapshot.validate_network(loaded) == []

    def test_failure_injection_state_survives(self, tmp_path):
        net = build_intra(hosts=40)
        dead = sorted(net.routers)[1]
        net.fail_router(dead)
        path = str(tmp_path / "failed.snap")
        digest = snapshot.save(net, path)
        loaded = snapshot.load(path, verify=True)
        assert snapshot.state_hash(loaded) == digest
        assert not loaded.lsmap.is_router_up(dead)


# ---------------------------------------------------------------------------
# The file format.
# ---------------------------------------------------------------------------

class TestFormat:
    def test_header_is_first_line_json(self, tmp_path):
        net = build_intra(hosts=10)
        path = str(tmp_path / "net.snap")
        digest = snapshot.save(net, path, meta={"note": "hi"})
        with open(path, "rb") as fh:
            header = json.loads(fh.readline())
        assert header["magic"] == snapshot.MAGIC
        assert header["schema"] == snapshot.SCHEMA_VERSION
        assert header["state_hash"] == digest
        assert header["kind"] == "IntraDomainNetwork"
        assert header["counts"]["hosts"] == 10
        assert header["meta"]["note"] == "hi"
        assert snapshot.describe(path) == header

    def test_version_mismatch_is_loud(self, tmp_path):
        net = build_intra(hosts=5)
        path = str(tmp_path / "net.snap")
        snapshot.save(net, path)
        with open(path, "rb") as fh:
            header = json.loads(fh.readline())
            payload = fh.read()
        header["schema"] = snapshot.SCHEMA_VERSION + 1
        with open(path, "wb") as fh:
            fh.write(json.dumps(header).encode() + b"\n" + payload)
        with pytest.raises(snapshot.SchemaMismatchError) as exc:
            snapshot.load(path)
        assert "re-create the snapshot" in str(exc.value)
        assert exc.value.found == snapshot.SCHEMA_VERSION + 1

    def test_not_a_snapshot(self, tmp_path):
        path = str(tmp_path / "noise.bin")
        with open(path, "wb") as fh:
            fh.write(b"\x00\x01\x02 definitely not json\n more noise")
        with pytest.raises(snapshot.SnapshotError):
            snapshot.describe(path)
        with pytest.raises(snapshot.SnapshotError):
            snapshot.load(path)

    def test_corrupt_payload_detected(self, tmp_path):
        net = build_intra(hosts=5)
        path = str(tmp_path / "net.snap")
        snapshot.save(net, path)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:-20] + b"corruptcorruptcorrup")
        with pytest.raises(snapshot.SnapshotError):
            snapshot.load(path)

    def test_verify_catches_hash_drift(self, tmp_path):
        # A tampered header hash loads fine without verify but fails
        # with it.
        net = build_intra(hosts=5)
        path = str(tmp_path / "net.snap")
        snapshot.save(net, path)
        with open(path, "rb") as fh:
            header = json.loads(fh.readline())
            payload = fh.read()
        header["state_hash"] = "0" * 64
        with open(path, "wb") as fh:
            fh.write(json.dumps(header).encode() + b"\n" + payload)
        snapshot.load(path)
        with pytest.raises(snapshot.SnapshotError, match="verification"):
            snapshot.load(path, verify=True)


# ---------------------------------------------------------------------------
# Workload replay on a loaded network.
# ---------------------------------------------------------------------------

class TestWorkloadReplay:
    def test_scenario_on_loaded_network_is_deterministic(self, tmp_path):
        from repro.workload import builtin_scenario, run_scenario

        net = build_intra(seed=0, hosts=0, routers=40)
        path = str(tmp_path / "base.snap")
        snapshot.save(net, path)
        loaded = snapshot.load(path)

        a = run_scenario(builtin_scenario("steady-churn", seed=0),
                         network=net).deterministic_view()
        b = run_scenario(builtin_scenario("steady-churn", seed=0),
                         network=loaded).deterministic_view()
        assert a == b


# ---------------------------------------------------------------------------
# RNG registry capture/restore.
# ---------------------------------------------------------------------------

class TestRngRegistry:
    def test_derive_is_cached_and_scoped(self):
        reg = RngRegistry(5)
        assert reg.derive("a") is reg.derive("a")
        assert reg.derive("a") is not reg.derive("b")
        assert len(reg) == 2 and ("a",) in reg
        assert reg.scopes() == [("a",), ("b",)]

    def test_matches_bare_derive_rng(self):
        # The registry is a cache over derive_rng, not a new generator:
        # stream identity (and thus every historical tape) is preserved.
        assert (RngRegistry(3).derive("workload", "traffic").random()
                == derive_rng(3, "workload", "traffic").random())

    def test_capture_restore_round_trip(self):
        reg = RngRegistry(1)
        stream = reg.derive("x")
        stream.random()
        states = reg.capture()
        expected = [stream.random() for _ in range(5)]
        reg.restore(states)
        assert [stream.random() for _ in range(5)] == expected

    def test_registry_pickles_with_positions(self):
        reg = RngRegistry(1)
        reg.derive("x").random()
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.derive("x").random() == reg.derive("x").random()

    def test_seed_mismatch_rejected(self):
        from repro.topology.hosts import HostPlan
        with pytest.raises(ValueError):
            HostPlan(attachment_points=["r0"], seed=1,
                     registry=RngRegistry(2))


# ---------------------------------------------------------------------------
# The event loop.
# ---------------------------------------------------------------------------

class TestEventLoopPickle:
    def test_clock_and_pending_queue_survive(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, _Appender(fired, "a"))
        loop.schedule_at(2.0, _Appender(fired, "b"))
        loop.run(until=1.5)
        clone = pickle.loads(pickle.dumps(loop))
        assert clone.now == loop.now
        assert len(clone.pending_events()) == 1
        clone.run(until=3.0)
        assert clone.pending == 0

    def test_cancelled_events_compacted(self):
        loop = EventLoop()
        loop.schedule_at(1.0, _Appender([], "keep"))
        handle = loop.schedule_at(2.0, _Appender([], "drop"))
        handle.cancel()
        assert len(loop.pending_events()) == 1
        state = loop.__getstate__()
        assert len(state["_heap"]) == 1
        assert state["_cancelled"] == 0
        assert state["on_event"] is None


class _Appender:
    """A picklable stand-in for the lambdas real callers schedule."""

    def __init__(self, sink, value):
        self.sink, self.value = sink, value

    def __call__(self):
        self.sink.append(self.value)
