"""SortedRingMap: the circular index under rings, caches and routers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.idspace.identifier import FlatId, RingSpace
from repro.util.ringmap import SortedRingMap

SPACE = RingSpace(bits=16)
ids16 = st.integers(min_value=0, max_value=(1 << 16) - 1).map(
    lambda v: FlatId(v, bits=16))


def make_map(values):
    ring = SortedRingMap(SPACE)
    for v in values:
        ring.insert(SPACE.make(v), "v{}".format(v))
    return ring


class TestBasics:
    def test_insert_get_remove(self):
        ring = make_map([5, 10])
        assert ring[SPACE.make(5)] == "v5"
        assert len(ring) == 2
        assert ring.remove(SPACE.make(5)) == "v5"
        assert SPACE.make(5) not in ring

    def test_insert_replaces_value(self):
        ring = make_map([5])
        ring.insert(SPACE.make(5), "new")
        assert len(ring) == 1
        assert ring[SPACE.make(5)] == "new"

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            make_map([1]).remove(SPACE.make(2))

    def test_discard_is_silent(self):
        make_map([1]).discard(SPACE.make(2))

    def test_iteration_is_sorted(self):
        ring = make_map([30, 10, 20])
        assert [k.value for k in ring] == [10, 20, 30]


class TestCircularQueries:
    def test_successor_wraps(self):
        ring = make_map([10, 20, 30])
        assert ring.successor(SPACE.make(30)).value == 10
        assert ring.successor(SPACE.make(25)).value == 30

    def test_successor_strictness(self):
        ring = make_map([10, 20])
        assert ring.successor(SPACE.make(10), strict=True).value == 20
        assert ring.successor(SPACE.make(10), strict=False).value == 10

    def test_predecessor_wraps(self):
        ring = make_map([10, 20, 30])
        assert ring.predecessor(SPACE.make(10)).value == 30
        assert ring.predecessor(SPACE.make(25)).value == 20

    def test_predecessor_strictness(self):
        ring = make_map([10, 20])
        assert ring.predecessor(SPACE.make(20), strict=True).value == 10
        assert ring.predecessor(SPACE.make(20), strict=False).value == 20

    def test_empty_map_returns_none(self):
        ring = SortedRingMap(SPACE)
        assert ring.successor(SPACE.make(1)) is None
        assert ring.predecessor(SPACE.make(1)) is None
        assert ring.closest_not_past(SPACE.make(0), SPACE.make(5)) is None

    def test_closest_not_past(self):
        ring = make_map([5, 50, 90])
        assert ring.closest_not_past(SPACE.make(0), SPACE.make(60)).value == 50
        assert ring.closest_not_past(SPACE.make(60), SPACE.make(80)) is None

    def test_in_arc_plain_and_wrapping(self):
        ring = make_map([10, 20, 30, 60000])
        plain = ring.in_arc(SPACE.make(10), SPACE.make(30))
        assert [k.value for k in plain] == [10, 20, 30]
        wrap = ring.in_arc(SPACE.make(50000), SPACE.make(15))
        assert [k.value for k in wrap] == [60000, 10]

    def test_iter_predecessors_order(self):
        ring = make_map([10, 20, 30])
        seq = [k.value for k in ring.iter_predecessors(SPACE.make(25))]
        assert seq == [20, 10, 30]
        # Starting exactly on a stored key includes it first.
        seq = [k.value for k in ring.iter_predecessors(SPACE.make(20))]
        assert seq == [20, 10, 30]


@given(st.sets(st.integers(min_value=0, max_value=(1 << 16) - 1),
               min_size=1, max_size=40), ids16)
def test_successor_matches_brute_force(values, probe):
    ring = make_map(sorted(values))
    expected = min((v for v in values if v > probe.value), default=min(values))
    assert ring.successor(probe).value == expected


@given(st.sets(st.integers(min_value=0, max_value=(1 << 16) - 1),
               min_size=1, max_size=40), ids16)
def test_predecessor_matches_brute_force(values, probe):
    ring = make_map(sorted(values))
    expected = max((v for v in values if v < probe.value), default=max(values))
    assert ring.predecessor(probe).value == expected


@given(st.sets(st.integers(min_value=0, max_value=(1 << 16) - 1),
               min_size=1, max_size=40), ids16)
def test_nonstrict_predecessor_minimises_cw_distance(values, probe):
    ring = make_map(sorted(values))
    best = min(values, key=lambda v: SPACE.distance_cw(SPACE.make(v), probe))
    assert SPACE.distance_cw(
        ring.predecessor(probe, strict=False), probe) == SPACE.distance_cw(
        SPACE.make(best), probe)


@given(st.sets(st.integers(min_value=0, max_value=(1 << 16) - 1),
               min_size=1, max_size=40), ids16)
def test_iter_predecessors_visits_everything_once(values, probe):
    ring = make_map(sorted(values))
    seen = list(ring.iter_predecessors(probe))
    assert len(seen) == len(values)
    assert len(set(seen)) == len(values)
