"""Unit tests for the per-AS aggregated routing state."""

import pytest

from repro.idspace.identifier import RingSpace
from repro.inter.asnode import RoflAS
from repro.inter.pointers import ASPointer, InterVirtualNode

SPACE = RingSpace(bits=16)


def make_vn(value, home="AS-X", **kwargs):
    return InterVirtualNode(id=SPACE.make(value), home_as=home, **kwargs)


def ptr(value, dest_as="AS-Y", route=("AS-X", "AS-Y"), level=None,
        kind="successor"):
    return ASPointer(SPACE.make(value), dest_as, tuple(route), level=level,
                     kind=kind)


class FakeNet:
    """Just enough policy surface for RoflAS.best_match."""

    class _Policy:
        @staticmethod
        def level_contained_in(inner, outer):
            return inner == outer

        @staticmethod
        def level_contains(scope, asn):
            return scope == asn

        @staticmethod
        def shortcut_allowed(arrived_from, at_as, route):
            return arrived_from != "blocked"

    policy = _Policy()


class TestHosting:
    def test_host_and_unhost(self):
        node = RoflAS("AS-X", SPACE)
        vn = make_vn(10)
        node.host(vn)
        assert node.hosts_id(SPACE.make(10))
        node.unhost(SPACE.make(10))
        assert not node.hosts_id(SPACE.make(10))

    def test_duplicate_host_rejected(self):
        node = RoflAS("AS-X", SPACE)
        node.host(make_vn(10))
        with pytest.raises(ValueError):
            node.host(make_vn(10))

    def test_foreign_vn_rejected(self):
        node = RoflAS("AS-X", SPACE)
        with pytest.raises(ValueError):
            node.host(make_vn(10, home="AS-Z"))


class TestBestMatch:
    def test_unscoped_local_win(self):
        node = RoflAS("AS-X", SPACE)
        node.host(make_vn(100))
        match = node.best_match(FakeNet(), SPACE.make(100))
        assert match.is_local and match.dest_id.value == 100

    def test_pointer_candidates(self):
        node = RoflAS("AS-X", SPACE)
        vn = make_vn(100)
        vn.set_successor(None, ptr(200))
        node.host(vn)
        match = node.best_match(FakeNet(), SPACE.make(250))
        assert not match.is_local and match.dest_id.value == 200

    def test_scoped_membership_filter(self):
        node = RoflAS("AS-X", SPACE)
        vn = make_vn(100)
        vn.joined_levels = ["AS-X"]   # home ring only
        node.host(vn)
        net = FakeNet()
        in_home = node.best_match(net, SPACE.make(100), scope="AS-X")
        assert in_home is not None and in_home.is_local
        outside = node.best_match(net, SPACE.make(100), scope="OTHER")
        assert outside is None

    def test_scoped_skips_fingers(self):
        node = RoflAS("AS-X", SPACE)
        vn = make_vn(100)
        vn.fingers = [ptr(180, level="AS-X", kind="finger")]
        node.host(vn)
        net = FakeNet()
        scoped = node.best_match(net, SPACE.make(190), scope="AS-X")
        # The finger is skipped; the hosted ID wins (it is in its home ring).
        assert scoped.is_local
        unscoped = node.best_match(net, SPACE.make(190))
        assert unscoped.dest_id.value == 180

    def test_import_rule_blocks_shortcuts(self):
        node = RoflAS("AS-X", SPACE)
        vn = make_vn(100)
        vn.set_successor(None, ptr(200))
        node.host(vn)
        net = FakeNet()
        blocked = node.best_match(net, SPACE.make(250), arrived_from="blocked")
        assert blocked is None or blocked.is_local

    def test_cache_needs_bloom_clearance(self):
        node = RoflAS("AS-X", SPACE, cache_entries=8)
        node.host(make_vn(10))
        node.cache.put(ptr(240, kind="cache"))
        net = FakeNet()
        hit = node.best_match(net, SPACE.make(250))
        assert hit is not None and hit.pointer.kind == "cache"
        # Once the destination appears below this AS, the cache is barred.
        node.subtree_bloom.add(SPACE.make(250))
        barred = node.best_match(net, SPACE.make(250))
        assert barred is None or barred.pointer is None \
            or barred.pointer.kind != "cache"

    def test_index_rebuild_on_mutation(self):
        node = RoflAS("AS-X", SPACE)
        vn = make_vn(100)
        node.host(vn)
        net = FakeNet()
        assert node.best_match(net, SPACE.make(300)).dest_id.value == 100
        vn.set_successor(None, ptr(250))
        node.mark_dirty()
        assert node.best_match(net, SPACE.make(300)).dest_id.value == 250


class TestFlushCoalescing:
    def test_repeated_marks_one_rediff_per_flush(self):
        """A mark-dirty storm on one VN coalesces into a single re-diff."""
        from repro.util import perf

        node = RoflAS("AS-X", SPACE)
        vn = make_vn(100)
        vn.set_successor(None, ptr(200))
        node.host(vn)
        net = FakeNet()
        node.best_match(net, SPACE.make(300))  # settle the initial rebuild
        epoch0 = node.flush_epoch
        flushes0 = perf.value("asnode.index.refresh.flushes")
        owners0 = perf.value("asnode.index.refresh.owners")
        for _ in range(5):
            node.mark_dirty(vn)
        node.best_match(net, SPACE.make(300))
        assert node.flush_epoch == epoch0 + 1
        assert perf.value("asnode.index.refresh.flushes") == flushes0 + 1
        assert perf.value("asnode.index.refresh.owners") == owners0 + 1

    def test_owners_counter_counts_distinct_vns(self):
        from repro.util import perf

        node = RoflAS("AS-X", SPACE)
        vn_a, vn_b = make_vn(100), make_vn(5000)
        node.host(vn_a)
        node.host(vn_b)
        net = FakeNet()
        node.best_match(net, SPACE.make(300))
        owners0 = perf.value("asnode.index.refresh.owners")
        for _ in range(3):
            node.mark_dirty(vn_a)
            node.mark_dirty(vn_b)
        node.best_match(net, SPACE.make(300))
        assert perf.value("asnode.index.refresh.owners") == owners0 + 2

    def test_dead_target_sweep_marks_each_vn_once(self):
        """The fail-AS sweep pattern: many dead pointers on one VN cause
        one mark (and so one re-diff), not one per dropped pointer."""
        from repro.util import perf

        node = RoflAS("AS-X", SPACE)
        vn = make_vn(100)
        vn.set_successor(None, ptr(200))
        vn.fingers = [ptr(300, kind="finger"), ptr(400, kind="finger")]
        node.host(vn)
        net = FakeNet()
        node.best_match(net, SPACE.make(10))
        owners0 = perf.value("asnode.index.refresh.owners")
        dropped = 0
        for dead in (SPACE.make(200), SPACE.make(300), SPACE.make(400)):
            dropped += vn.drop_dead_target(dead)
        if dropped:
            node.mark_dirty(vn)
        assert dropped == 3
        node.best_match(net, SPACE.make(10))
        assert perf.value("asnode.index.refresh.owners") == owners0 + 1


class TestUpkeep:
    def test_drop_pointer(self):
        node = RoflAS("AS-X", SPACE, cache_entries=8)
        vn = make_vn(100)
        doomed = ptr(200)
        vn.set_successor(None, doomed)
        node.host(vn)
        node.cache.put(ptr(200, kind="cache"))
        node.drop_pointer(doomed)
        assert SPACE.make(200) not in node.cache
        assert not vn.succ_by_level

    def test_state_entries(self):
        node = RoflAS("AS-X", SPACE, cache_entries=8)
        vn = make_vn(100)
        vn.set_successor(None, ptr(200))
        vn.fingers = [ptr(50, kind="finger")]
        node.host(vn)
        node.cache.put(ptr(240, kind="cache"))
        # id itself + 1 succ + 1 finger + 1 cache entry
        assert node.state_entries() == 4
        assert node.state_entries(include_cache=False) == 3


class TestPointerValidation:
    def test_as_route_must_end_at_dest(self):
        with pytest.raises(ValueError):
            ASPointer(SPACE.make(1), "AS-Z", ("AS-X", "AS-Y"))

    def test_empty_route_rejected(self):
        with pytest.raises(ValueError):
            ASPointer(SPACE.make(1), "AS-X", ())

    def test_drop_dead_target_sweeps_all_tables(self):
        vn = make_vn(100)
        vn.set_successor(None, ptr(200))
        vn.set_successor("L", ptr(200, level="L"))
        vn.pred_by_level["L"] = ptr(50, kind="predecessor")
        vn.fingers = [ptr(200, kind="finger")]
        dropped = vn.drop_dead_target(SPACE.make(200))
        assert dropped == 3
        assert not vn.succ_by_level and not vn.fingers
        assert "L" in vn.pred_by_level  # different target survives
