"""Gao-Rexford BGP baseline tests."""

import pytest

from repro.inter.bgp import BgpBaseline
from repro.topology.asgraph import ASGraph, synthetic_as_graph


@pytest.fixture()
def small_internet():
    asg = ASGraph()
    for name, tier in (("T1a", 1), ("T1b", 1), ("T2a", 2), ("T2b", 2),
                       ("S1", 3), ("S2", 3)):
        asg.add_as(name, tier=tier)
    asg.add_peering("T1a", "T1b")
    asg.add_customer_provider("T2a", "T1a")
    asg.add_customer_provider("T2b", "T1b")
    asg.add_customer_provider("S1", "T2a")
    asg.add_customer_provider("S2", "T2b")
    return asg


def test_customer_route_preferred(small_internet):
    bgp = BgpBaseline(small_internet)
    # T1a reaches S1 through its customer cone: 2 hops, preference 0.
    assert bgp.routes_to("S1")["T1a"] == (0, 2)


def test_peer_route_when_no_customer_route(small_internet):
    bgp = BgpBaseline(small_internet)
    pref, hops = bgp.routes_to("S2")["T1a"]
    assert pref == 1          # learned across the T1a–T1b peering
    assert hops == 3


def test_provider_route_at_the_edge(small_internet):
    bgp = BgpBaseline(small_internet)
    pref, hops = bgp.routes_to("S2")["S1"]
    assert pref == 2
    assert hops == 5  # S1 T2a T1a T1b T2b S2


def test_policy_distance_and_symmetric_shape(small_internet):
    bgp = BgpBaseline(small_internet)
    assert bgp.policy_distance("S1", "S2") == 5
    assert bgp.policy_distance("S2", "S1") == 5
    assert bgp.policy_distance("S1", "S1") == 0


def test_valley_is_never_used(small_internet):
    # S1 → S2 must not shortcut through another stub.
    bgp = BgpBaseline(small_internet)
    assert bgp.policy_distance("T2a", "T2b") == 3  # via the T1 peering


def test_policy_stretch_at_least_one(small_internet):
    bgp = BgpBaseline(small_internet)
    stretch = bgp.policy_stretch("S1", "S2")
    assert stretch >= 1.0


def test_unreachable_returns_none():
    asg = ASGraph()
    asg.add_as("A", tier=1)
    asg.add_as("B", tier=1)
    asg.add_as("C", tier=3)
    asg.add_peering("A", "B")
    asg.add_customer_provider("C", "A")
    bgp = BgpBaseline(asg)
    # B can reach C (peer then down); C reaches B via provider.
    assert bgp.policy_distance("B", "C") == 2
    assert bgp.policy_distance("C", "B") == 2


def test_backup_links_excluded_by_default():
    asg = ASGraph()
    asg.add_as("P", tier=1)
    asg.add_as("Q", tier=1)
    asg.add_as("C", tier=3)
    asg.add_peering("P", "Q")
    asg.add_customer_provider("C", "P", backup=True)
    no_backup = BgpBaseline(asg, use_backup=False)
    assert no_backup.policy_distance("Q", "C") is None
    with_backup = BgpBaseline(asg, use_backup=True)
    assert with_backup.policy_distance("Q", "C") == 2


def test_synthetic_graph_all_pairs_policy_reachable():
    asg = synthetic_as_graph(n_ases=40, seed=3)
    bgp = BgpBaseline(asg)
    ases = asg.ases()
    for src in ases[::4]:
        for dst in ases[::5]:
            assert bgp.policy_distance(src, dst) is not None


def test_policy_never_shorter_than_shortest():
    asg = synthetic_as_graph(n_ases=50, seed=4)
    bgp = BgpBaseline(asg)
    ases = asg.ases()
    for src in ases[::5]:
        for dst in ases[::7]:
            if src == dst:
                continue
            policy = bgp.policy_distance(src, dst)
            shortest = bgp.shortest_distance(src, dst)
            if policy is not None and shortest is not None:
                assert policy >= shortest


def test_invalidate_clears_memo():
    asg = synthetic_as_graph(n_ases=30, seed=5)
    bgp = BgpBaseline(asg)
    bgp.policy_distance(asg.ases()[0], asg.ases()[1])
    assert bgp._tables
    bgp.invalidate()
    assert not bgp._tables
